"""The runtime: dependence analysis, mapping, copies and simulated time.

Execution model
---------------
Programs issue task launches in sequential order (as SciPy/NumPy programs
do).  For each launch the runtime

1. charges the per-launch overhead on the *issue clock* — the Python-side
   cost of Legate's task launching and metadata management, which is what
   small-task workloads (GMG V-cycles, RK8 stages, SGD minibatches)
   expose in the paper's single-GPU comparisons against CuPy;
2. maps each shard's region rectangles to physical instances in the
   target processor's memory (allocation store + coalescing, §4.2);
3. derives copies from the coherence state (missing = needed − valid) and
   schedules them on the machine's channels (§4.3's halo exchanges);
4. executes the shard kernel on views of the exact backing arrays and
   advances the processor's clock by the roofline kernel time;
5. folds REDUCE-privilege outputs to owner tiles and allreduces scalar
   partials with a latency/overhead model (the Legion allreduce overhead
   that causes the CG falloff at scale in Fig. 9).

Numerics are exact; only *time* and *placement* are simulated.
"""

from __future__ import annotations

import contextlib
import math
from dataclasses import dataclass, field
from time import perf_counter as _perf
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis import ValidationError
from repro.analysis.events import EventLog, ReqAccess
from repro.analysis.recorder import register as _register_log
from repro.analysis.recorder import validation_default as _validation_default
from repro.analysis.sanitizer import poison as _poison
from repro.analysis.sanitizer import readonly_view as _readonly_view
from repro.geometry import Rect, RectSet
from repro.legion.backend import ExecutionBackend, create_backend
from repro.legion import fastpath as _fastpath
from repro.legion import fusion
from repro.legion import resilience as _resilience
from repro.legion.chaos import ChaosConfig, ChaosInjector, LossSchedule, chaos_default
from repro.legion.coherence import RegionCoherence
from repro.legion.exceptions import FaultError, OutOfMemoryError
from repro.legion.future import Future
from repro.legion.instance import Instance, InstanceManager
from repro.legion.partition import Partition, Replicate, Tiling
from repro.legion.privilege import Privilege
from repro.legion.profiler import Profiler
from repro.legion.region import Region
from repro.legion.task import Pointwise, Requirement, ShardContext, TaskLaunch
from repro.legion.timeline import Timeline
from repro.legion.timeline import profile_default as _profile_default
from repro.legion.timeline import register as _register_timeline
from repro.machine import MachineScope, Memory, MemoryKind, Processor


@dataclass
class RuntimeConfig:
    """Per-system tunables; presets model the paper's compared systems."""

    name: str = "legate"
    # Python-side cost of launching one task (constraint solving, metadata
    # management, Legion dispatch).
    launch_overhead: float = 1.3e-4
    # Extra per-shard mapping cost charged on each shard's start.
    shard_overhead: float = 2.0e-6
    # Scalar allreduce: fixed overhead plus per-tree-hop overhead on top
    # of the network latency model, plus a per-participant term modelling
    # the O(P) bookkeeping in Legion's allreduce implementation that the
    # paper reports being exposed at 32+ nodes (Fig. 9, footnote 1).
    allreduce_base_overhead: float = 2.0e-5
    allreduce_hop_overhead: float = 3.0e-5
    allreduce_linear_overhead: float = 1.5e-5
    # Framebuffer bytes reserved by the runtime and external CUDA
    # libraries (why Legate cannot run ML-25M on one GPU in Fig. 12).
    reserved_fb_bytes: int = int(2.5 * 2**30)
    # Mapper behaviour (ablatable).
    # Deferred instance collection: recycled allocations for this many
    # in-flight tasks stay charged (see instance.py).
    inflight_pool_window: int = 24
    coalescing: bool = True
    coalesce_slack: float = 2.0
    reuse_partitions: bool = True
    # Cost penalty for reshaping global-format local pieces into the
    # layouts external local libraries (cuSPARSE/MKL) accept (§3).
    local_reshape_penalty: bool = True
    # Exact (piecewise) coordinate images: copy only the referenced
    # runs instead of the bounding rect.  Legion's images are exact;
    # bounding rects model compact rectangular instances.  Ablatable.
    exact_images: bool = False
    # Kernel efficiency multiplier for SDDMM-like fused kernels; the
    # baseline cuSPARSE SDDMM is modelled as inefficient (Fig. 12).
    sddmm_inefficiency: float = 1.0
    # Automatic task fusion (repro.legion.fusion): element-wise launches
    # are buffered in a deferred window and compatible runs merged into
    # one launch (one launch overhead instead of N; in-window
    # temporaries elided).  On for Legate — the paper's named fix for
    # the small-task overhead gap (§6.1) — off for the comparison
    # systems, which have no such runtime.
    fusion: bool = True
    # Deferred window capacity: the window flushes when full (and on
    # future waits, non-fusible launches, barriers and scope exits).
    fusion_window: int = 16
    # Kernel fusion (repro.analysis.depend + distal.codegen): fused
    # groups the dependence analyzer proves merge-safe execute as ONE
    # generated loop nest — in-window temporaries become nest values,
    # shared operands are read once, one cost entry for the group.
    # Groups it cannot prove replay sub-kernels in issue order exactly
    # as before.  On for Legate; pinned off under
    # harness.config.paper_legate so published figures are unchanged.
    kernel_fusion: bool = True
    # Kernel slowdown once a memory fills past the threshold — the
    # "CuPy runs close to the GPU memory limit" effect on ML-25M
    # (Fig. 12): allocator churn and fragmented, uncoalesced buffers.
    memory_pressure_threshold: float = 0.85
    memory_pressure_slowdown: float = 1.0
    # Problem magnification: benchmarks build problems at a reduced size
    # that fits in host RAM and set data_scale so that simulated kernel
    # work, copy volumes and memory footprints correspond to the
    # paper-scale problem.  Numerics stay exact at the reduced size.
    data_scale: float = 1.0
    # Communication magnification for inter-memory copies.  Defaults to
    # data_scale, but problems whose halos are *surfaces* scale them
    # differently: a 2-D grid's halo grows with sqrt(N), a banded
    # matrix's halo not at all, the quantum Hamiltonian's with N.
    comm_scale: float | None = None
    # Automatic format selection (repro.analysis.formatsel): at a CSR
    # matrix's first SpMV, replay the static format selector against
    # the machine model and convert the operand to the modeled-best
    # bitwise-safe format (ELL / SELL-C-sigma / HYB).  Off by default
    # and forced off under harness.config.paper_legate — the paper's
    # system speaks CSR/COO only, so published figures are unchanged.
    autoformat: bool = False
    # Validation mode (repro.analysis): record an event log of every
    # launch/shard/copy/fold, sanitize kernel arguments (read-only READ
    # views, NaN-poisoned WRITE_DISCARD rects) and assert reads are
    # never stale.  Off by default — the hot path then carries only a
    # handful of ``is not None`` checks.  Defaults from REPRO_VALIDATE.
    validate: bool = field(default_factory=_validation_default)
    # Graceful OOM degradation: before raising OutOfMemoryError, evict
    # LRU clean instances (valid elsewhere per coherence) and spill
    # dirty pieces to system memory over the modeled channels.  On for
    # Legate — real Legion mappers fall back this way — off for the
    # comparison systems and under harness.config.paper_legate, whose
    # Fig. 11/12 OOM outcomes are the published result.
    spill: bool = True
    # Host-side fast path (repro.legion.fastpath): batched coherence
    # write analysis, a version-checked instance lookup cache, memoized
    # constraint solving by structural signature, and the deferred
    # window's reference counts.  This trades host CPU for nothing
    # simulated: modeled times, event logs and numerics are
    # bitwise-identical with the flag off (the overhead bench and
    # tests/legion/test_fastpath.py enforce it).  On by default; pinned
    # off under harness.config.paper_legate so the published figure
    # paths exercise the original per-requirement analyses.
    fastpath: bool = True
    # Deterministic fault injection (repro.legion.chaos): None means no
    # injection; defaults from the REPRO_CHAOS environment variable.
    chaos: Optional[ChaosConfig] = field(default_factory=chaos_default)
    # Timeline profiling (repro.legion.timeline): record a Legion-Prof
    # style span for every modeled activity — task shards, copies,
    # retries, resizes, folds, allreduces, spills, checkpoint traffic,
    # launch overhead.  Off by default (the hot path then pays one
    # ``is not None`` check per site); defaults from REPRO_PROFILE.
    profile: bool = field(default_factory=_profile_default)
    # Execution backend (repro.legion.backend): who owns the clocks and
    # how client programs are driven — "simulated" (virtual clocks,
    # sequential; the classic shape), "sync" (adds per-program host
    # wall-clock accounting) or "asyncio" (programs interleave as
    # coroutines, the serving shape).  Modeled time and numerics are
    # backend-independent by construction.
    backend: str = "simulated"

    @property
    def effective_comm_scale(self) -> float:
        """The magnification applied to inter-memory copy volumes."""
        return self.data_scale if self.comm_scale is None else self.comm_scale

    @classmethod
    def legate(cls, **overrides) -> "RuntimeConfig":
        """The system under evaluation: Legate Sparse + cuNumeric."""
        return cls(name="legate", **overrides)

    @classmethod
    def cupy(cls, **overrides) -> "RuntimeConfig":
        """Single-GPU CuPy: small launch overhead, cuSPARSE kernel quirks."""
        defaults = dict(
            name="cupy",
            allreduce_linear_overhead=0.0,
            launch_overhead=1.6e-5,
            shard_overhead=0.0,
            allreduce_base_overhead=0.0,
            allreduce_hop_overhead=0.0,
            reserved_fb_bytes=int(0.6 * 2**30),
            local_reshape_penalty=False,
            sddmm_inefficiency=5.0,
            memory_pressure_slowdown=6.0,
            fusion=False,
            spill=False,
        )
        defaults.update(overrides)
        return cls(**defaults)

    @classmethod
    def scipy(cls, **overrides) -> "RuntimeConfig":
        """Stock SciPy: one CPU core, negligible dispatch overhead."""
        defaults = dict(
            name="scipy",
            allreduce_linear_overhead=0.0,
            launch_overhead=2.0e-6,
            shard_overhead=0.0,
            allreduce_base_overhead=0.0,
            allreduce_hop_overhead=0.0,
            reserved_fb_bytes=0,
            local_reshape_penalty=False,
            fusion=False,
            spill=False,
        )
        defaults.update(overrides)
        return cls(**defaults)

    @classmethod
    def petsc(cls, **overrides) -> "RuntimeConfig":
        """PETSc-grade constants (used for sanity checks; the real
        comparator is repro.baselines.petsc)."""
        defaults = dict(
            name="petsc",
            allreduce_linear_overhead=0.0,
            launch_overhead=4.0e-6,
            shard_overhead=0.0,
            allreduce_base_overhead=1.0e-6,
            allreduce_hop_overhead=2.0e-6,
            reserved_fb_bytes=int(0.4 * 2**30),
            local_reshape_penalty=False,
            fusion=False,
            spill=False,
        )
        defaults.update(overrides)
        return cls(**defaults)


class Runtime:
    """One simulated execution: a machine scope plus clocks and state."""

    def __init__(
        self,
        scope: MachineScope,
        config: Optional[RuntimeConfig] = None,
        backend: Optional[ExecutionBackend] = None,
    ):
        self.scope = scope
        self.machine = scope.machine
        self.config = config or RuntimeConfig()
        # The execution backend owns the clocks (issue clock, per-proc
        # busy times) and decides how client programs are driven; the
        # runtime reads/writes them through the properties below, so
        # all mapping/coherence code is backend-agnostic.
        self.backend = backend or create_backend(self.config.backend)
        self.backend.attach(scope.processors)
        self.profiler = Profiler()
        self.instances = InstanceManager(
            reserved_fb_bytes=self.config.reserved_fb_bytes,
            coalesce_slack=self.config.coalesce_slack,
            coalescing=self.config.coalescing,
            data_scale=self.config.data_scale,
            inflight_window=self.config.inflight_pool_window,
        )
        self._coherence: Dict[int, RegionCoherence] = {}
        # Advisor capture (repro.analysis.plan.PlanTrace): when set, task
        # launches, fills, region creates/frees and library notes are
        # recorded; in deferred mode launches are skipped entirely.
        self.plan_trace = None
        # Validation mode: the structured event log the offline checker
        # (python -m repro.analysis) replays.  None when not validating.
        self.event_log: Optional[EventLog] = None
        if self.config.validate:
            self.event_log = _register_log(EventLog(name=self.config.name))
        # Timeline profiling: the span recorder, or None when off.
        self.timeline: Optional[Timeline] = None
        if self.config.profile:
            self.timeline = _register_timeline(
                Timeline(
                    name=self.config.name,
                    meta={
                        "procs": len(scope.processors),
                        "kind": scope.kind.value,
                        "nodes": scope.nodes,
                    },
                )
            )
        self._proc_label = {
            p.uid: f"{p.kind.value}[{p.uid}]" for p in scope.processors
        }
        # Memory-magnification overrides keyed by region dim-0 extent;
        # see Region.mem_scale.
        self.mem_scale_by_extent: Dict[int, float] = {}
        # Optional tracing hook (repro.legion.tracing): called with the
        # task name per launch; returns a launch-overhead multiplier.
        self._trace_hook = None
        # Deferred launch window (automatic task fusion, see
        # repro.legion.fusion): fusible launches buffer here; flush
        # plans groups and executes.  The plan cache memoizes grouping
        # decisions by structural window signature, so a traced loop
        # pays the planning cost once per distinct window shape.
        self._window: List[TaskLaunch] = []
        self._deferred_frees: List[int] = []
        # Plans plus kernel-fusion verdicts, memoized per structural
        # window signature (the signature includes each launch's body
        # IR, so distinct programs can never share a cached verdict).
        self._fusion_cache: Dict[
            tuple, Tuple[List[fusion.GroupPlan], List["object"]]
        ] = {}
        # Generated nest specs per (window signature, group, elided /
        # dead local ids, step dtypes).  Nest kernels reference only
        # mangled requirement names — never regions — so a spec is
        # reusable across structurally identical windows; dtypes join
        # the key because the window signature does not carry them and
        # each step's cast target is baked into the source.
        self._nest_cache: Dict[tuple, "object"] = {}
        # Every executed window group, in order: (sub-launch names,
        # number of elided temporaries, verdict label) where the label
        # is depend.verdict_label — "single", "merged" or
        # "replay:<reason>".  The advisor's capture-alongside agreement
        # test compares its predictions to this, group for group.
        self.fusion_log: List[Tuple[Tuple[str, ...], int, str]] = []
        # Every runtime auto-format conversion, in order (see
        # RuntimeConfig.autoformat and csr_matrix._autoformat_alt).
        # The advisor agreement test compares its (rows, nnz, dst_fmt)
        # entries against ``advise --autoformat`` predictions.
        self.autoformat_log: List[dict] = []
        self.machine.reset_channels()
        # Host staging memory: node-0 system memory.
        self._host_memory = next(
            m for m in self.machine.memories if m.kind == MemoryKind.SYSMEM
        )
        self._rng = np.random.default_rng(0x5EED)
        # Resilience (repro.legion.chaos): the injector draws the fault
        # schedule; the journal holds every launch executed since the
        # last checkpoint epoch so a node loss can be recovered by
        # replay.  Journaling only runs when a loss is scheduled — the
        # fault-free hot path pays a single None check.
        self._chaos = (
            ChaosInjector(self.config.chaos)
            if self.config.chaos is not None
            else None
        )
        self._journaling = (
            self._chaos is not None and self.config.chaos.has_losses
        )
        self._journal: List[TaskLaunch] = []
        # Resilience 2.0 (repro.legion.resilience): checkpoint snapshots
        # are replicated into the sysmems of ckpt_replicas distinct
        # fault domains; the manifest remembers what the last epoch
        # protects so the recovery planner can re-source every piece
        # from the cheapest surviving replica.  replicas=1 is exactly
        # the original single node-0 store.
        self._ckpt_stores: List[Memory] = _resilience.place_stores(
            self.machine,
            self.config.chaos.ckpt_replicas
            if self.config.chaos is not None
            else 1,
        )
        self._ckpt_manifest = _resilience.CheckpointManifest()
        # Regions freed since the last checkpoint: journal replay must
        # skip their requirements (coherence and instances are gone).
        self._freed_uids: set = set()
        self._in_recovery = False
        self._launches_since_ckpt = 0
        # Region metadata the spill/checkpoint paths need after mapping
        # (uid -> (name, itemsize)); dropped on free.
        self._region_meta: Dict[int, Tuple[str, int]] = {}
        # Host fast path (repro.legion.fastpath, RuntimeConfig.fastpath):
        # the version-checked instance lookup cache, the constraint-solve
        # memo consulted by AutoTask.execute, per-region-uid reference
        # counts over the deferred window (replacing free_region's
        # window scan), and the in-flight batched-write map (region
        # name -> (coherence, [(mem_uid, rect, t)])) that _execute
        # defers per-color mark_written calls into.  All None/empty
        # when the fast path is off.
        self._lookup_cache = (
            _fastpath.InstanceLookupCache() if self.config.fastpath else None
        )
        self._image_cache = (
            _fastpath.ImagePartitionCache() if self.config.fastpath else None
        )
        self._solve_memo = _fastpath.SolveMemo()
        self._window_refs: Dict[int, int] = {}
        self._pending_writes: Optional[dict] = None
        if self.timeline is not None:
            # Live references: save() then serializes the totals as of
            # export time without extra plumbing.
            self.timeline.meta["fastpath"] = self.config.fastpath
            self.timeline.meta["host_phases"] = (
                self.profiler.host_phase_seconds
            )
            self.timeline.meta["caches"] = self.profiler.fastpath_counters

    # ------------------------------------------------------------------
    # Clock delegation (the execution backend owns the clock state)
    # ------------------------------------------------------------------
    @property
    def issue_time(self) -> float:
        """The issue clock (owned by the execution backend)."""
        return self.backend.issue_time

    @issue_time.setter
    def issue_time(self, value: float) -> None:
        self.backend.issue_time = value

    @property
    def _proc_busy(self) -> Dict[int, float]:
        """Per-processor busy-until clocks (owned by the backend)."""
        return self.backend.proc_busy

    # ------------------------------------------------------------------
    # Program boundaries (long-lived / multi-tenant use)
    # ------------------------------------------------------------------
    def reset_for_program(self, clear_caches: bool = False) -> None:
        """Reset per-program state between back-to-back programs.

        A runtime historically lived exactly as long as one program, so
        several pieces of state are implicitly program-scoped and *leak*
        when a long-lived server reuses one runtime instance across
        client programs.  The audited leaks, each closed here:

        * **the deferred fusion window** — launches a program buffered
          but never synced would flush into the *next* program's
          timeline (and could fuse with its launches);
        * **the checkpoint cadence counter** — ``_launches_since_ckpt``
          carried over, so the next program's first auto-checkpoint
          fired early (after ``N - k`` launches instead of ``N``);
        * **the recovery journal** — journaled tasks referencing the
          previous program's (possibly freed) regions would be replayed
          into the next program's state after a loss;
        * **``fusion_log`` / ``autoformat_log``** — unbounded growth,
          and one tenant's op-stream shape visible to the next
          (a cross-tenant information leak in a serving context);
        * **the tracing hook and any in-flight batched writes**.

        When chaos journaling is active the journal cannot simply be
        dropped — recovery replays from the last checkpoint epoch, so a
        program boundary *is* a checkpoint epoch boundary: this method
        takes a checkpoint (which syncs, snapshots dirty state and
        clears the journal) instead of discarding coverage.

        ``clear_caches=True`` additionally drops the structural caches
        (fusion plans, generated nests, solve memo, instance/image
        lookups).  They are keyed structurally and never leak numerics,
        so a shared-model server keeps them warm across tenants by
        default; a strict-isolation tenant can clear them.

        Profiler counters are deliberately *not* reset — they are
        cumulative observability state; callers wanting per-program
        deltas use :meth:`Profiler.snapshot` / :meth:`Profiler.since`.
        """
        self._sync("reset-for-program")
        self._pending_writes = None
        self._trace_hook = None
        if self._journaling and (self._journal or self._freed_uids):
            # Program boundary == checkpoint epoch boundary (see above).
            self.checkpoint()
        self._journal.clear()
        self._freed_uids.clear()
        self._launches_since_ckpt = 0
        self.fusion_log.clear()
        self.autoformat_log.clear()
        if clear_caches:
            self._fusion_cache.clear()
            self._nest_cache.clear()
            self._solve_memo.clear()
            if self._lookup_cache is not None:
                self._lookup_cache.clear()
            if self._image_cache is not None:
                self._image_cache.clear()

    # ------------------------------------------------------------------
    # Region management
    # ------------------------------------------------------------------
    def create_region(
        self,
        shape: Tuple[int, ...],
        dtype,
        data: Optional[np.ndarray] = None,
        name: str = "",
    ) -> Region:
        """Create a region (host data becomes valid in node-0 sysmem)."""
        region = Region(shape, dtype, data=data, name=name, runtime=self)
        coh = RegionCoherence()
        self._coherence[region.uid] = coh
        self._region_meta[region.uid] = (region.name, region.itemsize)
        if data is not None and region.rect.volume() > 0:
            # Attached host data: valid in node-0 system memory.  No
            # instance is charged — attach semantics: the host copy is a
            # staging fiction for data that real runs construct
            # distributed (capacity accounting applies to the instances
            # tasks map, like Legion attach).
            coh.mark_valid(self._host_memory.uid, region.rect, self.issue_time)
        if self.plan_trace is not None:
            self.plan_trace.record_region(region, attached=data is not None)
        return region

    def coherence(self, region: Region) -> RegionCoherence:
        """A region's validity-tracking state."""
        coh = self._coherence.get(region.uid)
        if coh is None:
            coh = RegionCoherence()
            self._coherence[region.uid] = coh
        return coh

    def free_region(self, region: Region) -> None:
        """Recycle instances and drop coherence state.

        Frees deliberately do NOT flush the deferred window — in-window
        temporaries are destroyed right after each expression statement,
        and flushing here would empty the window every statement and
        defeat fusion.  A region still referenced by a pending launch
        has its instance recycling deferred until after the next flush
        (the launch holds the region's backing array alive, so numerics
        are unaffected)."""
        if self._journaling:
            self._freed_uids.add(region.uid)
        if self.config.fastpath:
            # O(1) window-reference check: launch() counts each pending
            # launch's region uids into _window_refs (cleared when the
            # window swaps out for flushing).
            referenced = self._window_refs.get(region.uid, 0) > 0
        else:
            referenced = any(
                req.region.uid == region.uid
                for task in self._window
                for req in task.requirements
            )
        if referenced:
            self._deferred_frees.append(region.uid)
        else:
            self._coherence.pop(region.uid, None)
            self._region_meta.pop(region.uid, None)
            self.instances.free_region(region.uid)
        if self.plan_trace is not None:
            self.plan_trace.record_free(region.uid)

    @property
    def num_procs(self) -> int:
        """Processors in this runtime's scope."""
        return len(self.scope.processors)

    @property
    def rng(self) -> np.random.Generator:
        """The runtime-seeded random generator."""
        return self._rng

    def seed(self, value: int) -> None:
        """Reset the runtime random generator."""
        self._rng = np.random.default_rng(value)

    # ------------------------------------------------------------------
    # Clocks
    # ------------------------------------------------------------------
    def wait(self, future: Future) -> Any:
        """Block the issuing program on a future (control-flow sync)."""
        self._sync("wait")
        self.issue_time = max(self.issue_time, future.ready_time)
        return future.value

    def barrier(self) -> float:
        """Wait for all outstanding work; returns the simulated time.

        "All outstanding work" includes channel occupancy: a trailing
        copy — an asynchronous checkpoint snapshot or a spill issued
        after the last kernel — keeps the machine busy past every
        processor clock, and the sync point must wait for it.  (The
        pre-fix formula took only ``max(issue, procs)`` and silently
        under-reported runs ending in a copy.)
        """
        self._sync("barrier")
        self.issue_time = self.backend.horizon(self.machine)
        if self.timeline is not None:
            self.timeline.note_horizon(self.issue_time)
        return self.issue_time

    def elapsed(self) -> float:
        """Latest simulated time across issue, processors and channels."""
        self._sync("elapsed")
        horizon = self.backend.horizon(self.machine)
        if self.timeline is not None:
            self.timeline.note_horizon(horizon)
        return horizon

    # ------------------------------------------------------------------
    # Copies
    # ------------------------------------------------------------------
    def _copy(
        self,
        src: Memory,
        dst: Memory,
        nbytes: int,
        ready: float,
        label: str = "",
        category: str = "copy",
    ) -> float:
        """Schedule a copy between memories; returns its finish time.

        Under chaos injection a copy attempt may hit a transient link
        error: the doomed attempt still occupies the channels, then the
        runtime backs off exponentially (on the simulated clock) and
        retries, up to ``ChaosConfig.max_retries`` — after which the
        fault is deemed permanent and raises :class:`FaultError`.
        Numerics are untouched: only modeled time is lost.

        ``label``/``category`` name the timeline span when profiling
        (category "copy", or "spill"/"checkpoint" for those paths).
        """
        nbytes = int(nbytes * self.config.effective_comm_scale)
        channels = self.machine.channels_between(src, dst)
        start = max([ready] + [c.busy_until for c in channels])
        latency = sum(c.latency for c in channels)
        bandwidth = min(c.bandwidth for c in channels)
        tl = self.timeline
        chaos = self._chaos
        if chaos is not None:
            attempt = 0
            while chaos.copy_fault():
                attempt += 1
                self.profiler.record_fault("copy")
                if self.event_log is not None:
                    self.event_log.record_fault(
                        "copy", detail=f"attempt {attempt}"
                    )
                if attempt > chaos.config.max_retries:
                    raise FaultError(
                        f"copy of {nbytes} bytes ({src.kind.value}[{src.uid}]"
                        f" -> {dst.kind.value}[{dst.uid}]) still failing "
                        f"after {attempt - 1} retries"
                    )
                # The failed attempt held the wire; back off, retry.
                failed = start + latency + nbytes / bandwidth
                pause = chaos.backoff(attempt)
                self.profiler.record_retry(pause)
                for chan in channels:
                    chan.busy_until = max(chan.busy_until, failed)
                    if tl is not None:
                        tl.record(
                            "retry", chan.name,
                            f"{label or 'copy'}!attempt{attempt}",
                            start, failed, nbytes=nbytes,
                        )
                        tl.record(
                            "backoff", chan.name,
                            f"{label or 'copy'}!backoff{attempt}",
                            failed, failed + pause,
                        )
                start = failed + pause
        finish = start + latency + nbytes / bandwidth
        for chan in channels:
            chan.busy_until = finish
            self.profiler.record_copy(chan.name, nbytes)
            if tl is not None:
                tl.record(
                    category, chan.name, label or category,
                    start, finish, nbytes=nbytes,
                )
        return finish

    def _intra_copy(
        self, memory: Memory, nbytes: int, ready: float, label: str = "resize"
    ) -> float:
        nbytes = int(nbytes * self.config.data_scale)
        chan = self.machine.channels_between(memory, memory)[0]
        start = max(ready, chan.busy_until)
        finish = start + nbytes / chan.bandwidth
        chan.busy_until = finish
        if self.timeline is not None:
            self.timeline.record(
                "resize", chan.name, label, start, finish, nbytes=nbytes
            )
        return finish

    # ------------------------------------------------------------------
    # Task launch: the deferred window (automatic task fusion)
    # ------------------------------------------------------------------
    def launch(self, task: TaskLaunch) -> Optional[Future]:
        """Issue a task launch.

        Fusible launches (element-wise, aligned tilings, no reduction —
        see :func:`repro.legion.fusion.fusible`) enter the deferred
        window; everything else flushes the window and executes
        eagerly.  Numerics are unaffected by the deferral: anything
        that could observe a pending result — future waits, barriers,
        host reads of store data, non-fusible launches (whose solve may
        read region data for image partitions) — flushes first.
        """
        chaos = self._chaos
        if (
            chaos is not None
            and chaos.config.checkpoint_every > 0
            and not self._in_recovery
        ):
            self._launches_since_ckpt += 1
            if self._launches_since_ckpt >= chaos.config.checkpoint_every:
                self._launches_since_ckpt = 0
                self.checkpoint()
        if (
            not self.config.fusion
            or task.reduction is not None
            or not fusion.fusible(task)
        ):
            self.flush_window()
            return self._execute(task)
        self._window.append(task)
        if self.config.fastpath:
            refs = self._window_refs
            for req in task.requirements:
                uid = req.region.uid
                refs[uid] = refs.get(uid, 0) + 1
        if len(self._window) >= self.config.fusion_window:
            self.flush_window()
        return None

    def flush_window(self) -> None:
        """Plan and execute every launch buffered in the window."""
        if not self._window:
            return
        window, self._window = self._window, []
        frees, self._deferred_frees = self._deferred_frees, []
        if self._window_refs:
            self._window_refs.clear()
        t0 = _perf()
        try:
            self._flush(window, frees)
        finally:
            # Regions freed while referenced by the (now executed or
            # abandoned) window: recycle their instances.
            for uid in frees:
                self._coherence.pop(uid, None)
                self._region_meta.pop(uid, None)
                self.instances.free_region(uid)
            self.profiler.record_host_phase("window-flush", _perf() - t0)

    def _flush(self, window: List[TaskLaunch], frees: Sequence[int] = ()) -> None:
        # Lazy imports: the analyzer/codegen reach repro.numeric, whose
        # package import comes back through this module.
        from repro.analysis import depend
        from repro.distal import codegen

        t0 = _perf()
        summaries = [fusion.summarize_launch(task) for task in window]
        key = fusion.signature(summaries)
        local = fusion.local_ids(summaries)
        cached = self._fusion_cache.get(key)
        if cached is None:
            plans = fusion.plan_window(summaries)
            verdicts = [
                depend.classify(summaries, local, plan) for plan in plans
            ]
            cached = (plans, verdicts)
            self._fusion_cache[key] = cached
        plans, verdicts = cached
        self.profiler.record_host_phase("dependence", _perf() - t0)
        uid_of = {lid: uid for uid, lid in local.items()}
        freed = frozenset(frees)
        for plan, verdict in zip(plans, verdicts):
            names = tuple(window[i].name for i in plan.indices)
            label = depend.verdict_label(
                plan, verdict, self.config.kernel_fusion
            )
            self.fusion_log.append((names, len(plan.elide), label))
            if plan.fused:
                group = [window[i] for i in plan.indices]
                elide_uids = frozenset(uid_of[lid] for lid in plan.elide)
                nest = None
                if label == "merged":
                    # Elided temporaries already freed by the host are
                    # provably dead: their stores are unobservable, so
                    # the nest keeps them as values only.
                    dead = frozenset(u for u in elide_uids if u in freed)
                    nest_key = (
                        key,
                        plan.indices,
                        plan.elide,
                        frozenset(local[u] for u in dead),
                        tuple(
                            str(
                                next(
                                    r.region.data.dtype
                                    for r in t.requirements
                                    if r.name == t.pointwise.out
                                )
                            )
                            for t in group
                        ),
                    )
                    nest = self._nest_cache.get(nest_key)
                    if nest is None:
                        nplan = depend.build_nest_plan(
                            group, elide_uids, dead
                        )
                        nest = codegen.generate_nest(nplan)
                        self._nest_cache[nest_key] = nest
                    self.profiler.record_kernel_merge(
                        len(plan.indices), nest.temps_eliminated
                    )
                merged = fusion.fuse(group, elide_uids, nest=nest)
                self.profiler.record_fusion(len(plan.indices), len(plan.elide))
                self._execute(merged)
            else:
                self._execute(window[plan.indices[0]])

    def _sync(self, why: str) -> None:
        """A synchronization point: flush the window, note it in the plan.

        The plan note lets the advisor's window simulation split its
        groups exactly where the runtime does — sync points are control
        flow the op stream alone cannot reveal.
        """
        if self.plan_trace is not None:
            self.plan_trace.record_note("sync", why=why)
        self.flush_window()

    def _execute(self, task: TaskLaunch, replay: bool = False) -> Optional[Future]:
        """Execute a task launch: map, copy, run, time (see module docs).

        With ``replay=True`` (journal replay after a loss) the task is
        re-mapped, re-staged and re-timed but its *kernel is skipped*:
        numerics never depend on placement, so the backing arrays
        already hold the exact results and replay restores only
        coherence/placement state — which is why a recovered run is
        bitwise-identical to a fault-free one by construction.
        """
        try:
            return self._execute_task(task, replay)
        except BaseException:
            # A shard failure mid-launch must not leave batched
            # coherence writes dangling: replay them sequentially so
            # the region tree holds the exact slow-path partial state.
            self._flush_pending_writes()
            raise

    def _flush_pending_writes(self) -> None:
        """Apply deferred coherence writes sequentially (slow-path order).

        Called when something needs the region tree mid-launch — memory
        pressure relief scans every region's coherence, and an exception
        abandons the launch with writes already performed.  Replaying
        the deferred ``(memory, rect, time)`` triples through
        ``mark_written`` in issue order reproduces the exact partial
        state the slow path would hold at this point.
        """
        pending = self._pending_writes
        if pending is None:
            return
        self._pending_writes = None
        for coh, writes in pending.values():
            for mem_uid, rect, t in writes:
                coh.mark_written(mem_uid, rect, t)

    def _execute_task(
        self, task: TaskLaunch, replay: bool = False
    ) -> Optional[Future]:
        chaos = self._chaos
        if chaos is not None and not replay and not self._in_recovery:
            due = chaos.take_losses(self.issue_time)
            if due:
                self._recover(due)
        colors = task.color_count
        procs = self.scope.processors
        self.profiler.record_task(task.name, colors)
        log = self.event_log
        validate = self.config.validate
        launch_id = log.record_task(task.name, colors) if log is not None else 0
        privileges = {req.name: req.privilege for req in task.requirements}
        overhead = self.config.launch_overhead
        if self._trace_hook is not None:
            overhead *= self._trace_hook(task.name)
        self.issue_time += overhead
        self.profiler.record_launch_overhead(overhead)
        tl = self.timeline
        if tl is not None:
            # One issue span per launch: a fused group shows as a single
            # span for the whole merged launch — the overhead saving
            # fusion buys is directly visible on the "issue" row.
            tl.record(
                "issue", "issue", task.name,
                self.issue_time - overhead, self.issue_time,
            )

        scalar_ready = 0.0
        scalar_values: Dict[str, Any] = {}
        for key, val in task.scalars.items():
            if isinstance(val, Future):
                scalar_ready = max(scalar_ready, val.ready_time)
                scalar_values[key] = val.value
            else:
                scalar_values[key] = val

        partials: List[Any] = []
        partial_times: List[float] = []
        reduce_writes: Dict[str, List[Tuple[Rect, Memory, float]]] = {}

        # Host fast path: requirements whose final coherence state is
        # independent of per-color write order (sole toucher of its
        # region, disjoint Tiling over that region) defer their writes
        # and apply them in one batch after the color loop — turning the
        # O(colors^2) incremental invalidation into one linear pass.
        if self.config.fastpath:
            # Any task write to a region invalidates cached images of
            # it (images read region data at solve time).
            image_cache = self._image_cache
            for req in task.requirements:
                if req.privilege.writes:
                    image_cache.bump(req.region.uid)
            eligible = _fastpath.eligible_write_reqs(
                task, replay, self._freed_uids
            )
            if eligible:
                self._pending_writes = {
                    name: (self.coherence(req.region), [])
                    for name, req in eligible.items()
                }
        map_s = 0.0
        event_s = 0.0

        for color in range(colors):
            proc = procs[color % len(procs)]
            memory = proc.memory
            t_input = max(
                self.issue_time,
                scalar_ready,
                self._proc_busy[proc.uid] + self.config.shard_overhead,
            )

            arrays: Dict[str, np.ndarray] = {}
            rects: Dict[str, Rect] = {}
            skipped: set = set()
            t_map = _perf()
            for req in task.requirements:
                if replay and req.region.uid in self._freed_uids:
                    # The region was freed after this journaled launch:
                    # its coherence and instances are gone, and nothing
                    # downstream can read it — skip it physically and
                    # (below) in the event log.
                    skipped.add(req.name)
                    rects[req.name] = req.partition.rect(color)
                    arrays[req.name] = req.region.data
                    continue
                rect = req.partition.rect(color)
                data = req.region.data
                if validate and not req.privilege.writes:
                    # Privilege sanitizer: writing a READ argument must
                    # fail loudly, not corrupt other shards' data.
                    data = _readonly_view(data)
                arrays[req.name] = data
                rects[req.name] = rect
                if rect.is_empty():
                    continue
                if validate and not replay and req.privilege is Privilege.WRITE_DISCARD:
                    # Discarded contents must never be observed: poison
                    # them so reads of undefined data propagate NaNs.
                    # (Replay keeps the real results intact.)
                    _poison(req.region.data, rect)
                if req.elide:
                    # Elided temporary (produced and consumed inside
                    # this fused task): no instance allocation, no
                    # staging.  Coherence is still marked on write so a
                    # read escaping the group stays correct.
                    continue
                inst, resize_bytes, fresh, t_input = self._map_instance(
                    memory, req, rect, task, t_input
                )
                if resize_bytes:
                    self.profiler.record_resize(resize_bytes)
                    t_input = self._intra_copy(
                        memory, resize_bytes, t_input,
                        label=f"resize:{req.region.name or req.name}",
                    )
                if req.privilege.reads:
                    pieces = req.partition.pieces(color)
                    if fresh:
                        # Populate the new instance with whatever part of
                        # the rect is already valid in this memory (held
                        # by other instances of the region).
                        coh = self.coherence(req.region)
                        missing = sum(
                            piece.volume()
                            for piece in coh.missing(memory.uid, rect)
                        )
                        dup = (rect.volume() - missing) * req.region.itemsize
                        if dup > 0:
                            self.profiler.record_resize(dup)
                            t_input = self._intra_copy(
                                memory, dup, t_input,
                                label=f"dup:{req.region.name or req.name}",
                            )
                    for piece in pieces:
                        t_input = self._stage_reads(
                            req.region, memory, piece, t_input, replay=replay
                        )
            map_s += _perf() - t_map

            ctx = ShardContext(
                color, colors, arrays, rects, scalar_values, self.config,
                privileges,
            )
            flops, nbytes = task.cost_fn(ctx)
            scale = self.config.data_scale
            exec_time = proc.kernel_time(float(flops) * scale, float(nbytes) * scale)
            if self.config.memory_pressure_slowdown != 1.0:
                state = self.instances.state(memory)
                budget = memory.capacity - state.reserved_bytes
                if budget > 0 and (
                    state.used_bytes / budget
                    > self.config.memory_pressure_threshold
                ):
                    exec_time *= self.config.memory_pressure_slowdown
            self.profiler.kernel_seconds += exec_time
            start = t_input
            finish = start + exec_time
            self._proc_busy[proc.uid] = finish
            self.profiler.record_event(task.name, start, finish)
            if tl is not None:
                tl.record(
                    "task", self._proc_label[proc.uid],
                    f"replay:{task.name}" if replay else task.name,
                    start, finish,
                    nbytes=int(float(nbytes) * scale),
                    flops=float(flops) * scale,
                )

            if not replay:
                partial = task.kernel(ctx)
                if task.reduction is not None:
                    partials.append(partial)
                    partial_times.append(finish)

            t_event = _perf()
            for req in task.requirements:
                if req.name in skipped:
                    continue
                rect = rects[req.name]
                if rect.is_empty() or not req.privilege.writes:
                    continue
                if req.privilege == Privilege.REDUCE:
                    reduce_writes.setdefault(req.name, []).append(
                        (rect, memory, finish)
                    )
                else:
                    # Re-read _pending_writes each iteration: pressure
                    # relief mid-launch flushes it and later writes must
                    # go direct.
                    pending = (
                        None if self._pending_writes is None
                        else self._pending_writes.get(req.name)
                    )
                    if pending is not None:
                        pending[1].append((memory.uid, rect, finish))
                    else:
                        self.coherence(req.region).mark_written(
                            memory.uid, rect, finish
                        )
            event_s += _perf() - t_event

            if log is not None:
                log.record_shard(
                    launch_id, task.name, color, proc.uid, memory.uid,
                    [
                        ReqAccess(
                            req.name, req.region.uid, req.region.name,
                            rects[req.name], req.privilege.value,
                            tuple(req.partition.pieces(color))
                            if req.privilege.reads else (),
                        )
                        for req in task.requirements
                        if req.name not in skipped
                    ],
                    start, finish, replay=replay,
                )

        pending_map = self._pending_writes
        if pending_map is not None:
            # All colors done: the deferred writes cover each region
            # with disjoint tiles, so one batched rebuild lands the
            # exact state the sequential invalidations would have.
            self._pending_writes = None
            t_event = _perf()
            counters = self.profiler.fastpath_counters
            for coh, writes in pending_map.values():
                if writes:
                    coh.write_complete(writes)
                    counters["batched_writes"] += len(writes)
            event_s += _perf() - t_event
        if map_s:
            self.profiler.record_host_phase("mapping", map_s)
        if event_s:
            self.profiler.record_host_phase("event-advance", event_s)

        for req in task.requirements:
            if req.name in reduce_writes:
                self._fold_reduction(
                    task, req, reduce_writes[req.name], colors, launch_id
                )

        if self._journaling:
            self._journal.append(task)
        if task.reduction is not None:
            if replay:
                # Replay skips kernels, so there are no partials to
                # reduce; the original future already carries the value.
                return None
            return self.allreduce(partials, partial_times, op=task.reduction)
        return None

    def _stage_reads(
        self,
        region: Region,
        memory: Memory,
        rect: Rect,
        t_input: float,
        replay: bool = False,
    ) -> float:
        """Make ``rect`` of ``region`` valid in ``memory``; derive copies.

        During journal replay, pieces valid nowhere are skipped without
        complaint: the original execution already consumed them, and a
        value overwritten after the last checkpoint may legitimately no
        longer exist anywhere (kernels are skipped, so nothing actually
        reads the missing bytes).
        """
        coh = self.coherence(region)
        t_input = max(t_input, coh.ready_time(memory.uid, rect))
        missing = coh.missing(memory.uid, rect)
        for piece in missing:
            for src_uid, frag, t_src in coh.find_source(piece, exclude=memory.uid):
                src_mem = self._memory_by_uid(src_uid)
                nbytes = frag.volume() * region.itemsize
                finish = self._copy(
                    src_mem, memory, nbytes, t_src,
                    label=f"stage:{region.name}" if region.name else "stage",
                )
                if self.event_log is not None:
                    self.event_log.record_copy(
                        region.uid, region.name, frag,
                        src_uid, memory.uid, nbytes,
                    )
                coh.mark_valid(memory.uid, frag, finish)
                t_input = max(t_input, finish)
        if self.config.validate and not replay:
            # Online stale-read assertion: after staging, every piece of
            # the rect that was ever written must be valid here.
            bad = coh.stale(memory.uid, rect)
            if bad:
                raise ValidationError(
                    f"stale read of region {region.name!r}: pieces {bad} "
                    f"were written but never made valid in memory "
                    f"{memory.uid}"
                )
        return t_input

    def _map_instance(
        self,
        memory: Memory,
        req: Requirement,
        rect: Rect,
        task: TaskLaunch,
        t_input: float,
    ) -> Tuple[Instance, int, bool, float]:
        """Find-or-create the shard's instance, resiliently.

        Transient allocation faults (chaos) retry with exponential
        backoff on the simulated clock.  On :class:`OutOfMemoryError`
        with spilling enabled, the runtime relieves pressure (drain the
        recycled pool, evict clean LRU instances, spill dirty pieces to
        system memory over the modeled channels) and retries; when
        relief frees nothing, the annotated error propagates.
        """
        chaos = self._chaos
        attempt = 0
        while True:
            if chaos is not None and chaos.alloc_fault():
                attempt += 1
                self.profiler.record_fault("alloc")
                if self.event_log is not None:
                    self.event_log.record_fault(
                        "alloc", detail=f"task {task.name!r} attempt {attempt}"
                    )
                if attempt > chaos.config.max_retries:
                    raise FaultError(
                        f"allocation for task {task.name!r} in "
                        f"{memory.kind.value}[{memory.uid}] still failing "
                        f"after {attempt - 1} retries"
                    )
                pause = chaos.backoff(attempt)
                self.profiler.record_retry(pause)
                if self.timeline is not None:
                    self.timeline.record(
                        "backoff",
                        f"{memory.kind.value}[{memory.uid}]",
                        f"alloc:{task.name}!backoff{attempt}",
                        t_input, t_input + pause,
                    )
                t_input += pause
                continue
            cache = self._lookup_cache
            if cache is not None:
                # Version-checked hit: the memory's instance set has not
                # changed since this (memory, region, rect) resolved, so
                # ensure() would find-hit the same instance.  Replicate
                # its LRU side effect and skip the search.
                st = self.instances.state(memory)
                key = (memory.uid, req.region.uid, rect)
                inst = cache.get(key, st.version)
                if inst is not None:
                    st.touch(inst)
                    self.profiler.fastpath_counters["lookup_hits"] += 1
                    return inst, 0, False, t_input
            try:
                inst, resize_bytes, fresh = self.instances.ensure(
                    memory, req.region.uid, rect, req.region.itemsize,
                    scale=self._mem_scale(req.region),
                )
                if cache is not None:
                    cache.put(key, inst, st.version)
                    self.profiler.fastpath_counters["lookup_misses"] += 1
                return inst, resize_bytes, fresh, t_input
            except OutOfMemoryError as exc:
                if not self.config.spill:
                    raise exc.annotate(
                        region_name=req.region.name, task=task.name
                    ) from None
                pinned = {r.region.uid for r in task.requirements}
                t_relief, freed = self._relieve_pressure(
                    memory, exc.requested, t_input, pinned
                )
                if freed <= 0:
                    # Nothing left to evict or spill: a genuine OOM.
                    raise exc.annotate(
                        region_name=req.region.name, task=task.name
                    ) from None
                t_input = max(t_input, t_relief)

    def _relieve_pressure(
        self,
        memory: Memory,
        need_scaled: float,
        now: float,
        pinned: set,
    ) -> Tuple[float, float]:
        """Free capacity in ``memory`` for a ``need_scaled``-byte charge.

        Three escalating steps, stopping as soon as enough is free:

        1. drain the recycled-allocation pool (deferred collection);
        2. evict least-recently-used *clean* instances — pieces whose
           written data is fully valid in some other memory can simply
           be dropped (re-reads restage them);
        3. spill *dirty* pieces (only valid copy lives here, per
           :meth:`RegionCoherence.only_copy`) to system memory over the
           modeled channels, charging the copy time, then drop.

        Instances of regions in ``pinned`` (the task being mapped) are
        never touched.  Returns ``(ready_time, scaled_bytes_freed)``;
        zero freed means the caller's OOM is genuine.
        """
        # Spill decisions read every region's coherence (only_copy):
        # batched writes must land first so dirtiness is current.
        self._flush_pending_writes()
        st = self.instances.state(memory)
        before = st.available
        st.drain_pool()
        freed = max(0.0, st.available - before)
        t = now
        host = self._host_memory
        # Pass 1: drop clean LRU instances.
        if st.available < need_scaled:
            for inst in st.lru_instances():
                if st.available >= need_scaled:
                    break
                if inst.region_uid in pinned:
                    continue
                coh = self._coherence.get(inst.region_uid)
                if coh is None:
                    continue
                if not coh.only_copy(memory.uid, inst.rect).is_empty():
                    continue  # dirty: needs a spill, not a drop
                nbytes = st.drop_instance(inst)
                coh.invalidate(memory.uid, inst.rect)
                self.profiler.record_eviction(nbytes)
                if self.timeline is not None:
                    # Zero-width marker: dropping a clean instance costs
                    # no modeled time, but the pressure event matters.
                    name, _ = self._region_meta.get(inst.region_uid, ("", 0))
                    self.timeline.record(
                        "evict",
                        f"{memory.kind.value}[{memory.uid}]",
                        f"evict:{name or inst.region_uid}",
                        t, t, nbytes=int(nbytes),
                    )
                freed += nbytes
        # Pass 2: spill dirty instances to host system memory.
        if st.available < need_scaled and memory.uid != host.uid:
            for inst in st.lru_instances():
                if st.available >= need_scaled:
                    break
                if inst.region_uid in pinned:
                    continue
                coh = self._coherence.get(inst.region_uid)
                if coh is None:
                    continue
                name, itemsize = self._region_meta.get(
                    inst.region_uid, ("", inst.itemsize)
                )
                for rect in coh.only_copy(memory.uid, inst.rect).rects():
                    nbytes = rect.volume() * itemsize
                    finish = self._copy(
                        memory, host, nbytes,
                        max(t, coh.ready_time(memory.uid, rect)),
                        label=f"spill:{name or inst.region_uid}",
                        category="spill",
                    )
                    if self.event_log is not None:
                        self.event_log.record_copy(
                            inst.region_uid, name, rect,
                            memory.uid, host.uid, nbytes, why="spill",
                        )
                    coh.mark_valid(host.uid, rect, finish)
                    self.profiler.record_spill(
                        int(nbytes * self.config.effective_comm_scale)
                    )
                    t = max(t, finish)
                freed += st.drop_instance(inst)
                coh.invalidate(memory.uid, inst.rect)
        return t, freed

    # ------------------------------------------------------------------
    # Checkpoint / recovery (repro.legion.chaos)
    # ------------------------------------------------------------------
    def checkpoint(self) -> int:
        """Open a new checkpoint epoch: snapshot dirty data to the stores.

        Every written piece not already valid in a checkpoint store is
        copied there over the modeled channels (attach semantics: no
        sysmem instance is charged, like the host staging fiction in
        :meth:`create_region`).  With ``ChaosConfig.ckpt_replicas > 1``
        the snapshot lands in the sysmems of that many distinct fault
        domains (see :func:`repro.legion.resilience.place_stores`);
        traffic beyond the primary store is counted as replication
        bytes.  The journal then resets — a subsequent loss replays
        only tasks launched after this epoch — and the manifest records
        what the epoch protects, for the recovery planner.  Returns the
        scaled snapshot bytes (all replicas).

        The snapshot drains *asynchronously*: the issue clock is not
        blocked on it (real checkpointing overlaps compute), so only
        channel occupancy remembers the traffic — which is exactly what
        the sync-point clocks (:meth:`elapsed`/:meth:`barrier`) fold in.
        """
        self._sync("checkpoint")
        chaos = self._chaos
        if chaos is not None and not self._in_recovery:
            # A loss already due must recover *before* the snapshot: a
            # checkpoint drained after the loss time must not capture
            # state the loss has (in simulated time) already destroyed.
            due = chaos.take_losses(self.issue_time)
            if due:
                self._recover(due)
        # Re-place the stores each epoch: a node dead during the last
        # recovery has "restarted" by the next checkpoint and rejoins
        # the replica set.
        self._ckpt_stores = _resilience.place_stores(
            self.machine,
            chaos.config.ckpt_replicas if chaos is not None else 1,
        )
        manifest = _resilience.CheckpointManifest()
        primary_uid = self._ckpt_stores[0].uid
        total = 0
        replicated = 0
        nregions = 0
        for uid, coh in self._coherence.items():
            if coh.written.is_empty():
                continue
            name, itemsize = self._region_meta.get(uid, ("", 8))
            manifest.record(uid, name, RectSet(coh.written.rects()))
            copied = False
            for store in self._ckpt_stores:
                need = coh.written.subtract(coh.valid_set(store.uid))
                for rect in need.rects():
                    for src_uid, frag, t_src in coh.find_source(
                        rect, exclude=store.uid
                    ):
                        nbytes = frag.volume() * itemsize
                        finish = self._copy(
                            self._memory_by_uid(src_uid), store, nbytes,
                            max(self.issue_time, t_src),
                            label=f"ckpt:{name or uid}",
                            category="checkpoint",
                        )
                        if self.event_log is not None:
                            self.event_log.record_copy(
                                uid, name, frag, src_uid, store.uid,
                                nbytes, why="checkpoint",
                            )
                        coh.mark_valid(store.uid, frag, finish)
                        scaled = int(nbytes * self.config.effective_comm_scale)
                        total += scaled
                        if store.uid != primary_uid:
                            replicated += scaled
                        copied = True
            if copied:
                nregions += 1
        self._ckpt_manifest = manifest
        self.profiler.record_checkpoint(total)
        if replicated:
            self.profiler.record_replication(replicated)
        if self.event_log is not None:
            self.event_log.record_checkpoint(total, nregions)
        self._journal.clear()
        self._freed_uids.clear()
        return total

    def _recover(self, losses) -> None:
        """Recover from delivered GPU/node losses by journal replay.

        Resilience 2.0: each recovery round (1) wipes the lost
        memories' instances and coherence validity and charges the
        modeled detection stall (the heartbeat detector's suspected →
        confirmed transition) plus the recovery delay; (2) re-plans the
        replica set from surviving fault domains and restores every
        checkpoint-protected piece the replay will not re-write from
        the cheapest surviving copy (:mod:`repro.legion.resilience`) —
        raising :class:`FaultError` only when *all* replicas of a
        needed piece are gone (or, at ``ckpt_replicas=1``, whenever the
        single node-0 store is lost, the original contract); (3)
        replays every task journaled since the last checkpoint epoch in
        replay mode: re-mapping, re-staging and re-timing without
        re-running kernels, so the final answer is bitwise-identical to
        a fault-free run.  Recovery is *re-entrant*: a loss falling due
        mid-replay aborts the pass and restarts from step (1) — the
        journal's numerics are untouched, so replaying it again from
        the epoch is safe.
        """
        assert self._chaos is not None
        journal, self._journal = self._journal, []
        # Pieces the replay itself re-writes need no restore from a
        # replica (the coverage never over-approximates; see
        # resilience.journal_write_coverage).
        rewritten = _resilience.journal_write_coverage(
            journal, self._freed_uids
        )
        dead_nodes: set = set()
        self._in_recovery = True
        try:
            pending: List[LossSchedule] = list(losses)
            while pending:
                self.profiler.record_recovery()
                self._apply_losses(pending, dead_nodes)
                self._restore_replicas(rewritten, dead_nodes)
                pending = self._replay_journal(journal)
        finally:
            self._in_recovery = False

    def _apply_losses(self, losses, dead_nodes: set) -> None:
        """Wipe lost memories; charge detection + recovery stall.

        The failure detector runs on the simulated clock: a loss at
        ``t`` is *suspected* at the next heartbeat tick and *confirmed*
        ``detection_timeout`` later (:meth:`ChaosConfig
        .detection_times`); the run cannot react before confirmation,
        so the issue clock stalls to the latest confirmation before
        paying the per-loss recovery delay.
        """
        chaos = self._chaos
        lost: List[int] = []
        confirmed_at = self.issue_time
        for loss in losses:
            if loss.kind == "gpu":
                procs = self.scope.processors
                proc = procs[loss.target % len(procs)]
                mems = [proc.memory]
            else:
                mems = [
                    m for m in self.machine.memories if m.node == loss.target
                ]
                dead_nodes.add(loss.target)
            kind = f"{loss.kind}-loss"
            self.profiler.record_fault(kind)
            uids = [m.uid for m in mems]
            lost.extend(uids)
            suspected, confirmed = chaos.config.detection_times(loss.at_time)
            confirmed_at = max(confirmed_at, confirmed)
            self.profiler.record_detection(max(0.0, confirmed - loss.at_time))
            if self.event_log is not None:
                self.event_log.record_fault(
                    kind, uids,
                    detail=f"target={loss.target} at t={loss.at_time:g}",
                )
                self.event_log.record_detection(
                    kind, loss.target, loss.at_time, suspected, confirmed
                )
            if self.timeline is not None:
                # Detector state transitions (non-busy category:
                # annotation only, like "allreduce"/"recovery").
                self.timeline.record(
                    "detection", "detector",
                    f"suspect:{kind}[{loss.target}]",
                    loss.at_time, suspected,
                )
                self.timeline.record(
                    "detection", "detector",
                    f"confirm:{kind}[{loss.target}]",
                    suspected, confirmed,
                )
        if (
            chaos.config.ckpt_replicas == 1
            and self._host_memory.uid in lost
        ):
            # The original single-store contract: at replicas=1 the
            # checkpoint IS node-0 sysmem, and losing it is
            # unconditionally fatal even if copies survive elsewhere.
            raise FaultError(
                "node-0 system memory (the checkpoint store) was lost; "
                "recovery is impossible (replicate the checkpoint with "
                "ckpt_replicas >= 2 to survive store loss)"
            )
        for uid in set(lost):
            self.instances.lose_memory(uid)
            for coh in self._coherence.values():
                coh.invalidate(uid)
        t_before = self.issue_time
        self.issue_time = max(self.issue_time, confirmed_at)
        t_confirmed = self.issue_time
        self.issue_time += chaos.config.recovery_delay * len(losses)
        if self.timeline is not None:
            if t_confirmed > t_before:
                self.timeline.record(
                    "detection", "issue",
                    f"detect-stall:{len(losses)}-loss",
                    t_before, t_confirmed,
                )
            self.timeline.record(
                "recovery", "issue",
                f"recover:{len(losses)}-loss",
                t_confirmed, self.issue_time,
            )
        for puid in self._proc_busy:
            self._proc_busy[puid] = max(self._proc_busy[puid], self.issue_time)

    def _restore_replicas(self, rewritten, dead_nodes: set) -> None:
        """Re-plan the replica set; restore missing protected pieces.

        Surviving fault domains host the stores for the rest of this
        recovery (a dead node rejoins at the next checkpoint epoch);
        every manifest piece the replay will not re-write is copied
        into each store missing it from the cheapest surviving source,
        charged over the modeled channels.
        """
        chaos = self._chaos
        stores = _resilience.place_stores(
            self.machine, chaos.config.ckpt_replicas, exclude_nodes=dead_nodes
        )
        if not stores:
            raise FaultError(
                "every checkpoint-store fault domain was lost; "
                "recovery is impossible"
            )
        self._ckpt_stores = stores
        for uid in self._freed_uids:
            self._ckpt_manifest.drop(uid)
        steps = _resilience.plan_recovery(
            self._ckpt_manifest, self._coherence, rewritten,
            stores, self.machine, self._memory_by_uid, self._region_meta,
        )
        restored = 0
        for step in steps:
            coh = self._coherence[step.region_uid]
            finish = self._copy(
                self._memory_by_uid(step.src_uid),
                self._memory_by_uid(step.dst_uid),
                step.nbytes,
                max(self.issue_time, step.ready),
                label=f"restore:{step.region_name or step.region_uid}",
                category="checkpoint",
            )
            if self.event_log is not None:
                self.event_log.record_copy(
                    step.region_uid, step.region_name, step.rect,
                    step.src_uid, step.dst_uid, step.nbytes, why="restore",
                )
            coh.mark_valid(step.dst_uid, step.rect, finish)
            restored += int(step.nbytes * self.config.effective_comm_scale)
        if steps:
            self.profiler.record_restore(restored, len(steps))

    def _replay_journal(self, journal) -> List[LossSchedule]:
        """Replay the epoch's journal; return losses falling due mid-pass.

        A non-empty return means the pass aborted: the caller re-wipes,
        re-plans from surviving replicas and replays again from the
        epoch (replay never touches numerics, so restarting is safe).
        The in-progress journal is cleared first — replayed tasks
        re-append themselves, and a restarted pass must not duplicate
        the aborted pass's entries.
        """
        chaos = self._chaos
        self._journal = []
        for task in journal:
            due = chaos.take_losses(self.issue_time)
            if due:
                return due
            self.profiler.record_reexecution()
            self._execute(task, replay=True)
        return []

    def _fold_reduction(
        self,
        task: TaskLaunch,
        req: Requirement,
        writes: List[Tuple[Rect, Memory, float]],
        colors: int,
        launch_id: int = 0,
    ) -> None:
        """Fold per-shard REDUCE contributions onto owner tiles."""
        owner = task.fold_partition or Tiling.create(req.region, colors)
        coh = self.coherence(req.region)
        procs = self.scope.processors
        # Host fast path: the fold loop reads no coherence, and a Tiling
        # owner covers the region with disjoint tiles, so the per-color
        # mark_written calls can be batched into one write_complete.
        batch: Optional[List[Tuple[int, Rect, float]]] = None
        if (
            self.config.fastpath
            and type(owner) is Tiling
            and owner.region.uid == req.region.uid
        ):
            batch = []
        try:
            self._fold_loop(
                task, req, writes, owner, coh, procs, launch_id, batch
            )
        except BaseException:
            if batch:
                for mem_uid, tile, t in batch:
                    coh.mark_written(mem_uid, tile, t)
            raise
        if batch:
            coh.write_complete(batch)
            self.profiler.fastpath_counters["batched_writes"] += len(batch)

    def _fold_loop(
        self,
        task: TaskLaunch,
        req: Requirement,
        writes: List[Tuple[Rect, Memory, float]],
        owner: Partition,
        coh: RegionCoherence,
        procs,
        launch_id: int,
        batch: Optional[List[Tuple[int, Rect, float]]],
    ) -> None:
        for color in range(owner.color_count):
            proc = procs[color % len(procs)]
            memory = proc.memory
            tile = owner.rect(color)
            if tile.is_empty():
                continue
            t_done = self.issue_time
            for rect, src_mem, t_write in writes:
                overlap = tile.intersect(rect)
                if overlap.is_empty():
                    continue
                nbytes = overlap.volume() * req.region.itemsize
                if src_mem.uid != memory.uid:
                    t_arrive = self._copy(
                        src_mem, memory, nbytes, t_write,
                        label=f"fold:{req.region.name or req.name}",
                    )
                    if self.event_log is not None:
                        self.event_log.record_copy(
                            req.region.uid, req.region.name, overlap,
                            src_mem.uid, memory.uid, nbytes, why="fold",
                        )
                else:
                    t_arrive = t_write
                # Read-modify-write fold on the owner processor.
                fold_time = (
                    2.0 * nbytes * self.config.data_scale / proc.mem_bandwidth
                )
                t_start = max(t_arrive, self._proc_busy[proc.uid])
                t_done = max(t_done, t_start + fold_time)
                self._proc_busy[proc.uid] = t_start + fold_time
                if self.timeline is not None:
                    self.timeline.record(
                        "fold", self._proc_label[proc.uid],
                        f"fold:{req.region.name or req.name}",
                        t_start, t_start + fold_time,
                        nbytes=int(nbytes * self.config.data_scale),
                    )
            if batch is not None:
                batch.append((memory.uid, tile, t_done))
            else:
                coh.mark_written(memory.uid, tile, t_done)
            if self.event_log is not None:
                self.event_log.record_fold(
                    launch_id, task.name, req.region.uid, req.region.name,
                    tile, memory.uid,
                )

    def _mem_scale(self, region: Region):
        if region.mem_scale is not None:
            return region.mem_scale
        return self.mem_scale_by_extent.get(region.shape[0])

    def _memory_by_uid(self, uid: int) -> Memory:
        for mem in self.machine.memories:
            if mem.uid == uid:
                return mem
        raise KeyError(uid)

    # ------------------------------------------------------------------
    # Scalar allreduce
    # ------------------------------------------------------------------
    def allreduce(
        self,
        partials: List[Any],
        ready_times: List[float],
        op: str = "sum",
        nbytes: int = 8,
    ) -> Future:
        """Fold per-shard scalar partials with the tree + overhead model."""
        if op == "sum":
            value = _tree_sum(partials)
        elif op == "max":
            value = max(partials)
        elif op == "min":
            value = min(partials)
        elif op == "prod":
            value = partials[0]
            for part in partials[1:]:
                value = value * part
        else:
            raise ValueError(f"unknown reduction op {op!r}")
        t0 = max(ready_times) if ready_times else self.issue_time
        p = len(partials)
        self.profiler.record_allreduce()
        if self.event_log is not None:
            self.event_log.record_allreduce(op, p)
        if p <= 1:
            t = t0 + self.config.allreduce_base_overhead
        else:
            hops = math.ceil(math.log2(p))
            hop_latency = self.machine.interconnect_latency(self.scope.nodes)
            bandwidth = self.machine.config.nic_bandwidth
            per_hop = (
                hop_latency + nbytes / bandwidth + self.config.allreduce_hop_overhead
            )
            t = (
                t0
                + self.config.allreduce_base_overhead
                + hops * per_hop
                + p * self.config.allreduce_linear_overhead
            )
        if self.timeline is not None:
            # Abstract "network" resource: allreduces carry no channel
            # occupancy in the model and may overlap, so the category is
            # deliberately non-busy (excluded from span conservation).
            self.timeline.record(
                "allreduce", "network", f"allreduce:{op}", t0, t, nbytes=nbytes
            )
        return Future(value, t)

    # ------------------------------------------------------------------
    # Fill
    # ------------------------------------------------------------------
    def fill(self, region: Region, value: Any, partition: Optional[Partition] = None) -> None:
        """Distributed fill of a region with a constant."""
        part = partition or Tiling.create(region, self.num_procs)
        pointwise = Pointwise(("fill",), expr=(("scalar", "value"),), out="out")
        if self.plan_trace is not None:
            self.plan_trace.record_fill(
                region, part, Privilege.WRITE_DISCARD, value,
                pointwise=pointwise,
            )
            if self.plan_trace.deferred:
                return
        self.profiler.record_fill()

        def kernel(ctx: ShardContext) -> None:
            ctx.view("out")[...] = value

        def cost(ctx: ShardContext) -> tuple:
            vol = ctx.rect("out").volume()
            return (0.0, vol * region.itemsize)

        self.launch(
            TaskLaunch(
                name="fill",
                requirements=[
                    Requirement("out", region, part, Privilege.WRITE_DISCARD)
                ],
                kernel=kernel,
                cost_fn=cost,
                scalars={"value": value},
                pointwise=pointwise,
            )
        )


def _tree_sum(values: List[Any]):
    """Pairwise (tree) summation: deterministic and better-conditioned."""
    vals = list(values)
    if not vals:
        return 0.0
    while len(vals) > 1:
        nxt = []
        for i in range(0, len(vals) - 1, 2):
            nxt.append(vals[i] + vals[i + 1])
        if len(vals) % 2:
            nxt.append(vals[-1])
        vals = nxt
    return vals[0]


# ----------------------------------------------------------------------
# Current-runtime plumbing
# ----------------------------------------------------------------------
_current_runtime: Optional[Runtime] = None


def get_runtime() -> Runtime:
    """The runtime frontends (numeric/sparse) issue their tasks to."""
    global _current_runtime
    if _current_runtime is None:
        from repro.machine import ProcessorKind, laptop

        machine = laptop()
        _current_runtime = Runtime(
            machine.scope(ProcessorKind.CPU_SOCKET, 1), RuntimeConfig.legate()
        )
    return _current_runtime


def set_runtime(runtime: Optional[Runtime]) -> Optional[Runtime]:
    """Install the runtime frontends issue to; returns the previous one."""
    global _current_runtime
    previous = _current_runtime
    _current_runtime = runtime
    return previous


@contextlib.contextmanager
def runtime_scope(runtime: Runtime):
    """Temporarily install a runtime (restores the previous on exit)."""
    previous = set_runtime(runtime)
    try:
        yield runtime
    finally:
        # Scope exit is a synchronization point: pending deferred
        # launches execute before the runtime is uninstalled.
        try:
            runtime._sync("scope-exit")
        finally:
            set_runtime(previous)
