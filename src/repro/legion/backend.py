"""Pluggable execution backends: who owns the clocks, who drives programs.

Historically the :class:`~repro.legion.runtime.Runtime` *was* the
simulated clock — ``issue_time`` and the per-processor busy times were
plain attributes, and "run a program" meant "call it and let it issue
launches".  A long-lived multi-tenant service needs that contract split
in two:

* **clock ownership** — the issue clock, per-processor clocks and the
  horizon computation live on one object that can be swapped out or
  inspected without touching mapping/coherence code;
* **program driving** — how a *set* of client programs is executed
  against one runtime: strictly sequentially (the classic single-tenant
  batch shape), sequentially with host wall-clock accounting (profiling
  a serving host), or interleaved on an asyncio event loop (many
  concurrent clients submitting requests, the serving shape).

The three backends mirror the runtime-variants pattern of async/sync/
simulation runtimes behind one program API:

============================  =========================================
:class:`SimulatedClockBackend`  Virtual clocks only (the default; every
                                existing test runs on it unchanged).
:class:`SyncHostBackend`        Virtual clocks plus per-program host
                                wall-clock accounting — what a
                                synchronous serving host would measure.
:class:`AsyncioBackend`         Virtual clocks with programs driven as
                                coroutines on an asyncio event loop;
                                cooperative yields let many client
                                programs interleave at request
                                boundaries.
============================  =========================================

Numerics and *modeled* time are backend-independent by construction:
the backend only decides host-side interleaving, and every modeled
activity still charges the same virtual clocks.  The equivalence tests
in ``tests/serve/test_backends.py`` enforce bitwise-identical results
and identical modeled times across all three.
"""

from __future__ import annotations

import asyncio
from time import perf_counter as _perf
from typing import Any, Callable, Dict, List, Sequence


class ExecutionBackend:
    """Clock owner + program driver for one :class:`Runtime`.

    Subclasses override :meth:`run_programs`; the clock surface
    (``issue_time``, ``proc_busy``, :meth:`horizon`) is shared — all
    backends model time identically, they differ in how host execution
    is interleaved.
    """

    kind = "base"

    def __init__(self) -> None:
        self.issue_time: float = 0.0
        # Processor uid -> busy-until on the virtual clock.
        self.proc_busy: Dict[int, float] = {}

    # -- clock surface --------------------------------------------------
    def attach(self, processors) -> None:
        """Initialize per-processor clocks for a machine scope."""
        self.proc_busy = {p.uid: 0.0 for p in processors}

    def horizon(self, machine) -> float:
        """Latest virtual time across issue, processors and channels.

        Channel occupancy is part of "all outstanding work": a trailing
        asynchronous copy (checkpoint snapshot, spill) keeps the machine
        busy past every processor clock (the PR 5 sync-clock fix).
        """
        return max(
            self.issue_time,
            max(self.proc_busy.values(), default=0.0),
            machine.channel_horizon(),
        )

    # -- program driving ------------------------------------------------
    def run_programs(self, thunks: Sequence[Callable[[], Any]]) -> List[Any]:
        """Drive a set of client programs to completion; return results."""
        raise NotImplementedError


class SimulatedClockBackend(ExecutionBackend):
    """The classic shape: virtual clocks, programs run back-to-back."""

    kind = "simulated"

    def run_programs(self, thunks: Sequence[Callable[[], Any]]) -> List[Any]:
        return [thunk() for thunk in thunks]


class SyncHostBackend(ExecutionBackend):
    """Sequential driving with host wall-clock accounting per program.

    Modeled time is identical to the simulated backend; additionally
    ``host_seconds[i]`` records the real time the host spent driving
    program ``i`` — the number a synchronous serving host capacity-plans
    against.
    """

    kind = "sync"

    def __init__(self) -> None:
        super().__init__()
        self.host_seconds: List[float] = []

    def run_programs(self, thunks: Sequence[Callable[[], Any]]) -> List[Any]:
        results = []
        for thunk in thunks:
            t0 = _perf()
            try:
                results.append(thunk())
            finally:
                self.host_seconds.append(_perf() - t0)
        return results


class AsyncioBackend(ExecutionBackend):
    """Programs driven as coroutines on an asyncio event loop.

    Plain callables are wrapped in coroutines; coroutine functions are
    driven directly and may ``await`` — e.g. ``await
    backend.checkpoint_yield()`` between requests — so many client
    programs interleave cooperatively.  The event loop is private to
    one :meth:`run_programs` call (``asyncio.run``), so the backend can
    be used from synchronous tests and CLIs.

    Interleaving is deterministic: the loop round-robins ready
    coroutines in submission order, and no real I/O or wall-clock
    timers participate — which keeps served results reproducible and
    lets the serve bench compare asyncio-driven runs bitwise against
    sequential ones.
    """

    kind = "asyncio"

    async def checkpoint_yield(self) -> None:
        """Cooperatively yield to other client programs."""
        await asyncio.sleep(0)

    def run_programs(self, thunks: Sequence[Callable[[], Any]]) -> List[Any]:
        async def _drive():
            async def _as_coro(thunk):
                if asyncio.iscoroutinefunction(thunk):
                    return await thunk()
                result = thunk()
                if asyncio.iscoroutine(result):
                    return await result
                return result

            return await asyncio.gather(*[_as_coro(t) for t in thunks])

        return list(asyncio.run(_drive()))


_BACKENDS = {
    cls.kind: cls
    for cls in (SimulatedClockBackend, SyncHostBackend, AsyncioBackend)
}


def create_backend(kind: str) -> ExecutionBackend:
    """Instantiate a backend by ``RuntimeConfig.backend`` name."""
    try:
        return _BACKENDS[kind]()
    except KeyError:
        raise ValueError(
            f"unknown execution backend {kind!r} "
            f"(choose from {sorted(_BACKENDS)})"
        ) from None
