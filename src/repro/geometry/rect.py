"""N-dimensional (1-D/2-D) half-open rectangles and disjoint rect sets.

Rectangles are the unit of coherence tracking, instance allocation and
copy generation in the runtime.  ``RectSet`` implements exact union,
intersection and subtraction; subtraction of one rect from another yields
at most ``2 * ndim`` disjoint pieces (guillotine decomposition).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.geometry.interval import Interval


@dataclass(frozen=True)
class Rect:
    """Half-open axis-aligned box ``[lo[d], hi[d])`` per dimension."""

    lo: Tuple[int, ...]
    hi: Tuple[int, ...]

    def __post_init__(self) -> None:
        lo, hi = self.lo, self.hi
        if len(lo) != len(hi):
            raise ValueError("lo/hi dimensionality mismatch")
        # Emptiness is queried far more often than rects are built
        # (every coherence scan probes it); precompute once.  Not a
        # dataclass field, so eq/hash/repr still use lo/hi only.
        empty = False
        for l, h in zip(lo, hi):
            if h <= l:
                empty = True
                break
        object.__setattr__(self, "_empty", empty)

    @classmethod
    def from_shape(cls, shape: Tuple[int, ...]) -> "Rect":
        """The full rect of an array shape (origin-anchored)."""
        return cls(tuple(0 for _ in shape), tuple(int(s) for s in shape))

    @classmethod
    def from_interval(cls, ival: Interval) -> "Rect":
        """A 1-D rect from a half-open interval."""
        return cls((ival.lo,), (ival.hi,))

    @classmethod
    def interval1d(cls, lo: int, hi: int) -> "Rect":
        """A 1-D rect [lo, hi)."""
        return cls((lo,), (hi,))

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return len(self.lo)

    @property
    def shape(self) -> Tuple[int, ...]:
        """Per-dimension extents (clamped at zero)."""
        return tuple(max(0, h - l) for l, h in zip(self.lo, self.hi))

    def is_empty(self) -> bool:
        """True when any dimension has no extent."""
        return self._empty

    def volume(self) -> int:
        """Number of points covered."""
        vol = 1
        for l, h in zip(self.lo, self.hi):
            if h <= l:
                return 0
            vol *= h - l
        return vol

    def axis(self, dim: int) -> Interval:
        """One dimension as an Interval."""
        return Interval(self.lo[dim], self.hi[dim])

    def contains(self, other: "Rect") -> bool:
        """True when the other rect lies inside this one."""
        if other.is_empty():
            return True
        return all(
            sl <= ol and oh <= sh
            for sl, sh, ol, oh in zip(self.lo, self.hi, other.lo, other.hi)
        )

    def contains_point(self, point: Tuple[int, ...]) -> bool:
        """True when the point lies inside."""
        return all(l <= p < h for l, h, p in zip(self.lo, self.hi, point))

    def overlaps(self, other: "Rect") -> bool:
        """True when the intersection is non-empty."""
        return not self.intersect(other).is_empty()

    def intersect(self, other: "Rect") -> "Rect":
        """The (possibly empty) intersection rect."""
        lo = tuple(map(max, self.lo, other.lo))
        hi = tuple(map(min, self.hi, other.hi))
        return Rect(lo, tuple(map(max, lo, hi)))

    def union_hull(self, other: "Rect") -> "Rect":
        """Smallest rect containing both operands."""
        if self.is_empty():
            return other
        if other.is_empty():
            return self
        lo = tuple(min(a, b) for a, b in zip(self.lo, other.lo))
        hi = tuple(max(a, b) for a, b in zip(self.hi, other.hi))
        return Rect(lo, hi)

    def subtract(self, other: "Rect") -> List["Rect"]:
        """``self - other`` as disjoint rects (guillotine cuts per axis)."""
        if self.is_empty():
            return []
        clipped = other.intersect(self)
        if clipped.is_empty():
            return [self]
        pieces: List[Rect] = []
        lo = list(self.lo)
        hi = list(self.hi)
        for dim in range(self.ndim):
            if lo[dim] < clipped.lo[dim]:
                plo, phi = list(lo), list(hi)
                phi[dim] = clipped.lo[dim]
                pieces.append(Rect(tuple(plo), tuple(phi)))
                lo[dim] = clipped.lo[dim]
            if clipped.hi[dim] < hi[dim]:
                plo, phi = list(lo), list(hi)
                plo[dim] = clipped.hi[dim]
                pieces.append(Rect(tuple(plo), tuple(phi)))
                hi[dim] = clipped.hi[dim]
        return [p for p in pieces if not p.is_empty()]

    def slices(self) -> Tuple[slice, ...]:
        """NumPy basic-indexing view of this rect in the parent array."""
        return tuple(slice(l, h) for l, h in zip(self.lo, self.hi))

    def shift(self, offsets: Tuple[int, ...]) -> "Rect":
        """The rect translated by per-dimension offsets."""
        return Rect(
            tuple(l + o for l, o in zip(self.lo, offsets)),
            tuple(h + o for h, o in zip(self.hi, offsets)),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        dims = ",".join(f"[{l},{h})" for l, h in zip(self.lo, self.hi))
        return f"Rect({dims})"


class RectSet:
    """A set of pairwise-disjoint rects closed under set algebra.

    The representation is not canonical (the same point set may be split
    differently), so equality is defined extensionally via double
    containment rather than structurally.
    """

    __slots__ = ("_rects", "_members")

    def __init__(self, rects: Optional[Iterable[Rect]] = None):
        self._rects: List[Rect] = []
        # Lazy membership index over _rects (Rect is frozen/hashable).
        # Re-adding a rect that is literally a member is a no-op, and
        # runtimes re-mark the same written tiles every launch — the
        # O(1) hash probe replaces an O(n) subtract scan.  Built on
        # first use in add(); every other method builds fresh sets and
        # never mutates an existing _rects list, so no other
        # maintenance is needed.
        self._members: Optional[set] = None
        if rects:
            for rect in rects:
                self.add(rect)

    @classmethod
    def of(cls, rect: Rect) -> "RectSet":
        """A set holding a single rect."""
        return cls([rect])

    def rects(self) -> List[Rect]:
        """The member rects (pairwise disjoint)."""
        return list(self._rects)

    def is_empty(self) -> bool:
        """True when the set covers nothing."""
        return not self._rects

    def volume(self) -> int:
        """Total points covered."""
        return sum(r.volume() for r in self._rects)

    def hull(self) -> Rect:
        """Bounding rect of all members."""
        if not self._rects:
            return Rect((0,), (0,))
        hull = self._rects[0]
        for rect in self._rects[1:]:
            hull = hull.union_hull(rect)
        return hull

    def add(self, rect: Rect) -> None:
        """Union a rect in, keeping members disjoint."""
        if rect.is_empty():
            return
        members = self._members
        if members is None:
            members = self._members = set(self._rects)
        if rect in members:
            return
        new_pieces = [rect]
        for existing in self._rects:
            next_pieces: List[Rect] = []
            for piece in new_pieces:
                next_pieces.extend(piece.subtract(existing))
            new_pieces = next_pieces
            if not new_pieces:
                return
        self._rects.extend(new_pieces)
        members.update(new_pieces)

    def add_disjoint(self, rects: Iterable[Rect]) -> None:
        """Union in rects the caller guarantees are pairwise disjoint.

        Bitwise-identical to calling :meth:`add` on each rect in order,
        but each rect subtracts only against the rects present before
        the batch — mutually disjoint inputs cannot clip each other, so
        skipping those comparisons changes nothing.  Turns the
        first-write population of a region's written-set (n disjoint
        tiles) from O(n^2) subtract scans into O(n).
        """
        members = self._members
        if members is None:
            members = self._members = set(self._rects)
        prior = self._rects[:]
        for rect in rects:
            if rect.is_empty() or rect in members:
                continue
            new_pieces = [rect]
            for existing in prior:
                next_pieces: List[Rect] = []
                for piece in new_pieces:
                    next_pieces.extend(piece.subtract(existing))
                new_pieces = next_pieces
                if not new_pieces:
                    break
            if new_pieces:
                self._rects.extend(new_pieces)
                members.update(new_pieces)

    def union(self, other: "RectSet") -> "RectSet":
        """Set union (members stay disjoint)."""
        result = RectSet(self._rects)
        for rect in other._rects:
            result.add(rect)
        return result

    def intersect_rect(self, rect: Rect) -> "RectSet":
        """Intersection with a single rect."""
        out = RectSet()
        for cur in self._rects:
            piece = cur.intersect(rect)
            if not piece.is_empty():
                out._rects.append(piece)
        return out

    def intersect(self, other: "RectSet") -> "RectSet":
        """Set intersection."""
        out = RectSet()
        for rect in other._rects:
            out._rects.extend(self.intersect_rect(rect)._rects)
        return out

    def subtract_rect(self, rect: Rect) -> "RectSet":
        """Set difference with a single rect."""
        out = RectSet()
        for cur in self._rects:
            out._rects.extend(cur.subtract(rect))
        return out

    def subtract(self, other: "RectSet") -> "RectSet":
        """Set difference."""
        result = RectSet(self._rects)
        for rect in other._rects:
            result = result.subtract_rect(rect)
        return result

    def contains_rect(self, rect: Rect) -> bool:
        """True when the rect is fully covered."""
        return self.intersect_rect(rect).volume() == rect.volume()

    def covers(self, other: "RectSet") -> bool:
        """True when the other set is fully covered."""
        return other.subtract(self).volume() == 0

    def __iter__(self) -> Iterator[Rect]:
        return iter(self._rects)

    def __len__(self) -> int:
        return len(self._rects)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RectSet):
            return NotImplemented
        return self.covers(other) and other.covers(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "RectSet(" + ", ".join(map(repr, self._rects)) + ")"
