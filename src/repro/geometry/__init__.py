"""Geometric primitives used throughout the runtime.

The Legion-like runtime tracks data coherence, partitions and physical
instances in terms of half-open axis-aligned boxes.  This package provides
exact interval and rectangle arithmetic (union, intersection, subtraction)
for 1-D and 2-D index spaces, which is all the reproduction needs: sparse
matrix component arrays (``pos``/``crd``/``vals``) are 1-D and dense
operands are 1-D vectors or 2-D matrices.
"""

from repro.geometry.interval import Interval, IntervalSet
from repro.geometry.rect import Rect, RectSet

__all__ = ["Interval", "IntervalSet", "Rect", "RectSet"]
