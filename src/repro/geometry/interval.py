"""Half-open integer intervals and sorted disjoint interval sets."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional


@dataclass(frozen=True, order=True)
class Interval:
    """A half-open integer interval ``[lo, hi)``.

    Empty intervals (``hi <= lo``) are permitted and normalize to
    ``Interval(0, 0)`` semantics through :meth:`is_empty`.
    """

    lo: int
    hi: int

    def is_empty(self) -> bool:
        """True when hi <= lo."""
        return self.hi <= self.lo

    def __len__(self) -> int:
        return max(0, self.hi - self.lo)

    @property
    def extent(self) -> int:
        """Number of points covered."""
        return len(self)

    def contains(self, point: int) -> bool:
        """True when the point lies inside."""
        return self.lo <= point < self.hi

    def contains_interval(self, other: "Interval") -> bool:
        """True when the other interval lies inside."""
        if other.is_empty():
            return True
        return self.lo <= other.lo and other.hi <= self.hi

    def overlaps(self, other: "Interval") -> bool:
        """True when the intersection is non-empty."""
        return max(self.lo, other.lo) < min(self.hi, other.hi)

    def intersect(self, other: "Interval") -> "Interval":
        """The (possibly empty) intersection."""
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if hi < lo:
            hi = lo
        return Interval(lo, hi)

    def union_hull(self, other: "Interval") -> "Interval":
        """Smallest interval containing both operands."""
        if self.is_empty():
            return other
        if other.is_empty():
            return self
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def subtract(self, other: "Interval") -> List["Interval"]:
        """``self - other`` as a list of up to two disjoint intervals."""
        if self.is_empty():
            return []
        if not self.overlaps(other):
            return [self]
        pieces: List[Interval] = []
        if self.lo < other.lo:
            pieces.append(Interval(self.lo, other.lo))
        if other.hi < self.hi:
            pieces.append(Interval(other.hi, self.hi))
        return pieces

    def shift(self, offset: int) -> "Interval":
        """The interval translated by an offset."""
        return Interval(self.lo + offset, self.hi + offset)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"[{self.lo},{self.hi})"


class IntervalSet:
    """An ordered set of disjoint, non-adjacent half-open intervals.

    Canonical form: intervals sorted by ``lo``, pairwise disjoint, with no
    empty members and adjacent intervals merged.  All operations preserve
    the canonical form, so equality is structural.
    """

    __slots__ = ("_ivals",)

    def __init__(self, intervals: Optional[Iterable[Interval]] = None):
        self._ivals: List[Interval] = []
        if intervals:
            for ival in intervals:
                self.add(ival)

    @classmethod
    def empty(cls) -> "IntervalSet":
        """The empty set."""
        return cls()

    @classmethod
    def of(cls, lo: int, hi: int) -> "IntervalSet":
        """A set holding the single interval [lo, hi)."""
        return cls([Interval(lo, hi)])

    def intervals(self) -> List[Interval]:
        """The member intervals, sorted and disjoint."""
        return list(self._ivals)

    def is_empty(self) -> bool:
        """True when the set covers nothing."""
        return not self._ivals

    def total_extent(self) -> int:
        """Total points covered."""
        return sum(len(i) for i in self._ivals)

    def hull(self) -> Interval:
        """Bounding interval of all members."""
        if not self._ivals:
            return Interval(0, 0)
        return Interval(self._ivals[0].lo, self._ivals[-1].hi)

    def add(self, ival: Interval) -> None:
        """Union a single interval into the set, merging where adjacent."""
        if ival.is_empty():
            return
        out: List[Interval] = []
        lo, hi = ival.lo, ival.hi
        inserted = False
        for cur in self._ivals:
            if cur.hi < lo:
                out.append(cur)
            elif hi < cur.lo:
                if not inserted:
                    out.append(Interval(lo, hi))
                    inserted = True
                out.append(cur)
            else:
                lo = min(lo, cur.lo)
                hi = max(hi, cur.hi)
        if not inserted:
            out.append(Interval(lo, hi))
        self._ivals = out

    def union(self, other: "IntervalSet") -> "IntervalSet":
        """Set union."""
        result = IntervalSet(self._ivals)
        for ival in other._ivals:
            result.add(ival)
        return result

    def intersect_interval(self, ival: Interval) -> "IntervalSet":
        """Intersection with one interval."""
        out = IntervalSet()
        for cur in self._ivals:
            piece = cur.intersect(ival)
            if not piece.is_empty():
                out._ivals.append(piece)
        return out

    def intersect(self, other: "IntervalSet") -> "IntervalSet":
        """Set intersection."""
        out = IntervalSet()
        for ival in other._ivals:
            for piece in self.intersect_interval(ival)._ivals:
                out._ivals.append(piece)
        out._ivals.sort(key=lambda i: i.lo)
        return out

    def subtract_interval(self, ival: Interval) -> "IntervalSet":
        """Set difference with one interval."""
        out = IntervalSet()
        for cur in self._ivals:
            out._ivals.extend(cur.subtract(ival))
        return out

    def subtract(self, other: "IntervalSet") -> "IntervalSet":
        """Set difference."""
        result = IntervalSet(self._ivals)
        for ival in other._ivals:
            result = result.subtract_interval(ival)
        return result

    def contains_interval(self, ival: Interval) -> bool:
        """True when the interval is fully covered."""
        return self.intersect_interval(ival).total_extent() == len(ival)

    def __iter__(self) -> Iterator[Interval]:
        return iter(self._ivals)

    def __len__(self) -> int:
        return len(self._ivals)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._ivals == other._ivals

    def __hash__(self) -> int:
        return hash(tuple(self._ivals))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "IntervalSet(" + ", ".join(map(repr, self._ivals)) + ")"
