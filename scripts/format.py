#!/usr/bin/env python
"""Auto-format benchmark driver: writes ``BENCH_format.json``.

Runs the power-law-skew SpMV loop with plain CSR and with
``RuntimeConfig.autoformat`` enabled (``repro.harness.format_bench``),
prints a summary table, writes the full payload to ``BENCH_format.json``
(repo root, or ``--output``), and exits non-zero if any acceptance bar
fails:

* the static selector recommends a non-CSR format on the skew matrix;
* the runtime converts to exactly that format (advisor agreement);
* strictly lower summed modeled kernel seconds with autoformat on;
* a bitwise-identical result vector.

Usage::

    PYTHONPATH=src python scripts/format.py [--procs 2] [--output PATH]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.harness.format_bench import run_all


def format_payload(payload: dict) -> str:
    advice = payload["static_advice"]
    baseline, advised = payload["csr"], payload["advised"]
    conv = advised["conversions"][0] if advised["conversions"] else {}
    return "\n".join(
        [
            "skew_spmv:",
            f"  matrix:          {baseline['rows']}x{baseline['cols']}, "
            f"nnz {baseline['nnz']}, "
            f"row skew {advice['row_skew']:.1f}x",
            f"  static advice:   {advice['recommended_format']} "
            f"({advice['csr_op_seconds']:.3e}s -> "
            f"{advice['best_op_seconds']:.3e}s per op, "
            f"break-even {advice['break_even_ops']:g} ops)",
            f"  runtime convert: {payload['advised_format']} "
            f"(agrees: {payload['advisor_agrees']}, "
            f"{len(advised['conversions'])} conversion(s))"
            + (
                f", predicted {conv.get('csr_op_seconds', 0):.3e}s -> "
                f"{conv.get('predicted_op_seconds', 0):.3e}s"
                if conv
                else ""
            ),
            f"  kernel seconds:  {baseline['modeled_kernel_seconds']:.6e}s "
            f"-> {advised['modeled_kernel_seconds']:.6e}s "
            f"({payload['kernel_seconds_ratio']:.4f}x)",
            f"  bitwise match:   {payload['bitwise_identical']}",
        ]
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--procs", type=int, default=2)
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent
        / "BENCH_format.json",
    )
    args = parser.parse_args(argv)

    payload = run_all(procs=args.procs)
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(format_payload(payload))

    failures = []
    if payload["static_advice"]["recommended_format"] == "csr":
        failures.append("selector recommended CSR on the skew matrix")
    if not payload["advised"]["conversions"]:
        failures.append("autoformat runtime performed no conversion")
    if not payload["advisor_agrees"]:
        failures.append(
            f"runtime converted to {payload['advised_format']!r} but the "
            f"advisor recommended "
            f"{payload['static_advice']['recommended_format']!r}"
        )
    if payload["kernel_seconds_ratio"] >= 1.0:
        failures.append("modeled kernel seconds did not drop")
    if not payload["bitwise_identical"]:
        failures.append("advised result is not bitwise identical")
    print(f"wrote {args.output}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
