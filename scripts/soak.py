#!/usr/bin/env python
"""Chaos soak driver: writes ``BENCH_soak.json``.

Runs the Fig. 9 CG loop against a seeded stream of randomized
multi-fault schedules (``repro.harness.soak_bench``) — concurrent
node+GPU losses, losses during checkpoint drains and journal replays,
fault storms at varying replica counts — prints a per-scenario table,
writes the full payload to ``BENCH_soak.json`` (repo root, or
``--output``), and exits non-zero if any scenario breaks the soak
invariant:

* every run either completes bitwise-identical to the fault-free
  baseline with a checker-clean event log, or raises a clean
  ``FaultError`` naming what was exhausted — never a silent wrong
  answer (and never any other exception);
* the pinned ``replicas=2`` node-0-loss scenario *completes* — losing
  the primary checkpoint store is survivable once replicated.

Usage::

    PYTHONPATH=src python scripts/soak.py [--scenarios 22] [--seed 0]
                                          [--output PATH]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.harness.soak_bench import run_soak


def format_scenario(rec: dict) -> str:
    losses = ", ".join(
        f"{l['kind']}:{l['target']}@{l['at']:.4f}" for l in rec["losses"]
    )
    head = (
        f"{rec['name']:<24} replicas={rec['replicas']} "
        f"ckpt={rec['checkpoint_every']:<2} losses=[{losses}]"
    )
    if rec["outcome"] == "completed":
        tail = (
            f"completed bitwise={rec['bitwise_identical']} "
            f"clean={rec['checker_clean']} "
            f"recoveries={rec['recoveries']} "
            f"replayed={rec['tasks_reexecuted']} "
            f"det={rec['detection_seconds']:.2e}s "
            f"overhead={rec['overhead_ratio']:.2f}x"
        )
    else:
        tail = f"{rec['outcome']}: {rec['error']}"
    mark = "ok " if rec["invariant_ok"] else "BAD"
    return f"  {mark} {head}\n        -> {tail}"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scenarios", type=int, default=22)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent
        / "BENCH_soak.json",
    )
    args = parser.parse_args(argv)

    payload = run_soak(scenarios=args.scenarios, seed=args.seed)
    args.output.write_text(json.dumps(payload, indent=2) + "\n")

    baseline = payload["baseline"]
    print(
        f"baseline: {baseline['modeled_time_s']:.6f}s modeled, "
        f"sha256 {baseline['solution_sha256'][:16]}…, "
        f"{len(baseline['checker_violations'])} checker violations"
    )
    failures = []
    if baseline["checker_violations"]:
        failures.append("baseline: checker violations in a fault-free run")
    for rec in payload["scenarios"]:
        print(format_scenario(rec))
        if not rec["invariant_ok"]:
            kind = (
                "silent corruption"
                if rec.get("silent_corruption")
                else rec["outcome"]
            )
            failures.append(f"{rec['name']}: soak invariant broken ({kind})")
    pinned = payload["scenarios"][0]
    if pinned["outcome"] != "completed" or not pinned.get("bitwise_identical"):
        failures.append(
            "pinned node0-replicas2 scenario did not complete bitwise-"
            "identical: replicated stores must survive node-0 loss"
        )
    s = payload["summary"]
    print(
        f"summary: {s['scenarios']} scenarios, {s['completed']} completed "
        f"({s['survived_with_faults']} with faults injected), "
        f"{s['fault_errors']} clean fault-errors, "
        f"{s['silent_corruptions']} silent corruptions, "
        f"{s['crashes']} crashes"
    )
    print(f"wrote {args.output}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
