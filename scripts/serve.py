#!/usr/bin/env python
"""Serve bench driver: writes ``BENCH_serve.json``.

Runs the seeded load generator against the multi-tenant serving layer
(``repro.harness.serve_bench``): throughput and p50/p99 modeled latency
at several tenant counts, cross-request batching on vs off, result
caching, version churn, chaos isolation and execution-backend
equivalence.  Prints a summary table, writes the payload to
``BENCH_serve.json`` (repo root, or ``--output``), and exits non-zero
unless:

* batched results are bitwise-identical (sha256 per request) to
  per-request execution, and batching strictly reduced total modeled
  launch overhead;
* at least one scheduling window actually batched (>= 1 multi-RHS
  launch) and the duplicate-heavy scenario hit the result cache;
* cached and fault-injected runs stayed bitwise-identical for
  unaffected tenants;
* the simulated, sync and asyncio backends produced identical bits.

Usage::

    PYTHONPATH=src python scripts/serve.py [--tenants 2 4 8]
        [--requests 24] [--seed 0] [--smoke] [--output PATH]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.harness.serve_bench import run_all


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tenants", type=int, nargs="+", default=[2, 4, 8])
    parser.add_argument("--requests", type=int, default=24)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small fixed workload for CI (3 tenant counts, 12 requests)",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent
        / "BENCH_serve.json",
    )
    args = parser.parse_args(argv)
    tenants = [2, 3, 4] if args.smoke else args.tenants
    requests = 12 if args.smoke else args.requests

    payload = run_all(
        tenant_counts=tenants, requests_per_tenant=requests, seed=args.seed
    )
    args.output.write_text(json.dumps(payload, indent=2) + "\n")

    print(f"model: {payload['model']['dataset']} nnz={payload['model']['nnz']}")
    print("tenants  requests  throughput      p50          p99      batches  cache-hits")
    for rec in payload["scaling"]:
        print(
            f"{rec['tenants']:>7}  {rec['requests']:>8}  "
            f"{rec['throughput_rps']:>8.0f} r/s  "
            f"{rec['p50_latency_s']*1e3:>7.3f}ms  {rec['p99_latency_s']*1e3:>7.3f}ms  "
            f"{rec['batches']:>7}  {rec['cache_hits']:>10}"
        )
    bat = payload["batching"]
    print(
        f"batching: identical={bat['bitwise_identical']} "
        f"overhead {bat['unbatched']['launch_overhead_s']:.6f}s -> "
        f"{bat['batched']['launch_overhead_s']:.6f}s "
        f"({bat['batched']['launches']} vs {bat['unbatched']['launches']} launches)"
    )
    cac = payload["caching"]
    print(
        f"caching: identical={cac['bitwise_identical']} "
        f"hits={cac['cached']['cache_hits']}/{cac['cached']['requests']}"
    )
    iso = payload["isolation"]
    print(
        f"isolation: others_unperturbed={iso['others_unperturbed']} "
        f"chaotic_faults={iso['chaotic_faults']} "
        f"shared_faults={iso['shared_faults']}"
    )
    print(f"backends: identical={payload['backends']['identical']}")
    for lint in payload["churn"]["lints"]:
        print(f"lint: {lint}")
    print(f"wrote {args.output}")

    failures = []
    if len(payload["scaling"]) < 3:
        failures.append("scaling must cover >= 3 tenant counts")
    for rec in payload["scaling"]:
        if rec["throughput_rps"] <= 0 or rec["p99_latency_s"] <= 0:
            failures.append(
                f"degenerate scaling record at {rec['tenants']} tenants"
            )
    if not bat["bitwise_identical"]:
        failures.append("batched results differ from per-request execution")
    if bat["launch_overhead_reduction"] <= 0:
        failures.append("batching did not reduce modeled launch overhead")
    if bat["batched"]["batches"] < 1:
        failures.append("no multi-RHS launch was ever batched")
    if cac["cached"]["cache_hits"] < 1:
        failures.append("duplicate-heavy workload never hit the result cache")
    if not cac["bitwise_identical"]:
        failures.append("cached results differ from uncached execution")
    if not iso["others_unperturbed"]:
        failures.append("chaos tenant perturbed other tenants' results")
    if not payload["backends"]["identical"]:
        failures.append("execution backends disagree on served bits")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
