#!/usr/bin/env sh
# Repository gate: lint + tier-1 suite + validation smoke test.
#
#   make check          # or: sh scripts/check.sh
#
# The validation pass re-runs a smoke slice of the suite with
# REPRO_VALIDATE=1, which turns on event-log recording, privilege
# sanitizing and the offline Legion-Spy-style checker (repro.analysis).
set -eu

cd "$(dirname "$0")/.."
export PYTHONPATH="${PYTHONPATH:+$PYTHONPATH:}src"

echo "== ruff =="
if command -v ruff >/dev/null 2>&1; then
    ruff check src tests
else
    echo "ruff not installed; skipping lint (config lives in pyproject.toml)"
fi

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== validation smoke (REPRO_VALIDATE=1) =="
REPRO_VALIDATE=1 python -m pytest -x -q \
    tests/analysis \
    tests/legion/test_runtime.py \
    tests/legion/test_coherence.py \
    tests/legion/test_exact_images.py \
    tests/legion/test_fusion.py \
    tests/integration

echo "== fusion bench smoke (fused vs unfused, writes BENCH_fusion.json) =="
python scripts/bench.py --output BENCH_fusion.json > /dev/null

echo "== kernel fusion smoke (merge verdicts + BENCH_fusion.json payload) =="
# The demo proves at least one merge-safe group executes as one loop
# nest with bitwise-identical results (it exits non-zero otherwise).
python examples/kernel_fusion_demo.py --k 12 --maxiter 2 > /dev/null
# The static advisor must carry the same merge verdicts.  Capture the
# output first: POSIX sh has no pipefail, so `python ... | grep -q`
# would report grep's status and silently swallow a python failure.
advise_out=$(python -m repro.analysis advise examples/advisor_demo.py \
    -- --maxiter 2)
printf '%s\n' "$advise_out" | grep -q "kernel-merge-applied" || {
    echo "advisor produced no kernel-merge-applied verdict" >&2
    exit 1
}
# The bench payload must record merged nests beating issue-order replay
# on modeled compute, bitwise-identically, for both figures.
python - <<'PYEOF'
import json
with open("BENCH_fusion.json") as fh:
    payload = json.load(fh)
for key in ("fig9_cg", "fig10_gmg"):
    pair = payload[key]
    assert pair["fused"]["kernel_merges"] >= 1, f"{key}: no merged nests"
    assert pair["replay"]["kernel_merges"] == 0, f"{key}: replay run merged"
    assert pair["compute_ratio"] < 1.0, f"{key}: modeled compute did not drop"
    assert pair["bitwise_identical"], f"{key}: bitwise mismatch"
print("BENCH_fusion kernel-fusion payload OK")
PYEOF

echo "== host-overhead smoke (fast path on vs off at summit:64) =="
# --smoke runs the first scale point only (the summit:1024 slow-path
# run takes minutes) plus both validated identity workloads; the
# driver exits non-zero unless fastpath-on is strictly below
# fastpath-off in host seconds per 1k launches, bitwise-identically
# and checker-clean.
python scripts/overhead.py --smoke \
    --output BENCH_runtime_overhead.smoke.json > /dev/null

echo "== chaos bench smoke (fault schedules vs baseline, writes BENCH_chaos.json) =="
python scripts/chaos.py --output BENCH_chaos.json > /dev/null

echo "== chaos soak smoke (seeded multi-fault schedules, writes BENCH_soak.smoke.json) =="
# A small seeded soak: the driver exits non-zero if any scenario breaks
# the invariant (bitwise + checker-clean, or a clean FaultError), and
# the payload must show the pinned replicas=2 schedule surviving the
# loss of node 0 — the primary checkpoint store.  The full ≥20-scenario
# payload is BENCH_soak.json (make soak).
python scripts/soak.py --scenarios 6 --output BENCH_soak.smoke.json > /dev/null
python - <<'PYEOF'
import json
with open("BENCH_soak.smoke.json") as fh:
    payload = json.load(fh)
s = payload["summary"]
assert s["silent_corruptions"] == 0, "soak produced a silent wrong answer"
assert s["invariant_violations"] == 0, "soak invariant broken"
assert s["node0_loss_replicated_survivals"] >= 1, (
    "no replicated run survived a node-0 (primary store) loss"
)
print(
    f"BENCH_soak OK: {s['scenarios']} scenarios, "
    f"{s['survived_with_faults']} survived with faults, "
    f"{s['fault_errors']} clean fault-errors"
)
PYEOF

echo "== serve bench smoke (multi-tenant serving, writes BENCH_serve.json) =="
# Small tenant counts; the driver exits non-zero unless batched results
# are bitwise-identical to per-request execution, batching strictly
# reduces modeled launch overhead, and backends agree on served bits.
python scripts/serve.py --smoke --output BENCH_serve.json > /dev/null
python - <<'PYEOF'
import json
with open("BENCH_serve.json") as fh:
    payload = json.load(fh)
assert len(payload["scaling"]) >= 3, "serve: fewer than 3 tenant counts"
bat = payload["batching"]
assert bat["batched"]["batches"] >= 1, "serve: no batched launch"
assert bat["bitwise_identical"], "serve: batched bits differ"
assert bat["launch_overhead_reduction"] > 0, "serve: no overhead saving"
assert payload["caching"]["cached"]["cache_hits"] >= 1, "serve: no cache hit"
assert payload["backends"]["identical"], "serve: backends disagree"
print(
    f"BENCH_serve OK: {len(payload['scaling'])} tenant counts, "
    f"{bat['batched']['batches']} batched launches, "
    f"{payload['caching']['cached']['cache_hits']} cache hits"
)
PYEOF

echo "== format bench smoke (CSR vs advised format, writes BENCH_format.json) =="
python scripts/format.py --output BENCH_format.json > /dev/null

echo "== profile smoke (fig9 CG under REPRO_PROFILE=1, trace artifacts) =="
mkdir -p artifacts
REPRO_PROFILE=1 python -m repro.harness.experiments.fig9_cg \
    --columns 2 --profile artifacts/fig9_cg.trace.json > /dev/null
# The exported Chrome trace must be well-formed JSON in the trace-event
# format, and the span log must round-trip through the offline analyzer.
python - <<'PYEOF'
import json
with open("artifacts/fig9_cg.trace.json") as fh:
    trace = json.load(fh)
events = trace["traceEvents"]
assert events, "empty Chrome trace"
assert all(e["ph"] in ("X", "M") for e in events), "unexpected phase"
assert all(
    "ts" in e and "dur" in e and e["dur"] >= 0
    for e in events if e["ph"] == "X"
), "malformed duration event"
print(f"chrome trace OK: {len(events)} events")
PYEOF
python -m repro.analysis profile artifacts/fig9_cg.spans.json > /dev/null

echo "== advisor smoke (static trace, no kernels) =="
python -m repro.analysis advise examples/advisor_demo.py \
    --machine summit:4 -- --maxiter 2 > /dev/null
# The auto-format pass must recommend a non-CSR format for the skewed
# demo (and exit zero: its conversions amortize over the demo's loop).
# Captured, not piped — a python failure must fail the gate, not vanish
# behind grep's exit status.
format_out=$(python -m repro.analysis advise examples/format_advisor_demo.py \
    --autoformat)
printf '%s\n' "$format_out" | grep -q "recommended" || {
    echo "auto-format advisor produced no recommendation" >&2
    exit 1
}
# The seeded-violations program must make the advisor exit non-zero.
if python -m repro.analysis advise examples/advisor_violations.py \
    --data-scale 4e4 > /dev/null 2>&1; then
    echo "advisor failed to flag seeded violations" >&2
    exit 1
fi

echo "== all checks passed =="
