#!/usr/bin/env python
"""Chaos benchmark driver: writes ``BENCH_chaos.json``.

Runs the Fig. 9 CG loop fault-free and under three deterministic fault
schedules — transient copy faults, flaky allocations, and a whole-GPU
loss recovered by checkpoint/journal replay
(``repro.harness.chaos_bench``) — prints a summary table, writes the
full payload to ``BENCH_chaos.json`` (repo root, or ``--output``), and
exits non-zero if any acceptance bar fails:

* at least one fault injected per schedule (the schedule actually bit);
* bitwise-identical solution vector vs. the fault-free baseline;
* zero offline-checker violations in the recorded event log;
* modeled solve time within ``MAX_OVERHEAD_RATIO`` of the baseline.

Usage::

    PYTHONPATH=src python scripts/chaos.py [--procs 2] [--output PATH]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.harness.chaos_bench import MAX_OVERHEAD_RATIO, run_all


def format_run(name: str, run: dict) -> str:
    faults = ", ".join(f"{k}={v}" for k, v in run["faults_injected"].items()) or "none"
    return "\n".join(
        [
            f"{name}:",
            f"  faults injected: {faults}",
            f"  retries:         {run['retries']} "
            f"({run['backoff_seconds']:.6f}s modeled backoff)",
            f"  checkpoints:     {run['checkpoints']} "
            f"({run['checkpoint_bytes']:,}B), "
            f"{run['tasks_reexecuted']} tasks replayed",
            f"  modeled time:    {run['modeled_time_s']:.6f}s "
            f"({run['overhead_ratio']:.3f}x baseline)",
            f"  bitwise match:   {run['bitwise_identical']}",
            f"  checker clean:   {run['checker_clean']}",
        ]
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--procs", type=int, default=2)
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent
        / "BENCH_chaos.json",
    )
    args = parser.parse_args(argv)

    payload = run_all(procs=args.procs)
    args.output.write_text(json.dumps(payload, indent=2) + "\n")

    baseline = payload["baseline"]
    print(
        f"baseline: {baseline['modeled_time_s']:.6f}s modeled, "
        f"sha256 {baseline['solution_sha256'][:16]}…, "
        f"{len(baseline['checker_violations'])} checker violations"
    )
    failures = []
    if baseline["checker_violations"]:
        failures.append("baseline: checker violations in a fault-free run")
    for name, run in payload["scenarios"].items():
        print(format_run(name, run))
        if not run["faults_injected"]:
            failures.append(f"{name}: schedule injected no faults")
        if not run["bitwise_identical"]:
            failures.append(f"{name}: solution differs from fault-free baseline")
        if not run["checker_clean"]:
            failures.append(
                f"{name}: {len(run['checker_violations'])} checker violations"
            )
        if run["overhead_ratio"] > MAX_OVERHEAD_RATIO:
            failures.append(
                f"{name}: overhead {run['overhead_ratio']:.2f}x "
                f"(> {MAX_OVERHEAD_RATIO:.1f}x)"
            )
    print(f"wrote {args.output}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
