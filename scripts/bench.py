#!/usr/bin/env python
"""Fusion benchmark driver: writes ``BENCH_fusion.json``.

Runs the Fig. 9 CG and Fig. 10 GMG solver loops in three modes —
merged (window + kernel fusion), replay (window only) and unfused
(``repro.harness.fusion_bench``) — prints a summary table, writes the
full payload to ``BENCH_fusion.json`` (repo root, or ``--output``),
and exits non-zero if any acceptance bar fails:

* >= 30 % fewer launches with fusion on, per workload;
* strictly lower modeled issue-clock launch overhead;
* at least one merge-safe group executed as a single loop nest, with
  merged modeled compute strictly below issue-order replay;
* bitwise-identical solution vectors across all three modes.

Usage::

    PYTHONPATH=src python scripts/bench.py [--procs 2] [--output PATH]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.harness.fusion_bench import run_all

MIN_LAUNCHES_SAVED = 0.30


def format_pair(key: str, pair: dict) -> str:
    fused, replay, unfused = pair["fused"], pair["replay"], pair["unfused"]
    return "\n".join(
        [
            f"{key}:",
            f"  launches:        {unfused['tasks_launched']} -> "
            f"{fused['tasks_launched']} "
            f"({100 * pair['launches_saved_fraction']:.1f}% saved)",
            f"  launch overhead: {unfused['modeled_launch_overhead_s']:.6f}s -> "
            f"{fused['modeled_launch_overhead_s']:.6f}s (modeled)",
            f"  modeled time:    {unfused['modeled_time_s']:.6f}s -> "
            f"{fused['modeled_time_s']:.6f}s",
            f"  modeled compute: {replay['modeled_compute_s']:.6f}s (replay) "
            f"-> {fused['modeled_compute_s']:.6f}s (merged, "
            f"x{pair['compute_ratio']:.3f})",
            f"  fused groups:    {fused['fused_tasks']} "
            f"({fused['tasks_fused_away']} launches merged, "
            f"{fused['regions_elided']} temporaries elided)",
            f"  kernel fusion:   {fused['kernel_merges']} merged loop nests "
            f"({fused['nest_temps_eliminated']} temporaries never "
            f"materialized)",
            f"  host wall clock: unfused {unfused['host_wall_clock_s']:.3f}s, "
            f"replay {replay['host_wall_clock_s']:.3f}s, "
            f"merged {fused['host_wall_clock_s']:.3f}s",
            f"  bitwise match:   {pair['bitwise_identical']}",
        ]
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--procs", type=int, default=2)
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent
        / "BENCH_fusion.json",
    )
    args = parser.parse_args(argv)

    payload = run_all(procs=args.procs)
    args.output.write_text(json.dumps(payload, indent=2) + "\n")

    failures = []
    for key in ("fig9_cg", "fig10_gmg"):
        pair = payload[key]
        print(format_pair(key, pair))
        if pair["launches_saved_fraction"] < MIN_LAUNCHES_SAVED:
            failures.append(
                f"{key}: only {100 * pair['launches_saved_fraction']:.1f}% "
                f"launches saved (< {100 * MIN_LAUNCHES_SAVED:.0f}%)"
            )
        if pair["overhead_ratio"] >= 1.0:
            failures.append(f"{key}: launch overhead did not drop")
        if pair["fused"]["kernel_merges"] < 1:
            failures.append(f"{key}: no merge-safe group executed as a nest")
        if pair["compute_ratio"] >= 1.0:
            failures.append(
                f"{key}: merged modeled compute did not drop below replay"
            )
        if not pair["bitwise_identical"]:
            failures.append(f"{key}: fused result is not bitwise identical")
    print(f"wrote {args.output}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
