#!/usr/bin/env python
"""Host-overhead benchmark driver: writes ``BENCH_runtime_overhead.json``.

Measures the host-runtime fast path (``RuntimeConfig.fastpath`` —
batched dependence analysis, mapping/solve/image caches and the
vectorized event queue; see ``repro.legion.fastpath``) with
``repro.harness.overhead_bench``: the Fig. 9 CG inner loop at
summit:64 and summit:1024 simulated GPUs, fast path on vs off, in
host wall-clock seconds per 1 000 task launches, plus validated fig9
CG + fig10 GMG identity runs in both modes.

Prints a summary table, writes the full payload to
``BENCH_runtime_overhead.json`` (repo root, or ``--output``), and
exits non-zero if any acceptance bar fails:

* fast path strictly faster (host s / 1k launches) at every scale;
* bitwise-identical solutions and modeled times, fast path on vs off,
  at every scale and on both identity workloads;
* offline checker clean on every validated identity run.

Usage::

    PYTHONPATH=src python scripts/overhead.py [--output PATH]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.harness.overhead_bench import SCALES, run_all


def format_scale(key: str, pair: dict) -> str:
    on, off = pair["on"], pair["off"]
    phases = on["host_phases_s"]
    counters = on["fastpath_counters"]
    lines = [
        f"{key} ({on['tasks_launched']} launches, "
        f"{on['iters']} CG iterations):",
        f"  host s / 1k launches: off {off['host_s_per_1k_launches']:.4f}s"
        f" -> on {on['host_s_per_1k_launches']:.4f}s"
        f" (x{pair['speedup']:.2f})",
        f"  host wall clock:      off {off['host_wall_clock_s']:.3f}s"
        f" -> on {on['host_wall_clock_s']:.3f}s",
        f"  modeled time:         {on['modeled_time_s']:.6f}s (both modes)",
        f"  bitwise match:        {pair['bitwise_identical']}",
    ]
    if phases:
        top = max(phases.items(), key=lambda kv: kv[1])
        lines.append(
            f"  top host phase (on):  {top[0]} {top[1]:.4f}s"
        )
    if counters:
        lines.append(
            "  fast-path counters:   "
            + ", ".join(f"{k}={v}" for k, v in sorted(counters.items()))
        )
    return "\n".join(lines)


def format_identity(key: str, pair: dict) -> str:
    return (
        f"{key}: bitwise identical {pair['bitwise_identical']}, "
        f"checker clean {pair['checker_clean']} "
        f"(modeled {pair['on']['modeled_time_s']:.6f}s, "
        f"sha {pair['on']['solution_sha256'][:12]}...)"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent
        / "BENCH_runtime_overhead.json",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="first scale point only (the summit:1024 slow-path run "
        "takes minutes); still enforces every bar it measures",
    )
    args = parser.parse_args(argv)

    scales = SCALES[:1] if args.smoke else SCALES
    payload = run_all(scales=scales)
    args.output.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    failures = []
    for key, pair in payload["scales"].items():
        print(format_scale(key, pair))
        if pair["speedup"] <= 1.0:
            failures.append(
                f"{key}: fast path not strictly faster "
                f"(x{pair['speedup']:.3f})"
            )
        if not pair["bitwise_identical"]:
            failures.append(f"{key}: fast path changed the bits")
    for key, pair in payload["identity"].items():
        print(format_identity(key, pair))
        if not pair["bitwise_identical"]:
            failures.append(f"{key}: identity run not bitwise identical")
        if not pair["checker_clean"]:
            failures.append(f"{key}: event-log checker found violations")
    print(f"wrote {args.output}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
