PYTHONPATH := src
export PYTHONPATH

.PHONY: test validate check lint

test:
	python -m pytest -x -q

# Full suite under validation mode: every runtime records an event log,
# sanitizes privileges, and the conftest fixture replays each log
# through the offline checker after every test.
validate:
	REPRO_VALIDATE=1 python -m pytest -x -q

lint:
	ruff check src tests

check:
	sh scripts/check.sh
