PYTHONPATH := src
export PYTHONPATH

.PHONY: test validate check lint advise autoformat bench chaos soak \
	profile kernel-fusion overhead serve

test:
	python -m pytest -x -q

# Full suite under validation mode: every runtime records an event log,
# sanitizes privileges, and the conftest fixture replays each log
# through the offline checker after every test.
validate:
	REPRO_VALIDATE=1 python -m pytest -x -q

lint:
	ruff check src tests

check:
	sh scripts/check.sh

# Static advisor on the demo program: predicted partitions, traffic and
# footprint on a 4-node summit, no kernels executed.
advise:
	python -m repro.analysis advise examples/advisor_demo.py --machine summit:4

# Static auto-format pass on the skew-SpMV demo: ranked ELL / SELL-C-sigma
# / HYB recommendations per operand plus the format lint battery
# (unamortized conversions are errors under --autoformat).
autoformat:
	python -m repro.analysis advise examples/format_advisor_demo.py --autoformat

# Kernel-fusion demo: runs a CG solve with merged loop nests on and off
# (bitwise-identical by construction) and prints the per-group merge
# verdicts from the dependence analyzer, then the static advisor, whose
# window simulation carries the same verdicts as kernel-merge findings.
kernel-fusion:
	python examples/kernel_fusion_demo.py
	python -m repro.analysis advise examples/advisor_demo.py -- --maxiter 2

# Fusion benchmark: merged vs replay vs unfused CG + GMG, writes
# BENCH_fusion.json and fails if fusion saves < 30% of launches, if no
# merge-safe group runs as a single loop nest with strictly lower
# modeled compute than replay, or if any bit changes.
# Format benchmark: CSR vs the advised format on a power-law skew SpMV,
# writes BENCH_format.json and fails unless the advised run charges
# strictly less modeled compute with bitwise-identical results.
bench:
	python scripts/bench.py
	python scripts/format.py

# Host-overhead benchmark: CG at summit:64 and summit:1024 with the
# host fast path on vs off, writes BENCH_runtime_overhead.json and
# fails unless the fast path is strictly faster (host seconds per 1k
# launches) at both scales with bitwise-identical solutions, modeled
# times and checker-clean validated identity runs.
overhead:
	python scripts/overhead.py

# Chaos benchmark: CG under deterministic fault schedules (transient
# copy/alloc faults, GPU loss + checkpoint/replay recovery), writes
# BENCH_chaos.json and fails unless every run is bitwise-identical to
# the fault-free baseline, checker-clean and within bounded overhead.
chaos:
	python scripts/chaos.py

# Chaos soak fuzzer: seeded randomized multi-fault schedules (concurrent
# node+GPU losses, losses during checkpoint drains and journal replays,
# fault storms at varying replica counts) against the fig9 CG loop,
# writes BENCH_soak.json and fails if any scenario breaks the soak
# invariant: complete bitwise-identical with a checker-clean log, or
# raise a clean FaultError — never a silent wrong answer.
soak:
	python scripts/soak.py

# Serve benchmark: seeded load generator against the multi-tenant
# serving layer (admission control, fair-share windows, cross-request
# SpMV batching, result cache, chaos isolation), writes BENCH_serve.json
# and fails unless batched results are bitwise-identical to per-request
# execution, batching strictly reduces modeled launch overhead, and the
# simulated/sync/asyncio backends serve identical bits.
serve:
	python scripts/serve.py

# Timeline profiling: fig9 CG + fig10 GMG with span recording on.
# Writes Chrome traces (open in chrome://tracing or ui.perfetto.dev)
# and native span logs under artifacts/, then prints the offline
# utilization/critical-path analysis of the CG trace.
profile:
	mkdir -p artifacts
	python -m repro.harness.experiments.fig9_cg \
	    --profile artifacts/fig9_cg.trace.json
	python -m repro.harness.experiments.fig10_gmg \
	    --profile artifacts/fig10_gmg.trace.json
	python -m repro.analysis profile artifacts/fig9_cg.spans.json
