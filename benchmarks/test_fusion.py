"""Benchmark: task and kernel fusion remove launch and compute overhead.

The paper names task fusion (with tracing) as the fix for Legate's
launch-overhead-bound losses on small-task workloads (§6.1).  With the
deferred fusion window implemented, the overhead-bound CG and GMG
solver loops launch >= 30 % fewer tasks and charge strictly less
modeled issue-clock overhead.  On top of that, merge-safe fused groups
execute as ONE generated loop nest (kernel fusion): intermediates stay
in nest values, shared operands are read once, and merged modeled
compute lands strictly below issue-order replay of the same groups —
all with bitwise-identical numerics across the three modes.
"""

from repro.harness.fusion_bench import bench_cg, bench_gmg

MIN_LAUNCHES_SAVED = 0.30


def _assert_triple(fused: dict, replay: dict, unfused: dict) -> None:
    saved = 1.0 - fused["tasks_launched"] / unfused["tasks_launched"]
    assert saved >= MIN_LAUNCHES_SAVED, (
        f"only {100 * saved:.1f}% launches saved"
    )
    assert (
        fused["modeled_launch_overhead_s"]
        < unfused["modeled_launch_overhead_s"]
    )
    assert fused["modeled_time_s"] < unfused["modeled_time_s"]
    assert fused["fused_tasks"] > 0
    assert fused["regions_elided"] > 0
    # Kernel fusion: at least one group was proved merge-safe and ran
    # as a single nest, and merging strictly beat issue-order replay
    # on modeled compute (deduplicated reads, eliminated temporaries).
    assert fused["kernel_merges"] >= 1
    assert replay["kernel_merges"] == 0
    assert fused["modeled_compute_s"] < replay["modeled_compute_s"]
    # Bitwise identity across all three execution strategies.
    assert (
        fused["solution_sha256"]
        == replay["solution_sha256"]
        == unfused["solution_sha256"]
    )


def test_fig9_cg_fusion(benchmark):
    fused = benchmark.pedantic(
        lambda: bench_cg(fusion=True, kernel_fusion=True),
        rounds=1, iterations=1,
    )
    replay = bench_cg(fusion=True, kernel_fusion=False)
    unfused = bench_cg(fusion=False)
    saved = 1.0 - fused["tasks_launched"] / unfused["tasks_launched"]
    print(
        f"\nCG: {unfused['tasks_launched']} -> {fused['tasks_launched']} "
        f"launches ({100 * saved:.1f}% saved), overhead "
        f"{unfused['modeled_launch_overhead_s'] * 1e3:.2f} -> "
        f"{fused['modeled_launch_overhead_s'] * 1e3:.2f} ms, compute "
        f"{replay['modeled_compute_s'] * 1e3:.2f} -> "
        f"{fused['modeled_compute_s'] * 1e3:.2f} ms"
    )
    _assert_triple(fused, replay, unfused)


def test_fig10_gmg_fusion(benchmark):
    fused = benchmark.pedantic(
        lambda: bench_gmg(fusion=True, kernel_fusion=True),
        rounds=1, iterations=1,
    )
    replay = bench_gmg(fusion=True, kernel_fusion=False)
    unfused = bench_gmg(fusion=False)
    saved = 1.0 - fused["tasks_launched"] / unfused["tasks_launched"]
    print(
        f"\nGMG: {unfused['tasks_launched']} -> {fused['tasks_launched']} "
        f"launches ({100 * saved:.1f}% saved), overhead "
        f"{unfused['modeled_launch_overhead_s'] * 1e3:.2f} -> "
        f"{fused['modeled_launch_overhead_s'] * 1e3:.2f} ms, compute "
        f"{replay['modeled_compute_s'] * 1e3:.2f} -> "
        f"{fused['modeled_compute_s'] * 1e3:.2f} ms"
    )
    _assert_triple(fused, replay, unfused)
