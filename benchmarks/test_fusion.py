"""Benchmark: automatic task fusion removes launch overhead (paper §6.1).

The paper names task fusion (with tracing) as the fix for Legate's
launch-overhead-bound losses on small-task workloads.  With the
deferred fusion window implemented, the overhead-bound CG and GMG
solver loops launch >= 30 % fewer tasks and charge strictly less
modeled issue-clock overhead — with bitwise-identical numerics.
"""

from repro.harness.fusion_bench import bench_cg, bench_gmg

MIN_LAUNCHES_SAVED = 0.30


def _assert_pair(fused: dict, unfused: dict) -> None:
    saved = 1.0 - fused["tasks_launched"] / unfused["tasks_launched"]
    assert saved >= MIN_LAUNCHES_SAVED, (
        f"only {100 * saved:.1f}% launches saved"
    )
    assert (
        fused["modeled_launch_overhead_s"]
        < unfused["modeled_launch_overhead_s"]
    )
    assert fused["modeled_time_s"] < unfused["modeled_time_s"]
    assert fused["solution_sha256"] == unfused["solution_sha256"]
    assert fused["fused_tasks"] > 0
    assert fused["regions_elided"] > 0


def test_fig9_cg_fusion(benchmark):
    fused = benchmark.pedantic(
        lambda: bench_cg(fusion=True), rounds=1, iterations=1
    )
    unfused = bench_cg(fusion=False)
    saved = 1.0 - fused["tasks_launched"] / unfused["tasks_launched"]
    print(
        f"\nCG: {unfused['tasks_launched']} -> {fused['tasks_launched']} "
        f"launches ({100 * saved:.1f}% saved), overhead "
        f"{unfused['modeled_launch_overhead_s'] * 1e3:.2f} -> "
        f"{fused['modeled_launch_overhead_s'] * 1e3:.2f} ms"
    )
    _assert_pair(fused, unfused)


def test_fig10_gmg_fusion(benchmark):
    fused = benchmark.pedantic(
        lambda: bench_gmg(fusion=True), rounds=1, iterations=1
    )
    unfused = bench_gmg(fusion=False)
    saved = 1.0 - fused["tasks_launched"] / unfused["tasks_launched"]
    print(
        f"\nGMG: {unfused['tasks_launched']} -> {fused['tasks_launched']} "
        f"launches ({100 * saved:.1f}% saved), overhead "
        f"{unfused['modeled_launch_overhead_s'] * 1e3:.2f} -> "
        f"{fused['modeled_launch_overhead_s'] * 1e3:.2f} ms"
    )
    _assert_pair(fused, unfused)
