"""Wall-clock microbenchmarks of the generated (DISTAL) kernels.

Unlike the figure benchmarks (which measure *simulated* time on the
machine model), these measure the real execution speed of the
vectorized NumPy shard kernels — the pieces that must stay fast for the
reproduction itself to be usable.
"""

import numpy as np
import pytest
import scipy.sparse as sps

import repro.numeric as rnp
import repro.sparse as sp
from repro.legion import Runtime, RuntimeConfig
from repro.legion.runtime import runtime_scope
from repro.machine import ProcessorKind, summit

N = 200_000
DENSITY_NNZ_PER_ROW = 8


@pytest.fixture(scope="module")
def setup():
    machine = summit(nodes=1)
    rt = Runtime(machine.scope(ProcessorKind.GPU, 2), RuntimeConfig.legate())
    with runtime_scope(rt):
        rng = np.random.default_rng(0)
        mat = sps.random(
            N, N, density=DENSITY_NNZ_PER_ROW / N, random_state=rng, format="csr"
        )
        A = sp.csr_matrix(mat)
        x = rnp.array(rng.random(N))
        X = rnp.array(rng.random((N, 8)))
        yield rt, A, x, X, mat


def test_csr_spmv_kernel(benchmark, setup):
    rt, A, x, X, mat = setup
    with runtime_scope(rt):
        y = benchmark(lambda: A @ x)
        np.testing.assert_allclose(y.to_numpy(), mat @ x.to_numpy(), rtol=1e-6)


def test_csr_spmv_transpose_kernel(benchmark, setup):
    rt, A, x, X, mat = setup
    with runtime_scope(rt):
        y = benchmark(lambda: x @ A)
        np.testing.assert_allclose(y.to_numpy(), mat.T @ x.to_numpy(), rtol=1e-6)


def test_csr_spmm_kernel(benchmark, setup):
    rt, A, x, X, mat = setup
    with runtime_scope(rt):
        Y = benchmark(lambda: A @ X)
        np.testing.assert_allclose(Y.to_numpy(), mat @ X.to_numpy(), rtol=1e-6)


def test_csr_sddmm_kernel(benchmark, setup):
    rt, A, x, X, mat = setup
    with runtime_scope(rt):
        D = X * 0.5  # distinct operand: C aligns rows, D is gathered
        R = benchmark(lambda: A.sddmm(X, D))
        assert R.nnz == A.nnz


def test_elementwise_add_structural(benchmark, setup):
    rt, A, x, X, mat = setup
    with runtime_scope(rt):
        B = 2.0 * A
        C = benchmark(lambda: A + B)
        assert C.nnz == A.nnz


def test_spgemm(benchmark, setup):
    rt, A, x, X, mat = setup
    with runtime_scope(rt):
        C = benchmark.pedantic(lambda: A @ A, rounds=1, iterations=1)
        assert C.shape == (N, N)


def test_dense_axpy(benchmark, setup):
    rt, A, x, X, mat = setup
    with runtime_scope(rt):
        benchmark(lambda: x + x * 2.0)


def test_dense_dot(benchmark, setup):
    rt, A, x, X, mat = setup
    with runtime_scope(rt):
        val = benchmark(lambda: float(rnp.dot(x, x)))
        assert val > 0
