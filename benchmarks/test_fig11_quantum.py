"""Benchmark: regenerate Figure 11 (quantum simulation weak scaling)."""

from benchmarks.conftest import assert_shape_checks
from repro.harness.experiments import fig11_quantum

PROCS = [1, 4, 16, 64]


def test_fig11_quantum_weak_scaling(benchmark, print_result):
    result = benchmark.pedantic(
        lambda: fig11_quantum.run(proc_counts=PROCS), rounds=1, iterations=1
    )
    print_result(result)
    assert_shape_checks(result)

    gpu = result.series["Legate-GPU"]
    cpu = result.series["Legate-CPU"]
    # Both distributed series lose weak-scaling efficiency — the
    # near-all-to-all halo exchange of the wide-band Hamiltonian.
    assert gpu.at(16) < 0.5 * gpu.at(1)
    assert cpu.at(16) < 0.7 * cpu.at(1)
    # The CPU series survives the 64-processor point; the GPU one OOMs.
    assert cpu.at(64) is not None
    assert gpu.at(64) is None
