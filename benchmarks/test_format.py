"""Benchmark: static auto-format selection beats CSR on skewed SpMV.

On a seeded power-law matrix (row skew ~27x), the static selector
recommends a row-length-sensitive format (SELL-C-sigma), the runtime's
``RuntimeConfig.autoformat`` hook converts to exactly that format at
first launch, and the advised loop charges strictly less modeled
compute than plain CSR — with bitwise-identical numerics.
"""

from repro.harness.format_bench import SPMV_ITERS, bench_spmv, static_advice


def test_skew_spmv_autoformat(benchmark):
    advice = static_advice()
    assert advice["recommended_format"] != "csr"
    assert advice["best_op_seconds"] < advice["csr_op_seconds"]
    # The timed loop must amortize the one-time conversion.
    assert advice["break_even_ops"] <= SPMV_ITERS

    advised = benchmark.pedantic(
        lambda: bench_spmv(autoformat=True), rounds=1, iterations=1
    )
    baseline = bench_spmv(autoformat=False)
    print(
        f"\nskew SpMV: kernel "
        f"{baseline['modeled_kernel_seconds'] * 1e3:.3f} -> "
        f"{advised['modeled_kernel_seconds'] * 1e3:.3f} ms "
        f"({advice['recommended_format']}, "
        f"break-even {advice['break_even_ops']:g} ops)"
    )
    assert baseline["conversions"] == []
    assert len(advised["conversions"]) == 1
    conversion = advised["conversions"][0]
    assert conversion["dst_fmt"] == advice["recommended_format"]
    assert conversion["rows"] == advised["rows"]
    assert conversion["nnz"] == advised["nnz"]
    assert advised["iters"] >= conversion["break_even_ops"]
    assert (
        advised["modeled_kernel_seconds"]
        < baseline["modeled_kernel_seconds"]
    )
    assert advised["solution_sha256"] == baseline["solution_sha256"]
