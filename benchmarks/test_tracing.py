"""Benchmark: tracing closes the small-task overhead gap (paper §6.1).

The paper attributes Legate's single-GPU losses on GMG and the quantum
simulation to task-launching overheads and cites dynamic tracing as the
future fix.  With the tracing extension implemented, the gap to CuPy on
the overhead-bound quantum step narrows measurably.
"""

import numpy as np

import repro.numeric as rnp
import repro.sparse as sp
from repro.apps.rydberg import rydberg_hamiltonian_scipy
from repro.integrate import solve_ivp
from repro.legion import Runtime, RuntimeConfig, Trace
from repro.legion.runtime import runtime_scope
from repro.machine import ProcessorKind, summit

N_ATOMS = 18
DATA_SCALE = 20.0
STEPS = 3


def quantum_step_time(traced: bool) -> float:
    machine = summit(nodes=1)
    rt = Runtime(
        machine.scope(ProcessorKind.GPU, 1),
        RuntimeConfig.legate(data_scale=DATA_SCALE),
    )
    with runtime_scope(rt):
        H = sp.csr_matrix(rydberg_hamiltonian_scipy(N_ATOMS))
        psi = np.zeros(H.shape[0], dtype=np.complex128)
        psi[0] = 1.0
        y = rnp.array(psi)
        rhs = lambda t, v: (H @ v) * (-1j)  # noqa: E731

        def one_step(state):
            return solve_ivp(rhs, (0.0, 0.01), state, method="GBS8", step=0.01).y

        y = one_step(y)  # warm-up (also the capture iteration when traced)
        trace = Trace(rt, "gbs8-step")
        if traced:
            with trace:
                y = one_step(y)
        t0 = rt.barrier()
        for _ in range(STEPS):
            if traced:
                with trace:
                    y = one_step(y)
            else:
                y = one_step(y)
        t1 = rt.barrier()
    return (t1 - t0) / STEPS


def test_tracing_narrows_overhead_gap(benchmark):
    untraced = benchmark.pedantic(
        lambda: quantum_step_time(traced=False), rounds=1, iterations=1
    )
    traced = quantum_step_time(traced=True)
    print(f"\nGBS8 step: untraced {untraced*1e3:.2f} ms, "
          f"traced {traced*1e3:.2f} ms "
          f"({untraced/traced:.2f}x)")
    assert traced < untraced
