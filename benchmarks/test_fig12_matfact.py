"""Benchmark: regenerate the Figure 12 table (matrix factorization)."""

from benchmarks.conftest import assert_shape_checks
from repro.harness.experiments import fig12_matfact


def test_fig12_matfact_table(benchmark, print_result):
    result = benchmark.pedantic(
        lambda: fig12_matfact.run(), rounds=1, iterations=1
    )
    print_result(result)
    assert_shape_checks(result)

    cupy = result.series["CuPy (samples/s)"]
    legate = result.series["Legate Sparse (samples/s)"]
    resources = result.series["Legate min resources (GPUs)"]
    # Every dataset is trainable with Legate by adding GPUs; CuPy stops
    # at ML-25M (the paper's headline for this table).
    assert all(v is not None for _, v in legate.points)
    assert resources.at(0) == 1.0
    assert resources.at(1) >= 2.0
    # Note (recorded in EXPERIMENTS.md): our even row-wise partitioning
    # packs the 50M/100M datasets into fewer GPUs than the paper's 6/12.
    assert resources.at(3) >= 2 * resources.at(1)
