"""Benchmark: regenerate Figure 8 (SpMV microbenchmark weak scaling)."""

from benchmarks.conftest import assert_shape_checks
from repro.harness.experiments import fig8_spmv

COLUMNS = [(1, 1), (1, 3), (2, 6), (8, 24), (64, 192)]


def test_fig8_spmv_weak_scaling(benchmark, print_result):
    result = benchmark.pedantic(
        lambda: fig8_spmv.run(columns=COLUMNS), rounds=1, iterations=1
    )
    print_result(result)
    assert_shape_checks(result)

    # Quantitative spot checks beyond the generic shape list.
    legate = result.series["Legate-GPU"]
    petsc = result.series["PETSc-GPU"]
    scipy = result.series["SciPy"]
    # Trivially parallel: every distributed system stays within 10% of
    # its single-column throughput out to 192 GPUs.
    assert legate.last() >= 0.9 * legate.first()
    assert petsc.last() >= 0.9 * petsc.first()
    # The single-core SciPy baseline is orders of magnitude below GPUs.
    assert legate.first() > 50 * scipy.first()
