"""Benchmark: regenerate Figure 10 (geometric multigrid weak scaling)."""

from benchmarks.conftest import assert_shape_checks
from repro.harness.experiments import fig10_gmg

COLUMNS = [(1, 1), (1, 3), (2, 6), (64, 192)]


def test_fig10_gmg_weak_scaling(benchmark, print_result):
    result = benchmark.pedantic(
        lambda: fig10_gmg.run(columns=COLUMNS), rounds=1, iterations=1
    )
    print_result(result)
    assert_shape_checks(result)

    legate_gpu = result.series["Legate-GPU"]
    legate_cpu = result.series["Legate-CPU"]
    scipy = result.series["SciPy"]
    # GPU throughput dwarfs CPUs on this workload.
    assert legate_gpu.first() > 5 * legate_cpu.first()
    # SciPy cannot scale; Legate-CPU weak-scales to 64 sockets.
    assert legate_cpu.last() > 0.9 * legate_cpu.first()
    assert scipy.last() == scipy.first()
