"""Shared configuration for the figure-regeneration benchmarks.

Each ``test_fig*.py`` regenerates one paper artifact (reduced column
sets keep the suite's runtime reasonable), times the regeneration with
pytest-benchmark, prints the paper-style table, and asserts the paper's
shape claims via :func:`repro.harness.report.shape_checks`.
"""

import pytest


def assert_shape_checks(result, allow_miss=()):
    """Fail the test if any shape check (except allow-listed) missed."""
    from repro.harness.report import shape_checks

    failures = []
    for line in shape_checks(result):
        if line.startswith("MISS"):
            if any(tag in line for tag in allow_miss):
                continue
            failures.append(line)
    assert not failures, "shape expectations missed:\n" + "\n".join(failures)


@pytest.fixture(scope="session")
def print_result():
    def _print(result):
        print()
        print(result.format_table())
        from repro.harness.report import shape_checks

        for line in shape_checks(result):
            print("  " + line)

    return _print
