"""Benchmark: regenerate Figure 9 (Conjugate Gradient weak scaling)."""

from benchmarks.conftest import assert_shape_checks
from repro.harness.experiments import fig9_cg

COLUMNS = [(1, 1), (1, 3), (2, 6), (16, 48), (32, 96), (64, 192)]


def test_fig9_cg_weak_scaling(benchmark, print_result):
    result = benchmark.pedantic(
        lambda: fig9_cg.run(columns=COLUMNS), rounds=1, iterations=1
    )
    print_result(result)
    assert_shape_checks(result)

    legate = result.series["Legate-GPU"]
    petsc = result.series["PETSc-GPU"]
    # The falloff is at scale, not at the start: Legate holds >85%
    # efficiency through 6 GPUs, and loses more ground by 192.
    assert legate.at(6) >= 0.85 * legate.at(1)
    assert legate.at(192) < 0.8 * legate.at(1)
    # PETSc stays closer to flat than Legate (the paper's contrast).
    assert petsc.at(192) / petsc.at(1) > legate.at(192) / legate.at(1)
