"""Ablations of the design choices DESIGN.md calls out.

Each ablation switches off one mechanism from §4 of the paper and
measures the communication or time it was buying on the Fig. 1 loop.
"""

import numpy as np
import pytest
import scipy.sparse as sps

import repro.numeric as rnp
import repro.sparse as sp
from repro.legion import Runtime, RuntimeConfig
from repro.legion.runtime import runtime_scope
from repro.machine import ProcessorKind, summit

N = 60_000
ITERS = 6


def banded(n, band=1):
    diags = [np.full(n - abs(k), 1.0) for k in range(-band, band + 1)]
    return sps.diags(diags, list(range(-band, band + 1))).tocsr()


def run_power_iteration(config: RuntimeConfig, band=1, n=N, iters=ITERS):
    machine = summit(nodes=1)
    rt = Runtime(machine.scope(ProcessorKind.GPU, 3), config)
    with runtime_scope(rt):
        A = sp.csr_matrix(banded(n, band))
        rnp.random.seed(0)
        x = rnp.random.rand(n)
        for _ in range(2):  # warm-up
            x = A @ x
            x /= rnp.linalg.norm(x)
        rt.barrier()
        snap = rt.profiler.snapshot()
        t0 = rt.barrier()
        for _ in range(iters):
            x = A @ x
            x /= rnp.linalg.norm(x)
        t1 = rt.barrier()
        delta = rt.profiler.since(snap)
    return t1 - t0, delta


class TestMapperCoalescing:
    """§4.2/§4.3: without coalescing, steady-state copies recur."""

    def test_coalescing_saves_data_movement(self, benchmark):
        t_on, d_on = benchmark.pedantic(
            lambda: run_power_iteration(RuntimeConfig.legate()),
            rounds=1, iterations=1,
        )
        t_off, d_off = run_power_iteration(RuntimeConfig.legate(coalescing=False))
        moved_on = d_on.total_copy_bytes() + d_on.resize_bytes
        moved_off = d_off.total_copy_bytes() + d_off.resize_bytes
        print(f"\ncoalescing on:  {moved_on:,} bytes moved, {t_on*1e3:.2f} ms")
        print(f"coalescing off: {moved_off:,} bytes moved, {t_off*1e3:.2f} ms")
        assert moved_off > moved_on


class TestPartitionReuse:
    """§4.1: without key-partition reuse the solver re-tiles every op."""

    def test_reuse_changes_nothing_numerically(self, benchmark):
        t_on, _ = benchmark.pedantic(
            lambda: run_power_iteration(RuntimeConfig.legate()),
            rounds=1, iterations=1,
        )
        t_off, _ = run_power_iteration(
            RuntimeConfig.legate(reuse_partitions=False)
        )
        print(f"\nreuse on:  {t_on*1e3:.2f} ms   reuse off: {t_off*1e3:.2f} ms")
        # With even tilings the fallback re-tiles identically, so time
        # must not regress; the mechanism matters for *mixed* partition
        # programs, covered by the solver unit tests.
        assert t_off >= t_on * 0.99


class TestHaloWidth:
    """§3: bounding-rect images make halo volume track matrix bandwidth."""

    def test_halo_scales_with_band(self, benchmark):
        _, d1 = benchmark.pedantic(
            lambda: run_power_iteration(RuntimeConfig.legate(), band=1),
            rounds=1, iterations=1,
        )
        _, d4 = run_power_iteration(RuntimeConfig.legate(), band=4)
        halo1 = d1.copy_bytes.get("nvlink", 0)
        halo4 = d4.copy_bytes.get("nvlink", 0)
        print(f"\nband=1 halo: {halo1:,} B   band=4 halo: {halo4:,} B")
        assert halo4 == 4 * halo1


class TestTaskOverheadSweep:
    """Where small-task workloads diverge: overhead vs kernel size."""

    def test_throughput_vs_launch_overhead(self, benchmark):
        overheads = [2e-6, 2e-5, 1.3e-4, 1e-3]
        times = []
        for idx, overhead in enumerate(overheads):
            cfg = RuntimeConfig.legate(launch_overhead=overhead)
            if idx == 0:
                t, _ = benchmark.pedantic(
                    lambda: run_power_iteration(cfg, n=4000),
                    rounds=1, iterations=1,
                )
            else:
                t, _ = run_power_iteration(cfg, n=4000)
            times.append(t)
        print("\nlaunch overhead sweep (small problem):")
        for o, t in zip(overheads, times):
            print(f"  {o*1e6:7.1f} us/task -> {t*1e3:8.3f} ms")
        # Small kernels: throughput must degrade as overhead grows.
        assert times[-1] > times[0]


class TestImageExactness:
    """§3 / DESIGN.md: bounding-rect images vs exact-index images.

    On banded matrices the two coincide; on scattered access patterns
    (and the wide-band quantum Hamiltonian) exact images move less data.
    """

    def test_exact_images_on_scattered_pattern(self, benchmark):
        import scipy.sparse as sps
        from repro.machine import summit as summit_machine

        def copy_bytes(exact: bool) -> int:
            machine = summit_machine(nodes=1)
            rt = Runtime(
                machine.scope(ProcessorKind.GPU, 3),
                RuntimeConfig.legate(exact_images=exact),
            )
            with runtime_scope(rt):
                n = 30_000
                rng = np.random.default_rng(0)
                # Rows reference two distant column clusters.
                rows = np.repeat(np.arange(n), 4)
                cols = np.concatenate([
                    rng.integers(0, 64, size=2 * n),
                    rng.integers(n - 64, n, size=2 * n),
                ])
                rng.shuffle(cols)
                ref = sps.csr_matrix(
                    (np.ones(4 * n), (rows, cols[: 4 * n])), shape=(n, n)
                )
                A = sp.csr_matrix(ref)
                x = rnp.ones(n)
                for _ in range(2):
                    x = A @ x
                    x /= rnp.linalg.norm(x)
                rt.barrier()
                snap = rt.profiler.snapshot()
                x = A @ x
                rt.barrier()
                return rt.profiler.since(snap).total_copy_bytes("nvlink")

        bounding = benchmark.pedantic(
            lambda: copy_bytes(False), rounds=1, iterations=1
        )
        exact = copy_bytes(True)
        print(f"\nscattered pattern halo: bounding {bounding:,} B, "
              f"exact {exact:,} B ({bounding / max(exact,1):.0f}x less)")
        assert exact < bounding / 10

    def test_banded_pattern_unchanged(self, benchmark):
        def copy_bytes(exact: bool) -> int:
            _, delta = run_power_iteration(
                RuntimeConfig.legate(exact_images=exact)
            )
            return delta.copy_bytes.get("nvlink", 0)

        bounding = benchmark.pedantic(
            lambda: copy_bytes(False), rounds=1, iterations=1
        )
        exact = copy_bytes(True)
        print(f"\nbanded halo: bounding {bounding:,} B, exact {exact:,} B")
        assert exact == bounding  # contiguous halos: images already exact
