"""Cross-request batching: bitwise identity, legality, accounting."""

import numpy as np
import pytest
import scipy.sparse as sps

from repro.serve import (
    BatchKey,
    Request,
    ServiceConfig,
    SparseService,
    SpMVBatcher,
    TenantConfig,
)

N = 64


def _requests(specs):
    """Requests from (rid, dtype, n, version) specs with seeded values."""
    out = []
    for rid, dtype, n, version in specs:
        rng = np.random.default_rng(rid)
        out.append(
            Request(
                rid, "t", rng.standard_normal(n).astype(dtype), 0.0, version
            )
        )
    return out


def _matrix(seed=0, n=N):
    return sps.random(
        n, n, density=0.12, random_state=seed, format="csr", dtype=np.float64
    )


def _service(max_batch=8, **cfg):
    return SparseService(
        _matrix(),
        [TenantConfig("t")],
        ServiceConfig(procs=2, max_batch=max_batch, cache_capacity=0, **cfg),
    )


# ----------------------------------------------------------------------
# Property: batched == per-request, bitwise, over random mixes
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(5))
def test_batched_bitwise_identical_to_per_request_random_mixes(seed):
    """Random request mixes: stacked multi-RHS launches must produce
    exactly the bytes per-request launches produce, column for column."""
    rng = np.random.default_rng(seed)
    n_requests = int(rng.integers(2, 13))
    dtypes = rng.choice(["float64", "float32"], size=n_requests)
    xs = [rng.standard_normal(N).astype(d) for d in dtypes]

    svc_b = _service(max_batch=8)
    svc_u = _service(max_batch=1)
    for svc in (svc_b, svc_u):
        for x in xs:
            svc.submit("t", x, arrival=0.0)
        svc.run()
    counts = {d: int((dtypes == d).sum()) for d in set(dtypes)}
    if max(counts.values()) >= 2:  # some dtype group really did batch
        assert svc_b.stats().batches >= 1
    for rid in range(n_requests):
        yb, yu = svc_b.responses[rid].y, svc_u.responses[rid].y
        assert yb.dtype == yu.dtype
        assert yb.tobytes() == yu.tobytes()


def test_mixed_dtypes_refuse_to_stack():
    batcher = SpMVBatcher(max_batch=8)
    window = _requests(
        [(0, "float64", N, 0), (1, "float64", N, 0), (2, "float32", N, 0)]
    )
    batches = batcher.plan(window)
    widths = sorted(b.width for b in batches)
    assert widths == [1, 2]
    assert batcher.refusals.get("dtype-mix") == 1


def test_version_mismatch_splits_batches():
    batcher = SpMVBatcher(max_batch=8)
    window = _requests(
        [(0, "float64", N, 0), (1, "float64", N, 0), (2, "float64", N, 1)]
    )
    batches = batcher.plan(window)
    by_version = {b.key.matrix_version: b.width for b in batches}
    assert by_version == {0: 2, 1: 1}
    assert batcher.refusals.get("version-churn") == 1


def test_shape_mismatch_refuses():
    batcher = SpMVBatcher(max_batch=8)
    window = _requests(
        [(0, "float64", N, 0), (1, "float64", N, 0), (2, "float64", 2 * N, 0)]
    )
    batches = batcher.plan(window)
    assert sorted(b.width for b in batches) == [1, 2]
    assert batcher.refusals.get("shape-mismatch") == 1


def test_lone_request_is_a_benign_refusal():
    batcher = SpMVBatcher(max_batch=8)
    batches = batcher.plan(_requests([(0, "float64", N, 0)]))
    assert [b.width for b in batches] == [1]
    assert batcher.refusals == {"lone-request": 1}


def test_max_batch_chunks_wide_windows():
    batcher = SpMVBatcher(max_batch=3)
    window = _requests([(i, "float64", N, 0) for i in range(8)])
    batches = batcher.plan(window)
    assert [b.width for b in batches] == [3, 3, 2]
    assert all(b.key == BatchKey(0, N, "float64") for b in batches)


def test_service_version_churn_splits_but_stays_correct():
    """A model update mid-stream pins versions: the batcher splits
    across the update and every request computes against the matrix it
    was admitted under."""
    A0, A1 = _matrix(seed=0), _matrix(seed=9)
    svc = SparseService(
        A0,
        [TenantConfig("t")],
        ServiceConfig(procs=2, cache_capacity=0),
    )
    rng = np.random.default_rng(0)
    xs = [rng.standard_normal(N) for _ in range(6)]
    for x in xs[:3]:
        svc.submit("t", x, arrival=0.0)
    svc.update_model(A1)
    for x in xs[3:]:
        svc.submit("t", x, arrival=0.0)
    svc.run()
    for rid, x in enumerate(xs):
        expect = (A0 if rid < 3 else A1) @ x
        np.testing.assert_allclose(svc.responses[rid].y, expect, rtol=1e-9)
    refusals = svc.stats().refusals
    assert refusals.get("version-churn", 0) == 0  # both groups batched
    assert svc.stats().batches == 2


# ----------------------------------------------------------------------
# Latency accounting vs the timeline profiler
# ----------------------------------------------------------------------
def test_latency_accounting_conserves_against_timeline():
    """p50/p99 inputs are modeled times that reconcile with the
    profiler: responses are causally ordered (arrival <= start <=
    finish), the last finish IS the runtime horizon, and every
    recorded span fits inside it."""
    svc = _service(profile=True)
    rng = np.random.default_rng(1)
    for i in range(10):
        svc.submit("t", rng.standard_normal(N), arrival=2.5e-4 * (i // 4))
    responses = svc.run()
    ok = [r for r in responses.values() if r.ok]
    assert len(ok) == 10
    for r in ok:
        assert r.arrival <= r.start <= r.finish
        assert r.latency >= 0.0
    horizon = svc.runtime.elapsed()
    assert max(r.finish for r in ok) == horizon
    spans = svc.runtime.timeline.spans
    assert spans, "profiling run recorded no spans"
    assert max(s.finish for s in spans) <= horizon + 1e-12
    # Per-request latencies decompose into wait + service: each
    # response's start is at or after the window that launched it.
    p99 = float(np.percentile([r.latency for r in ok], 99))
    assert p99 <= horizon - min(r.arrival for r in ok)
