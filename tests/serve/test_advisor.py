"""Serving lints over aggregated traffic statistics."""

from repro.serve.advisor import lint_serve
from repro.serve.cache import CacheStats
from repro.serve.service import ServeStats


def _stats(**overrides):
    stats = ServeStats(cache_capacity=256)
    for key, value in overrides.items():
        setattr(stats, key, value)
    return stats


def _codes(stats):
    return [issue.code for issue in lint_serve(stats)]


def test_healthy_traffic_produces_no_lints():
    stats = _stats(
        launches=10,
        batches=8,
        refusals={"lone-request": 2},
        cache=CacheStats(hits=30, misses=10),
    )
    assert _codes(stats) == []


def test_unbatchable_mix_lint_names_dominant_reason():
    stats = _stats(
        launches=10,
        refusals={"dtype-mix": 4, "version-churn": 1},
    )
    issues = lint_serve(stats)
    assert [i.code for i in issues] == ["serve-unbatchable"]
    assert "dtype-mix x4" in issues[0].message


def test_lone_requests_never_count_as_unbatchable():
    stats = _stats(launches=10, refusals={"lone-request": 10})
    assert _codes(stats) == []


def test_cold_cache_lint_requires_warmup_lookups():
    cold = _stats(cache=CacheStats(hits=1, misses=99))
    assert _codes(cold) == ["serve-cache-churn"]
    # Too few lookups to judge: stay quiet.
    young = _stats(cache=CacheStats(hits=0, misses=5))
    assert _codes(young) == []


def test_queue_pressure_lint_on_rejections():
    stats = _stats(requests_rejected=3)
    assert _codes(stats) == ["serve-queue-pressure"]
