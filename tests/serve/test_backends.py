"""Execution backends: clock ownership, program driving, equivalence."""

import numpy as np
import pytest
import scipy.sparse as sps

import repro.numeric as rnp
import repro.sparse as sp
from repro.legion.backend import (
    AsyncioBackend,
    ExecutionBackend,
    SimulatedClockBackend,
    SyncHostBackend,
    create_backend,
)
from repro.legion.runtime import Runtime, RuntimeConfig, runtime_scope
from repro.machine import ProcessorKind, laptop


def _runtime(backend="simulated", **overrides):
    machine = laptop()
    return Runtime(
        machine.scope(ProcessorKind.GPU, 2),
        RuntimeConfig.legate(backend=backend, **overrides),
    )


def _spmv_program(rt, seed=0):
    rng = np.random.default_rng(seed)
    A_host = sps.random(48, 48, density=0.15, random_state=3, format="csr")
    x_host = rng.standard_normal(48)
    with runtime_scope(rt):
        A = sp.csr_matrix(A_host)
        y = (A @ rnp.asarray(x_host)).to_numpy().copy()
        elapsed = rt.elapsed()
    return y, elapsed


def test_create_backend_by_kind():
    assert isinstance(create_backend("simulated"), SimulatedClockBackend)
    assert isinstance(create_backend("sync"), SyncHostBackend)
    assert isinstance(create_backend("asyncio"), AsyncioBackend)
    with pytest.raises(ValueError, match="unknown execution backend"):
        create_backend("threads")


def test_runtime_clocks_live_on_the_backend():
    rt = _runtime()
    assert rt.backend.kind == "simulated"
    assert rt.issue_time == rt.backend.issue_time == 0.0
    rt.issue_time = 0.25
    assert rt.backend.issue_time == 0.25
    # The per-processor clock dict is the backend's.
    assert rt._proc_busy is rt.backend.proc_busy
    assert set(rt._proc_busy) == {p.uid for p in rt.scope.processors}


def test_horizon_covers_issue_procs_and_channels():
    rt = _runtime()
    rt.issue_time = 1.0
    assert rt.backend.horizon(rt.machine) == 1.0
    uid = next(iter(rt._proc_busy))
    rt._proc_busy[uid] = 2.5
    assert rt.backend.horizon(rt.machine) == 2.5
    assert rt.elapsed() >= 2.5


def test_modeled_time_and_bits_are_backend_independent():
    results = {}
    for kind in ("simulated", "sync", "asyncio"):
        rt = _runtime(backend=kind)
        out = rt.backend.run_programs([lambda: _spmv_program(rt)])
        results[kind] = out[0]
    y0, t0 = results["simulated"]
    for kind in ("sync", "asyncio"):
        y, t = results[kind]
        assert y.tobytes() == y0.tobytes()
        assert t == t0


def test_sync_backend_accounts_host_seconds_per_program():
    rt = _runtime(backend="sync")
    rt.backend.run_programs([lambda: _spmv_program(rt), lambda: None])
    assert len(rt.backend.host_seconds) == 2
    assert all(s >= 0.0 for s in rt.backend.host_seconds)


def test_asyncio_backend_interleaves_at_yield_points():
    backend = AsyncioBackend()
    order = []

    def make(tag):
        async def prog():
            for step in range(3):
                order.append((tag, step))
                await backend.checkpoint_yield()

        return prog

    backend.run_programs([make("a"), make("b")])
    # Cooperative yields interleave the two programs step by step.
    assert order[:4] == [("a", 0), ("b", 0), ("a", 1), ("b", 1)]


def test_asyncio_backend_drives_plain_callables_too():
    backend = AsyncioBackend()
    assert backend.run_programs([lambda: 7, lambda: "x"]) == [7, "x"]


def test_existing_runtime_defaults_to_simulated_backend():
    rt = _runtime()
    assert isinstance(rt.backend, ExecutionBackend)
    assert isinstance(rt.backend, SimulatedClockBackend)
