"""The multi-tenant service: admission, fairness, caching, isolation."""

import numpy as np
import pytest
import scipy.sparse as sps

from repro.legion.chaos import ChaosConfig
from repro.serve import (
    FairShareScheduler,
    ServiceConfig,
    SparseService,
    TenantConfig,
)

N = 48


def _matrix(seed=0):
    return sps.random(
        N, N, density=0.15, random_state=seed, format="csr", dtype=np.float64
    )


def _service(tenants, **cfg):
    cfg.setdefault("procs", 2)
    return SparseService(_matrix(), tenants, ServiceConfig(**cfg))


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
def test_bounded_queues_reject_overflow():
    svc = _service([TenantConfig("t", max_queue=3)])
    rng = np.random.default_rng(0)
    rids = [svc.submit("t", rng.standard_normal(N), 0.0) for _ in range(5)]
    assert [r is None for r in rids] == [False, False, False, True, True]
    stats = svc.stats()
    assert stats.requests_admitted == 3
    assert stats.requests_rejected == 2
    assert svc.runtime.profiler.serve_rejections == 2
    # Rejections surface as a lint.
    svc.run()
    assert any(i.code == "serve-queue-pressure" for i in svc.advise())


def test_duplicate_tenant_registration_rejected():
    scheduler = FairShareScheduler()
    scheduler.register(TenantConfig("t"))
    with pytest.raises(ValueError, match="already registered"):
        scheduler.register(TenantConfig("t"))


# ----------------------------------------------------------------------
# Fair-share scheduling
# ----------------------------------------------------------------------
def test_stride_scheduling_is_weight_proportional():
    scheduler = FairShareScheduler()
    scheduler.register(TenantConfig("heavy", weight=3.0))
    scheduler.register(TenantConfig("light", weight=1.0))
    for i in range(40):
        scheduler.admit("heavy", np.zeros(2), 0.0, 0)
        scheduler.admit("light", np.zeros(2), 0.0, 0)
    window = scheduler.take_window(now=0.0, limit=40)
    served = [r.tenant for r in window]
    # Backlogged throughput is proportional to weight: 3:1.
    assert served.count("heavy") == 30
    assert served.count("light") == 10
    # And the light tenant is not starved even early on.
    assert "light" in served[:4]


def test_window_only_takes_arrived_requests():
    scheduler = FairShareScheduler()
    scheduler.register(TenantConfig("t"))
    scheduler.admit("t", np.zeros(2), 0.0, 0)
    scheduler.admit("t", np.zeros(2), 5.0, 0)
    assert len(scheduler.take_window(now=0.0, limit=8)) == 1
    assert scheduler.earliest_arrival() == 5.0
    assert len(scheduler.take_window(now=5.0, limit=8)) == 1


def test_idle_service_advances_clock_to_next_arrival():
    svc = _service([TenantConfig("t")])
    x = np.random.default_rng(0).standard_normal(N)
    svc.submit("t", x, arrival=0.5)
    responses = svc.run()
    resp = responses[0]
    assert resp.start >= 0.5
    assert resp.latency >= 0.0


# ----------------------------------------------------------------------
# Result cache
# ----------------------------------------------------------------------
def test_identical_requests_hit_the_cache_bitwise():
    svc = _service([TenantConfig("a"), TenantConfig("b")])
    x = np.random.default_rng(0).standard_normal(N)
    svc.submit("a", x, 0.0)
    svc.run()
    first = svc.responses[0]
    # Same bytes, other tenant: served from cache, no new launch.
    launches_before = svc.stats().launches
    svc.submit("b", x.copy(), svc.runtime.issue_time)
    svc.run()
    second = svc.responses[1]
    assert second.cache_hit and not first.cache_hit
    assert second.y.tobytes() == first.y.tobytes()
    assert svc.stats().cache.hits == 1
    assert svc.runtime.profiler.serve_cache_hits == 1


def test_model_update_invalidates_cached_results():
    A0, A1 = _matrix(0), _matrix(7)
    svc = SparseService(
        A0, [TenantConfig("t")], ServiceConfig(procs=2)
    )
    x = np.random.default_rng(1).standard_normal(N)
    svc.submit("t", x, 0.0)
    svc.run()
    assert len(svc.cache) == 1
    svc.update_model(A1)
    assert len(svc.cache) == 0  # eager invalidation
    svc.submit("t", x, svc.runtime.issue_time)
    svc.run()
    fresh = svc.responses[1]
    assert not fresh.cache_hit
    np.testing.assert_allclose(fresh.y, A1 @ x, rtol=1e-9)


def test_single_bit_difference_misses_the_cache():
    svc = _service([TenantConfig("t")])
    x = np.random.default_rng(2).standard_normal(N)
    x2 = x.copy()
    x2[0] = np.nextafter(x2[0], np.inf)
    svc.submit("t", x, 0.0)
    svc.run()
    svc.submit("t", x2, svc.runtime.issue_time)
    svc.run()
    assert not svc.responses[1].cache_hit
    assert svc.stats().cache.hits == 0


# ----------------------------------------------------------------------
# Chaos / checkpoint isolation
# ----------------------------------------------------------------------
def test_chaos_tenant_runs_in_a_dedicated_runtime():
    chaos = ChaosConfig(seed=3, copy_fault_rate=0.3)
    svc = _service([TenantConfig("plain"), TenantConfig("iso", chaos=chaos)])
    assert "iso" in svc._domains and "plain" not in svc._domains
    iso_rt = svc._domains["iso"].runtime
    assert iso_rt is not svc.runtime
    rng = np.random.default_rng(4)
    xs = [rng.standard_normal(N) for _ in range(6)]
    for x in xs:
        svc.submit("plain", x, 0.0)
        svc.submit("iso", x.copy(), 0.0)
    svc.run()
    # Faults landed only in the isolated domain; the shared runtime
    # never saw an injection or a retry.
    assert sum(iso_rt.profiler.faults_injected.values()) >= 1
    assert sum(svc.runtime.profiler.faults_injected.values()) == 0
    assert svc.runtime.profiler.retries == 0
    # And the isolated tenant's recovered answers are still exact.
    A = _matrix()
    for rid, resp in svc.responses.items():
        assert resp.ok
        np.testing.assert_allclose(resp.y, A @ xs_for(rid, xs), rtol=1e-9)


def xs_for(rid, xs):
    # Requests alternate plain/iso over the same vectors.
    return xs[rid // 2]


def test_isolated_domain_resets_between_request_programs():
    chaos = ChaosConfig(seed=5, copy_fault_rate=0.0, checkpoint_every=1)
    svc = _service([TenantConfig("iso", chaos=chaos)])
    rng = np.random.default_rng(6)
    svc.submit("iso", rng.standard_normal(N), 0.0)
    svc.run()
    drt = svc._domains["iso"].runtime
    # reset_for_program ran at the program boundary: no stale
    # per-program accounting leaks into the next request.
    assert drt._launches_since_ckpt == 0
    assert not drt.fusion_log
    assert not drt.autoformat_log


# ----------------------------------------------------------------------
# Streams and backends
# ----------------------------------------------------------------------
def test_serve_streams_asyncio_matches_sequential_bitwise():
    rng = np.random.default_rng(7)
    streams = {
        "a": [(2.5e-4 * (i // 2), rng.standard_normal(N)) for i in range(6)],
        "b": [(2.5e-4 * (i // 2), rng.standard_normal(N)) for i in range(6)],
    }
    digests = {}
    for backend in ("simulated", "asyncio"):
        svc = _service(
            [TenantConfig("a"), TenantConfig("b")], backend=backend
        )
        responses = svc.serve_streams(
            {t: list(items) for t, items in streams.items()}
        )
        by_tenant = {}
        for r in sorted(responses.values(), key=lambda r: r.rid):
            by_tenant.setdefault(r.tenant, []).append(r.y.tobytes())
        digests[backend] = by_tenant
    assert digests["simulated"] == digests["asyncio"]
