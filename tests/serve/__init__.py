"""Serving-layer tests."""
