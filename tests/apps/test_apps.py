"""Application-level tests: the paper's workloads run and are correct."""

import numpy as np
import pytest
import scipy.sparse as sps
import scipy.sparse.linalg as spla

import repro.numeric as rnp
import repro.sparse as sp
from repro.apps import (
    MatrixFactorizationModel,
    TwoLevelGMG,
    blockade_state_count,
    blockade_states,
    fractal_expand,
    gmg_preconditioned_cg,
    poisson2d,
    poisson2d_scipy,
    rydberg_hamiltonian,
    rydberg_hamiltonian_scipy,
    sgd_epoch,
    simulate,
    synthetic_movielens,
)
from repro.apps.movielens import load_dataset
from repro.legion import Runtime, RuntimeConfig
from repro.legion.runtime import runtime_scope
from repro.machine import ProcessorKind, laptop


@pytest.fixture(params=[1, 2], ids=["p1", "p2"])
def rt(request):
    machine = laptop()
    runtime = Runtime(
        machine.scope(ProcessorKind.GPU, request.param), RuntimeConfig.legate()
    )
    with runtime_scope(runtime):
        yield runtime


class TestPoisson:
    def test_matches_scipy(self, rt):
        ours = poisson2d(7)
        ref = poisson2d_scipy(7)
        np.testing.assert_allclose(ours.toarray(), ref.toarray())

    def test_spd(self, rt):
        ref = poisson2d_scipy(6)
        evals = np.linalg.eigvalsh(ref.toarray())
        assert evals.min() > 0

    def test_cg_solves_poisson(self, rt):
        k = 9
        A = poisson2d(k)
        b = rnp.ones(k * k)
        x, info = sp.linalg.cg(A, b, rtol=1e-9, maxiter=500)
        assert info == 0
        ref = spla.spsolve(poisson2d_scipy(k).tocsc(), np.ones(k * k))
        np.testing.assert_allclose(x.to_numpy(), ref, rtol=1e-5, atol=1e-7)


class TestMultigrid:
    def test_vcycle_reduces_error(self, rt):
        k = 15
        A = poisson2d(k)
        gmg = TwoLevelGMG(A, k)
        rng = np.random.default_rng(0)
        b = rnp.array(rng.random(k * k))
        e = gmg.vcycle(b)
        # One V-cycle applied as preconditioner: residual shrinks.
        r0 = float(rnp.linalg.norm(b))
        r1 = float(rnp.linalg.norm(b - A @ e))
        assert r1 < r0

    def test_galerkin_coarse_operator_shape(self, rt):
        k = 9
        gmg = TwoLevelGMG(poisson2d(k), k)
        kc = (k - 1) // 2
        assert gmg.Ac.shape == (kc * kc, kc * kc)

    def test_pcg_converges_faster_than_cg(self, rt):
        k = 15
        A = poisson2d(k)
        b = rnp.ones(k * k)
        plain = [0]
        sp.linalg.cg(A, b, rtol=1e-8, maxiter=400, callback=lambda _: plain.__setitem__(0, plain[0] + 1))
        x, info, pcg_iters = gmg_preconditioned_cg(A, b, k, rtol=1e-8)
        assert info == 0
        assert pcg_iters < plain[0]

    def test_pcg_solution_correct(self, rt):
        k = 9
        A = poisson2d(k)
        b = rnp.ones(k * k)
        x, info, _ = gmg_preconditioned_cg(A, b, k, rtol=1e-9)
        assert info == 0
        ref = spla.spsolve(poisson2d_scipy(k).tocsc(), np.ones(k * k))
        np.testing.assert_allclose(x.to_numpy(), ref, rtol=1e-4, atol=1e-6)

    def test_fullweight_restriction_option(self, rt):
        k = 9
        x, info, _ = gmg_preconditioned_cg(
            poisson2d(k), rnp.ones(k * k), k, rtol=1e-8, restriction="fullweight"
        )
        assert info == 0

    def test_even_grid_rejected(self, rt):
        with pytest.raises(ValueError):
            TwoLevelGMG(poisson2d(7), 8)


class TestRydberg:
    def test_state_count_is_fibonacci(self):
        for n in (2, 3, 5, 8, 10):
            assert len(blockade_states(n)) == blockade_state_count(n)
        assert blockade_state_count(10) == 144

    def test_no_adjacent_excitations(self):
        for s in blockade_states(8):
            assert (s & (s << 1)) == 0

    def test_hamiltonian_hermitian(self, rt):
        H = rydberg_hamiltonian_scipy(8)
        np.testing.assert_allclose(H.toarray(), H.toarray().T)

    def test_hamiltonian_wide_band(self, rt):
        """Coordinates in a row reference a wide range of columns — the
        communication pattern the paper blames for Fig. 11's falloff."""
        H = rydberg_hamiltonian_scipy(12)
        coo = H.tocoo()
        bandwidth = np.abs(coo.row - coo.col).max()
        assert bandwidth > H.shape[0] / 4

    def test_evolution_preserves_norm(self, rt):
        H = rydberg_hamiltonian(8)
        res = simulate(H, t_final=0.5, step=0.1)
        assert res.success
        assert float(rnp.linalg.norm(res.y)) == pytest.approx(1.0, abs=1e-9)

    def test_matches_dense_expm(self, rt):
        from scipy.linalg import expm

        n = 8
        Hs = rydberg_hamiltonian_scipy(n)
        H = rydberg_hamiltonian(n)
        res = simulate(H, t_final=0.4, step=0.05)
        dim = Hs.shape[0]
        psi0 = np.zeros(dim, dtype=np.complex128)
        psi0[0] = 1.0
        expected = expm(-1j * 0.4 * Hs.toarray()) @ psi0
        np.testing.assert_allclose(res.y.to_numpy(), expected, atol=1e-8)

    def test_rabi_oscillation_single_excitation(self, rt):
        """An isolated two-level atom Rabi-oscillates at frequency Ω."""
        H = rydberg_hamiltonian(1, omega=1.0, delta=0.0)
        res = simulate(H, t_final=np.pi, step=np.pi / 20)
        final = res.y.to_numpy()
        # After t = pi with Ω = 1: full population transfer to |1>.
        assert abs(final[1]) == pytest.approx(1.0, abs=1e-6)


class TestMovieLens:
    def test_synthetic_shapes(self):
        u, i, r = synthetic_movielens(500, 200, 5000, seed=1)
        assert len(u) == len(i) == len(r) == 5000
        assert u.max() < 500 and i.max() < 200
        assert r.min() >= 0.5 and r.max() <= 5.0

    def test_popularity_skew(self):
        u, i, r = synthetic_movielens(500, 200, 20000, seed=2)
        counts = np.bincount(i, minlength=200)
        assert counts[:20].sum() > counts[100:120].sum()

    def test_fractal_expand_doubles(self):
        base = synthetic_movielens(100, 50, 1000, seed=3)
        (u, i, r), shape = fractal_expand(base, (100, 50), factor=2, seed=3)
        assert shape == (200, 100)
        # ~2x ratings, minus replica collisions; pairs stay unique.
        assert 1600 <= len(u) <= 2000
        keys = u * 100 + i
        assert len(np.unique(keys)) == len(keys)
        assert u.max() < 200 and i.max() < 100

    def test_load_dataset_scaled(self):
        (u, i, r), spec = load_dataset("ml-10m", scale=0.001)
        assert spec.n_ratings == 10_000_054
        assert len(u) >= 512

    def test_load_expanded_dataset(self):
        (u, i, r), spec = load_dataset("ml-50m", scale=0.0005)
        assert spec.name == "ml-50m"
        assert len(u) > 0


class TestMatrixFactorization:
    def test_training_reduces_loss(self, rt):
        u, i, r = synthetic_movielens(120, 60, 4000, seed=4)
        model = MatrixFactorizationModel(120, 60, k=8, lr=0.1, mu=float(r.mean()))
        before = model.rmse(u, i, r)
        rng = np.random.default_rng(0)
        for _ in range(3):
            sgd_epoch(model, u, i, r, batch_size=512, rng=rng)
        after = model.rmse(u, i, r)
        assert after < before

    def test_rmse_reasonable_after_training(self, rt):
        u, i, r = synthetic_movielens(200, 100, 8000, seed=5)
        model = MatrixFactorizationModel(
            200, 100, k=8, lr=1.0, reg=0.002, mu=float(r.mean())
        )
        rng = np.random.default_rng(1)
        for _ in range(20):
            sgd_epoch(model, u, i, r, batch_size=1024, rng=rng)
        # Bias + factor model on this data beats the raw std dev.
        assert model.rmse(u, i, r) < 0.9 * r.std()

    def test_stats_track_samples(self, rt):
        # 50x30 grid caps the unique-pair generator at 750 ratings.
        u, i, r = synthetic_movielens(50, 30, 1000, seed=6)
        assert len(u) == 750
        model = MatrixFactorizationModel(50, 30, k=4)
        samples, _ = sgd_epoch(model, u, i, r, batch_size=250, rng=np.random.default_rng(2))
        assert samples == 750
        assert model.stats.samples == 750  # unique pairs: none collapse
        assert model.stats.batches == 3

    def test_memory_footprint_grows_with_dataset(self, rt):
        model = MatrixFactorizationModel(1000, 500, k=16)
        assert model.memory_footprint_bytes(10**6) < model.memory_footprint_bytes(10**7)


class TestMultiLevelGMG:
    def test_builds_hierarchy(self, rt):
        from repro.apps import MultiLevelGMG
        from repro.apps.poisson import poisson2d

        k = 31
        gmg = MultiLevelGMG(poisson2d(k), k)
        assert gmg.depth >= 3
        sizes = [lvl[0].shape[0] for lvl in gmg.levels]
        assert sizes == sorted(sizes, reverse=True)

    def test_deeper_than_two_levels_converges(self, rt):
        from repro.apps import MultiLevelGMG
        from repro.apps.poisson import poisson2d, poisson2d_scipy
        import scipy.sparse.linalg as spla

        k = 31
        A = poisson2d(k)
        gmg = MultiLevelGMG(A, k)
        b = rnp.ones(k * k)
        iters = [0]
        x, info = sp.linalg.cg(
            A, b, rtol=1e-8, maxiter=300, M=gmg.as_preconditioner(),
            callback=lambda _: iters.__setitem__(0, iters[0] + 1),
        )
        assert info == 0
        ref = spla.spsolve(poisson2d_scipy(k).tocsc(), np.ones(k * k))
        np.testing.assert_allclose(x.to_numpy(), ref, rtol=1e-4, atol=1e-5)
        # Multigrid preconditioning keeps iterations nearly grid-independent.
        assert iters[0] < 40

    def test_vcycle_contracts_residual(self, rt):
        from repro.apps import MultiLevelGMG
        from repro.apps.poisson import poisson2d

        k = 15
        A = poisson2d(k)
        gmg = MultiLevelGMG(A, k, coarsest=3)
        b = rnp.array(np.random.default_rng(0).random(k * k))
        e = gmg.vcycle(b)
        assert float(rnp.linalg.norm(b - A @ e)) < float(rnp.linalg.norm(b))
