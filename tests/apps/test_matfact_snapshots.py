"""Matfact snapshot semantics: prediction is safe against training.

``train_batch`` publishes each epoch as an immutable
:class:`FactorSnapshot` with one reference assignment — the only
mutation a concurrent reader can ever observe.  These tests pin the
contract that makes that safe: published snapshots never change bytes
after more training, prediction reads exactly one epoch (pinned or
current-at-entry), and the atomic-publish rewrite left the SGD
numerics themselves intact (training still converges).
"""

import numpy as np
import pytest

from repro.apps.matfact import FactorSnapshot, MatrixFactorizationModel
from repro.apps.movielens import synthetic_movielens

N_USERS, N_ITEMS = 90, 60


@pytest.fixture
def data():
    return synthetic_movielens(N_USERS, N_ITEMS, 900, seed=3)


def _model(data):
    _, _, ratings = data
    return MatrixFactorizationModel(
        N_USERS, N_ITEMS, k=6, lr=0.05, mu=float(ratings.mean()), seed=1
    )


def test_train_publishes_new_epochs_atomically(data):
    model = _model(data)
    users, items, ratings = data
    snap0 = model.snapshot()
    assert isinstance(snap0, FactorSnapshot)
    assert model.version == 0
    model.train_batch(users, items, ratings)
    snap1 = model.snapshot()
    assert model.version == 1
    assert snap1 is not snap0
    # The exposed parameters ARE the current snapshot's arrays — a
    # reader that pins a snapshot and a reader that reads properties
    # see the same epoch.
    assert model.U is snap1.U
    assert model.bu is snap1.bu


def test_published_snapshots_are_immutable_under_training(data):
    model = _model(data)
    users, items, ratings = data
    snap0 = model.snapshot()
    before = (
        snap0.U.to_numpy().copy(), snap0.V.to_numpy().copy(),
        snap0.bu.to_numpy().copy(), snap0.bi.to_numpy().copy(),
    )
    for _ in range(3):
        model.train_batch(users, items, ratings)
    after = (snap0.U, snap0.V, snap0.bu, snap0.bi)
    for b, a in zip(before, after):
        assert b.tobytes() == a.to_numpy().tobytes()


def test_interleaved_predict_reads_one_consistent_epoch(data):
    """A reader interleaved with training sees some *published* epoch —
    never fresh factors mixed with stale biases.  Every interleaved
    prediction must equal the prediction recomputed from the snapshot
    that was current when the read started."""
    model = _model(data)
    users, items, ratings = data
    qu, qi = users[:40], items[:40]
    pinned = []
    for step in range(4):
        snap = model.snapshot()  # the read "starts" here
        live = model.predict(qu, qi)
        # Recompute from the pinned epoch: identical bytes, because
        # predict captured exactly one published snapshot.
        again = model.predict(qu, qi, snapshot=snap)
        assert live.tobytes() == again.tobytes()
        pinned.append((snap, live.copy()))
        model.train_batch(users, items, ratings)
    # Old pinned epochs still reproduce their bytes after training
    # moved on — the concurrent-reader guarantee, replayed post hoc.
    for snap, expected in pinned:
        replay = model.predict(qu, qi, snapshot=snap)
        assert replay.tobytes() == expected.tobytes()
    # And training actually progressed the published model.
    assert model.version == 4
    assert pinned[0][1].tobytes() != model.predict(qu, qi).tobytes()


def test_atomic_publish_preserves_sgd_numerics(data):
    """Compute-then-publish must match the classic sequential update:
    training still reduces RMSE on the training triples."""
    model = _model(data)
    users, items, ratings = data
    before = model.rmse(users, items, ratings)
    for _ in range(8):
        model.train_batch(users, items, ratings)
    assert model.rmse(users, items, ratings) < before
    assert model.stats.batches == 8


def test_predict_matches_rmse_pathway(data):
    model = _model(data)
    users, items, ratings = data
    preds = model.predict(users, items)
    rmse = float(np.sqrt(np.mean((preds - ratings) ** 2)))
    assert rmse == pytest.approx(model.rmse(users, items, ratings), rel=1e-9)
