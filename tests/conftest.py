"""Suite-wide fixtures: opt-in validation mode (``REPRO_VALIDATE=1``).

With ``REPRO_VALIDATE=1`` every runtime created during the suite records
an event log, sanitizes kernel arguments, and asserts reads are never
stale; after each test the offline checker (:mod:`repro.analysis`)
replays every log recorded during that test and fails the test on any
race, stale read or invalid copy.  This is how the whole tier-1 suite
doubles as a validation corpus — ``make check`` runs a smoke slice of
it.
"""

import os

import pytest

VALIDATE = os.environ.get("REPRO_VALIDATE", "").strip() not in ("", "0")


if VALIDATE:

    @pytest.fixture(autouse=True)
    def _validated_run():
        """Replay every event log recorded by this test through the checker."""
        from repro.analysis import active_logs, check_log

        # Events recorded before this test (e.g. by session fixtures or
        # a previous test's long-lived runtime) were already checked and
        # cleared; start from a clean slate regardless.
        for log in active_logs():
            log.clear()
        yield
        failures = []
        for log in active_logs():
            for violation in check_log(log):
                failures.append(f"{log.name}: {violation}")
            log.clear()
        if failures:
            pytest.fail(
                "event-log validation failed:\n"
                + "\n".join(f"  {f}" for f in failures)
            )
