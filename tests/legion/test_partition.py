"""Unit and property tests for tilings and image partitions."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Rect, RectSet
from repro.legion.partition import (
    ImageByCoordinate,
    ImageByRange,
    Replicate,
    Tiling,
)
from repro.legion.region import Region


class TestTiling:
    def test_even_split(self):
        r = Region((10,), np.float64)
        t = Tiling.create(r, 2)
        assert t.rects() == [Rect((0,), (5,)), Rect((5,), (10,))]

    def test_uneven_split_front_loaded(self):
        r = Region((10,), np.float64)
        t = Tiling.create(r, 3)
        sizes = [rect.volume() for rect in t.rects()]
        assert sizes == [4, 3, 3]

    def test_more_colors_than_elements(self):
        r = Region((2,), np.float64)
        t = Tiling.create(r, 4)
        assert sum(rect.volume() for rect in t.rects()) == 2
        assert t.color_count == 4

    def test_complete_and_disjoint(self):
        r = Region((17,), np.float64)
        t = Tiling.create(r, 5)
        assert t.is_disjoint()
        assert t.is_complete()

    def test_2d_tiles_rows(self):
        r = Region((10, 4), np.float64)
        t = Tiling.create(r, 2)
        assert t.rect(0) == Rect((0, 0), (5, 4))
        assert t.rect(1) == Rect((5, 0), (10, 4))

    def test_alignment_by_boundaries(self):
        a = Region((10,), np.float64)
        b = Region((10,), np.int64)
        ta, tb = Tiling.create(a, 2), Tiling.create(b, 2)
        assert ta.aligned_with(tb)
        assert not ta.aligned_with(Tiling.create(a, 5))

    def test_must_cover_dimension(self):
        r = Region((10,), np.float64)
        with pytest.raises(ValueError):
            Tiling(r, [0, 5, 9])

    @given(
        st.integers(min_value=1, max_value=200),
        st.integers(min_value=1, max_value=16),
    )
    def test_property_complete_disjoint_balanced(self, n, colors):
        r = Region((n,), np.float64)
        t = Tiling.create(r, colors)
        assert t.is_disjoint()
        assert t.is_complete()
        sizes = [rect.volume() for rect in t.rects()]
        assert max(sizes) - min(sizes) <= 1


class TestReplicate:
    def test_every_color_full(self):
        r = Region((10,), np.float64)
        p = Replicate(r, 3)
        assert all(p.rect(c) == r.rect for c in range(3))
        assert not p.is_disjoint() or p.color_count == 1


class TestImageByRange:
    def make_pos(self, ranges):
        data = np.array(ranges, dtype=np.int64)
        return Region((len(ranges), 2), np.int64, data=data)

    def test_csr_style_ranges(self):
        # Rows: [0,2) [2,5) | [5,5) [5,8)  -- second color has empty row.
        pos = self.make_pos([(0, 2), (2, 5), (5, 5), (5, 8)])
        crd = Region((8,), np.int64)
        img = ImageByRange(pos, Tiling.create(pos, 2), crd)
        assert img.rect(0) == Rect((0,), (5,))
        assert img.rect(1) == Rect((5,), (8,))

    def test_all_empty_rows(self):
        pos = self.make_pos([(0, 0), (0, 0)])
        crd = Region((4,), np.int64)
        img = ImageByRange(pos, Tiling.create(pos, 1), crd)
        assert img.rect(0).is_empty()

    def test_paper_figure_2a(self):
        # S contains ranges {0,2} {3,4} {5,5} {6,8}; colors pair them.
        # Note paper ranges are inclusive; ours are half-open.
        pos = self.make_pos([(0, 3), (3, 5), (5, 6), (6, 9)])
        dest = Region((9,), np.int64)
        img = ImageByRange(pos, Tiling.create(pos, 2), dest)
        assert img.rect(0) == Rect((0,), (5,))
        assert img.rect(1) == Rect((5,), (9,))

    def test_requires_n_by_2(self):
        bad = Region((4,), np.int64)
        with pytest.raises(ValueError):
            ImageByRange(bad, Tiling.create(bad, 2), bad)


class TestImageByCoordinate:
    def test_bounding_rects(self):
        crd = Region((6,), np.int64, data=np.array([0, 1, 1, 3, 0, 3]))
        x = Region((4,), np.float64)
        img = ImageByCoordinate(crd, Tiling.create(crd, 2), x)
        assert img.rect(0) == Rect((0,), (2,))  # coords {0,1,1}
        assert img.rect(1) == Rect((0,), (4,))  # coords {3,0,3}

    def test_aliasing_allowed(self):
        crd = Region((4,), np.int64, data=np.array([0, 1, 0, 1]))
        x = Region((2,), np.float64)
        img = ImageByCoordinate(crd, Tiling.create(crd, 2), x)
        assert img.rect(0) == img.rect(1) == Rect((0,), (2,))
        assert not img.is_disjoint()

    def test_2d_destination_covers_columns(self):
        crd = Region((4,), np.int64, data=np.array([1, 2, 5, 6]))
        x = Region((8, 3), np.float64)
        img = ImageByCoordinate(crd, Tiling.create(crd, 2), x)
        assert img.rect(0) == Rect((1, 0), (3, 3))
        assert img.rect(1) == Rect((5, 0), (7, 3))

    def test_empty_source_slice(self):
        crd = Region((2,), np.int64, data=np.array([0, 1]))
        x = Region((4,), np.float64)
        img = ImageByCoordinate(crd, Tiling.create(crd, 4), x)
        assert img.rect(3).is_empty()

    @given(st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=40),
           st.integers(min_value=1, max_value=5))
    def test_property_image_covers_references(self, coords, colors):
        """Every coordinate referenced by a shard is inside its image."""
        crd = Region((len(coords),), np.int64, data=np.array(coords))
        x = Region((31,), np.float64)
        tiling = Tiling.create(crd, colors)
        img = ImageByCoordinate(crd, tiling, x)
        for c in range(colors):
            src = tiling.rect(c)
            rect = img.rect(c)
            for j in coords[src.lo[0] : src.hi[0]]:
                assert rect.contains_point((j,))


class TestImageProperties:
    @given(
        st.lists(
            st.integers(min_value=0, max_value=6), min_size=1, max_size=30
        ),
        st.integers(min_value=1, max_value=5),
    )
    def test_image_by_range_matches_indptr_slices(self, row_counts, colors):
        """For CSR-style pos, the image of a row tile is exactly the
        nnz window scipy's indptr would give."""
        indptr = np.concatenate([[0], np.cumsum(row_counts)]).astype(np.int64)
        n = len(row_counts)
        nnz = int(indptr[-1])
        pos = Region(
            (n, 2), np.int64, data=np.stack([indptr[:-1], indptr[1:]], axis=1)
        )
        crd = Region((max(nnz, 1),), np.int64)
        tiling = Tiling.create(pos, colors)
        img = ImageByRange(pos, tiling, crd)
        for c in range(colors):
            tile = tiling.rect(c)
            rlo, rhi = tile.lo[0], tile.hi[0]
            rect = img.rect(c)
            if rhi <= rlo or indptr[rhi] == indptr[rlo]:
                assert rect.is_empty()
            else:
                assert rect == Rect((int(indptr[rlo]),), (int(indptr[rhi]),))

    @given(
        st.lists(st.integers(min_value=0, max_value=40), min_size=1, max_size=50),
        st.integers(min_value=1, max_value=4),
    )
    def test_exact_image_pieces_are_disjoint_and_minimal(self, coords, colors):
        crd = Region((len(coords),), np.int64, data=np.array(coords, np.int64))
        x = Region((41,), np.float64)
        tiling = Tiling.create(crd, colors)
        img = ImageByCoordinate(crd, tiling, x, exact=True)
        for c in range(colors):
            pieces = img.pieces(c)
            covered = set()
            for piece in pieces:
                for p in range(piece.lo[0], piece.hi[0]):
                    assert p not in covered  # disjoint
                    covered.add(p)
            tile = tiling.rect(c)
            refs = set(coords[tile.lo[0] : tile.hi[0]])
            if len(pieces) > 1 or (pieces and len(covered) < 41):
                # Unless the fallback kicked in, pieces == references.
                if len(pieces) <= ImageByCoordinate.MAX_EXACT_PIECES and pieces:
                    assert covered == refs or refs.issubset(covered)
