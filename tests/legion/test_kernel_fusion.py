"""Kernel fusion end-to-end: merged nests vs replay vs unfused.

Property-style checks that merge-safe fused groups executed as one
generated loop nest are bitwise-identical to issue-order replay and to
fully unfused execution — over randomized pointwise chains, the CG
axpy/dot tail and a GMG-style smoother — plus the verdict log, the
profiler counters, the paper_legate pin and the opaque-kernel fallback.
"""

import hashlib

import numpy as np
import pytest

import repro.numeric as rnp
from repro.harness.config import paper_legate
from repro.legion import Runtime, RuntimeConfig
from repro.legion.runtime import runtime_scope
from repro.machine import ProcessorKind, laptop


def run_workload(workload, *, fusion=True, kernel_fusion=True, procs=2):
    """Run ``workload`` under one config; return (digest, runtime)."""
    machine = laptop()
    runtime = Runtime(
        machine.scope(ProcessorKind.GPU, procs),
        RuntimeConfig.legate(fusion=fusion, kernel_fusion=kernel_fusion),
    )
    with runtime_scope(runtime):
        out = workload()
        data = out.to_numpy()
    digest = hashlib.sha256(data.tobytes()).hexdigest()
    return digest, runtime


def assert_three_way_identical(workload):
    """The same bits under merged, replay and unfused execution."""
    merged, rt_merged = run_workload(workload)
    replay, rt_replay = run_workload(workload, kernel_fusion=False)
    unfused, _ = run_workload(workload, fusion=False)
    assert merged == replay == unfused
    return rt_merged, rt_replay


BIN_OPS = ["add", "subtract", "multiply", "maximum", "minimum"]
UN_OPS = ["sqrt", "negative", "absolute", "square"]


@pytest.mark.parametrize("seed", range(5))
def test_random_pointwise_chains_bitwise_identical(seed):
    rng = np.random.default_rng(seed)
    n = 96
    a0 = rng.uniform(0.5, 2.0, n)
    b0 = rng.uniform(0.5, 2.0, n)
    steps = [
        ("bin", rng.choice(BIN_OPS)) if rng.random() < 0.6
        else ("un", rng.choice(UN_OPS))
        for _ in range(int(rng.integers(3, 8)))
    ]
    scalars = rng.uniform(0.5, 1.5, len(steps))

    def workload():
        x = rnp.array(a0)
        b = rnp.array(b0)
        for (kind, op), s in zip(steps, scalars):
            if kind == "bin":
                x = getattr(rnp, op)(x, b) * float(s)
            else:
                x = getattr(rnp, op)(x) + float(s)
        return x

    rt_merged, _ = assert_three_way_identical(workload)
    # The chain is pure known-op pointwise code: something merged.
    assert rt_merged.profiler.kernel_merges > 0
    assert any(v == "merged" for _, _, v in rt_merged.fusion_log)


def test_cg_axpy_tail_bitwise_identical():
    """The CG update tail: x += alpha p; r -= alpha q, dots between."""
    rng = np.random.default_rng(7)
    n = 128
    x0, r0, p0, q0 = (rng.standard_normal(n) for _ in range(4))

    def workload():
        x = rnp.array(x0)
        r = rnp.array(r0)
        p = rnp.array(p0)
        q = rnp.array(q0)
        for _ in range(3):
            alpha = float(rnp.dot(r, r)) / float(rnp.dot(p, q))
            x = x + p * alpha
            r = r - q * alpha
            beta = float(rnp.dot(r, r))
            p = r + p * beta
        return x + r

    rt_merged, rt_replay = assert_three_way_identical(workload)
    assert rt_merged.profiler.kernel_merges > 0
    # Same groups on both sides; only the labels differ.
    assert [g[:2] for g in rt_merged.fusion_log] == [
        g[:2] for g in rt_replay.fusion_log
    ]
    assert all(
        v.startswith(("replay:disabled", "single"))
        for _, _, v in rt_replay.fusion_log
    )


def test_gmg_smoother_chain_bitwise_identical():
    """A weighted-Jacobi smoother step: e += omega * (r * dinv)."""
    rng = np.random.default_rng(11)
    n = 81
    r0 = rng.standard_normal(n)
    d0 = rng.uniform(1.0, 3.0, n)

    def workload():
        r = rnp.array(r0)
        dinv = 1.0 / rnp.array(d0)
        e = rnp.zeros(n)
        for _ in range(4):
            t = r * dinv
            e = e + t * (2.0 / 3.0)
        return e

    rt_merged, _ = assert_three_way_identical(workload)
    assert rt_merged.profiler.kernel_merges > 0


def test_merged_compute_strictly_below_replay():
    """Shared operands and elided temps make the merged model cheaper."""
    def workload():
        x = rnp.array(np.linspace(0.5, 2.0, 256))
        t = x * 2.0
        y = t + x  # x read by two statements; t elided
        return y

    _, rt_merged = run_workload(workload)
    _, rt_replay = run_workload(workload, kernel_fusion=False)
    assert rt_merged.profiler.kernel_merges > 0
    assert rt_replay.profiler.kernel_merges == 0
    assert (
        rt_merged.profiler.kernel_seconds
        < rt_replay.profiler.kernel_seconds
    )


def test_live_elided_temp_still_readable_after_window():
    """An elided-but-live temporary must still reach its backing array."""
    machine = laptop()
    runtime = Runtime(
        machine.scope(ProcessorKind.GPU, 2), RuntimeConfig.legate()
    )
    with runtime_scope(runtime):
        a = rnp.ones(32)
        runtime.barrier()
        t = a * 2.0   # produced...
        y = t + 1.0   # ...and consumed in-window: t is elided
        runtime.barrier()
        assert any(v == "merged" for _, _, v in runtime.fusion_log)
        np.testing.assert_array_equal(t.to_numpy(), np.full(32, 2.0))
        np.testing.assert_array_equal(y.to_numpy(), np.full(32, 3.0))


def test_opaque_kernel_blocks_merge_but_replays_identically():
    """clip exposes no body IR: its group replays, bits unchanged."""
    rng = np.random.default_rng(3)
    x0 = rng.standard_normal(64)

    def workload():
        x = rnp.array(x0)
        y = x * 2.0
        z = rnp.clip(y, -0.5, 0.5)
        return z + y

    rt_merged, _ = assert_three_way_identical(workload)
    labels = [v for _, _, v in rt_merged.fusion_log]
    assert "replay:opaque-kernel" in labels


def test_fusion_log_carries_verdict_labels():
    def workload():
        x = rnp.ones(48)
        return x * 3.0 + 1.0

    _, rt = run_workload(workload)
    assert rt.fusion_log
    for names, elided, verdict in rt.fusion_log:
        assert isinstance(names, tuple)
        assert isinstance(elided, int)
        assert verdict == "single" or verdict == "merged" or (
            verdict.startswith("replay:")
            and verdict.split(":", 1)[1] in __import__(
                "repro.analysis.depend", fromlist=["REASONS"]
            ).REASONS
        )


def test_kernel_fusion_disabled_labels_replay():
    def workload():
        x = rnp.ones(48)
        return x * 3.0 + 1.0

    _, rt = run_workload(workload, kernel_fusion=False)
    fused = [v for names, _, v in rt.fusion_log if len(names) > 1]
    assert fused and all(v == "replay:disabled" for v in fused)
    assert rt.profiler.kernel_merges == 0


def test_paper_legate_pins_kernel_fusion_off():
    cfg = paper_legate()
    assert not cfg.fusion
    assert not cfg.kernel_fusion
    assert RuntimeConfig.legate().kernel_fusion
    # Explicit override still wins for the separate fusion benchmark.
    assert paper_legate(fusion=True, kernel_fusion=True).kernel_fusion


def test_nest_source_is_inspectable():
    """The generated nest source is cached, exec-able text."""
    from repro.distal import codegen

    codegen.clear_compile_cache()

    def workload():
        x = rnp.array(np.arange(1.0, 65.0))
        t = x * 2.0
        return t + 1.0

    _, rt = run_workload(workload)
    assert rt.profiler.kernel_merges > 0
    stats = codegen.compile_cache_stats()
    assert stats["misses"] > 0
