"""Profiler unit tests: counters, deltas, summaries."""

from dataclasses import fields

import numpy as np

import repro.numeric as rnp
import repro.sparse as sp
from repro.legion import Runtime, RuntimeConfig
from repro.legion.profiler import Profiler
from repro.legion.runtime import runtime_scope
from repro.machine import ProcessorKind, laptop


class TestCounters:
    def test_record_and_totals(self):
        p = Profiler()
        p.record_task("spmv", 4)
        p.record_copy("nvlink[0,1]", 100)
        p.record_copy("nic[0]", 50)
        p.record_copy("nvlink[2,3]", 100)
        p.record_allreduce()
        assert p.tasks_launched == 1
        assert p.shards_executed == 4
        assert p.total_copy_bytes() == 250
        assert p.total_copy_bytes("nvlink") == 200
        assert p.total_copies("nic") == 1
        assert p.allreduces == 1

    def test_channel_kind_grouping(self):
        p = Profiler()
        p.record_copy("nvlink[1,2]", 10)
        p.record_copy("nvlink[3,4]", 20)
        assert p.copy_bytes["nvlink"] == 30

    def test_snapshot_delta(self):
        p = Profiler()
        p.record_task("a", 1)
        snap = p.snapshot()
        p.record_task("a", 1)
        p.record_copy("nic[0]", 64)
        delta = p.since(snap)
        assert delta.tasks_launched == 1
        assert delta.copy_bytes["nic"] == 64
        assert delta.task_counts["a"] == 1

    def test_summary_renders(self):
        machine = laptop()
        rt = Runtime(machine.scope(ProcessorKind.GPU, 2), RuntimeConfig.legate())
        with runtime_scope(rt):
            A = sp.eye(32, format="csr")
            x = rnp.ones(32)
            for _ in range(3):
                x = A @ x
                x /= rnp.linalg.norm(x)
        text = rt.profiler.format_summary()
        assert "tasks launched" in text
        assert "hottest tasks" in text
        assert "allreduces" in text

    def test_events_disabled_by_default(self):
        p = Profiler()
        p.record_event("x", 0.0, 1.0)
        assert p.events == []
        p.record_events = True
        p.record_event("x", 0.0, 1.0)
        assert p.events == [("x", 0.0, 1.0)]

    def test_summary_prints_fills(self):
        p = Profiler()
        p.record_fill()
        p.record_fill()
        assert "fills:            2" in p.format_summary()
        # And stays quiet when nothing was filled.
        assert "fills" not in Profiler().format_summary()


class TestSnapshotDelta:
    def test_snapshot_carries_events(self):
        p = Profiler(record_events=True)
        p.record_event("warm", 0.0, 1.0)
        snap = p.snapshot()
        assert snap.events == [("warm", 0.0, 1.0)]
        p.record_event("solve", 1.0, 2.0)
        assert snap.events == [("warm", 0.0, 1.0)]  # frozen copy

    def test_since_slices_event_tail(self):
        p = Profiler(record_events=True)
        p.record_event("warm", 0.0, 1.0)
        snap = p.snapshot()
        p.record_event("solve", 1.0, 2.0)
        p.record_event("solve", 2.0, 3.0)
        delta = p.since(snap)
        assert delta.events == [("solve", 1.0, 2.0), ("solve", 2.0, 3.0)]
        assert delta.record_events is True  # flags copy, not subtract

    def test_drift_guard_every_field_survives_delta(self):
        """Bump every counter field by a distinct amount and assert the
        snapshot/since pair reproduces exactly that delta — a counter
        added without snapshot support can never slip through again."""
        base = Profiler()
        bumped = Profiler()
        for i, f in enumerate(fields(Profiler)):
            bump = i + 1
            cur = getattr(bumped, f.name)
            if isinstance(cur, bool):
                setattr(base, f.name, True)
                setattr(bumped, f.name, True)
            elif isinstance(cur, int):
                setattr(base, f.name, 10 * bump)
                setattr(bumped, f.name, 10 * bump + bump)
            elif isinstance(cur, float):
                setattr(base, f.name, 0.5 * bump)
                setattr(bumped, f.name, 0.5 * bump + bump)
            elif isinstance(cur, dict):
                getattr(base, f.name)[f.name] = 10 * bump
                getattr(bumped, f.name)[f.name] = 10 * bump + bump
                getattr(bumped, f.name)["fresh-key"] = bump
            elif isinstance(cur, list):
                getattr(base, f.name).append(("old", 0.0, 1.0))
                getattr(bumped, f.name).extend(
                    [("old", 0.0, 1.0), (f.name, 1.0, 2.0)]
                )
            else:
                raise AssertionError(
                    f"field {f.name!r} has a type the drift guard does "
                    f"not cover: {type(cur).__name__}"
                )
        snap = bumped.snapshot()
        # The snapshot is faithful for every field...
        for f in fields(Profiler):
            assert getattr(snap, f.name) == getattr(bumped, f.name), f.name
        # ...and since() yields exactly the per-field bumps.
        delta = bumped.since(base)
        for i, f in enumerate(fields(Profiler)):
            bump = i + 1
            got = getattr(delta, f.name)
            if isinstance(getattr(bumped, f.name), bool):
                assert got is True, f.name
            elif isinstance(got, (int, float)) and not isinstance(got, bool):
                assert got == bump, f.name
            elif isinstance(got, dict):
                assert got[f.name] == bump, f.name
                assert got["fresh-key"] == bump, f.name
            else:
                assert got == [(f.name, 1.0, 2.0)], f.name
