"""Profiler unit tests: counters, deltas, summaries."""

import numpy as np

import repro.numeric as rnp
import repro.sparse as sp
from repro.legion import Runtime, RuntimeConfig
from repro.legion.profiler import Profiler
from repro.legion.runtime import runtime_scope
from repro.machine import ProcessorKind, laptop


class TestCounters:
    def test_record_and_totals(self):
        p = Profiler()
        p.record_task("spmv", 4)
        p.record_copy("nvlink[0,1]", 100)
        p.record_copy("nic[0]", 50)
        p.record_copy("nvlink[2,3]", 100)
        p.record_allreduce()
        assert p.tasks_launched == 1
        assert p.shards_executed == 4
        assert p.total_copy_bytes() == 250
        assert p.total_copy_bytes("nvlink") == 200
        assert p.total_copies("nic") == 1
        assert p.allreduces == 1

    def test_channel_kind_grouping(self):
        p = Profiler()
        p.record_copy("nvlink[1,2]", 10)
        p.record_copy("nvlink[3,4]", 20)
        assert p.copy_bytes["nvlink"] == 30

    def test_snapshot_delta(self):
        p = Profiler()
        p.record_task("a", 1)
        snap = p.snapshot()
        p.record_task("a", 1)
        p.record_copy("nic[0]", 64)
        delta = p.since(snap)
        assert delta.tasks_launched == 1
        assert delta.copy_bytes["nic"] == 64
        assert delta.task_counts["a"] == 1

    def test_summary_renders(self):
        machine = laptop()
        rt = Runtime(machine.scope(ProcessorKind.GPU, 2), RuntimeConfig.legate())
        with runtime_scope(rt):
            A = sp.eye(32, format="csr")
            x = rnp.ones(32)
            for _ in range(3):
                x = A @ x
                x /= rnp.linalg.norm(x)
        text = rt.profiler.format_summary()
        assert "tasks launched" in text
        assert "hottest tasks" in text
        assert "allreduces" in text

    def test_events_disabled_by_default(self):
        p = Profiler()
        p.record_event("x", 0.0, 1.0)
        assert p.events == []
        p.record_events = True
        p.record_event("x", 0.0, 1.0)
        assert p.events == [("x", 0.0, 1.0)]
