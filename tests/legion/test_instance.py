"""Unit tests for the allocation store and coalescing (§4.2)."""

import pytest

from repro.geometry import Rect
from repro.legion.exceptions import OutOfMemoryError
from repro.legion.instance import InstanceManager, MemoryState
from repro.machine import Memory, MemoryKind


def R(lo, hi):
    return Rect((lo,), (hi,))


def make_memory(capacity=1000):
    return Memory(uid=0, kind=MemoryKind.FRAMEBUFFER, node=0, capacity=capacity)


class TestAllocation:
    def test_fresh_allocation_charges(self):
        st = MemoryState(make_memory())
        inst, move, fresh = st.ensure(region_uid=1, rect=R(0, 10), itemsize=8)
        assert fresh
        assert move == 0
        assert st.used_bytes == 80

    def test_containing_instance_reused(self):
        st = MemoryState(make_memory())
        first, _, _ = st.ensure(1, R(0, 10), 8)
        second, move, fresh = st.ensure(1, R(2, 8), 8)
        assert not fresh
        assert second is first
        assert move == 0
        assert st.used_bytes == 80

    def test_empty_rect_is_free(self):
        st = MemoryState(make_memory())
        _, move, _ = st.ensure(1, R(3, 3), 8)
        assert move == 0
        assert st.used_bytes == 0

    def test_different_regions_do_not_share(self):
        st = MemoryState(make_memory())
        st.ensure(1, R(0, 10), 8)
        st.ensure(2, R(0, 10), 8)
        assert st.used_bytes == 160


class TestCoalescing:
    def test_overlapping_views_coalesce(self):
        st = MemoryState(make_memory())
        st.ensure(1, R(0, 6), 8)
        inst, move, _ = st.ensure(1, R(4, 10), 8)
        assert inst.rect == R(0, 10)
        # The old 6-element allocation had to be migrated.
        assert move == 48
        assert st.used_bytes == 80

    def test_adjacent_views_coalesce(self):
        st = MemoryState(make_memory())
        st.ensure(1, R(0, 5), 8)
        inst, move, _ = st.ensure(1, R(5, 10), 8)
        assert inst.rect == R(0, 10)

    def test_distant_views_do_not_coalesce(self):
        st = MemoryState(make_memory(capacity=100_000))
        st.ensure(1, R(0, 5), 8)
        inst, move, fresh = st.ensure(1, R(1000, 1005), 8)
        assert fresh
        assert inst.rect == R(1000, 1005)
        assert move == 0
        assert st.used_bytes == 80

    def test_coalescing_disabled(self):
        st = MemoryState(make_memory(), coalescing=False)
        st.ensure(1, R(0, 6), 8)
        inst, move, _ = st.ensure(1, R(4, 10), 8)
        assert move == 0
        assert inst.rect == R(4, 10)
        # Overlap stored twice: this is the memory cost the paper's
        # coalescing step avoids.
        assert st.used_bytes == (6 + 6) * 8

    def test_steady_state_no_more_moves(self):
        st = MemoryState(make_memory())
        st.ensure(1, R(0, 6), 8)
        st.ensure(1, R(4, 10), 8)
        _, move, _ = st.ensure(1, R(0, 10), 8)
        assert move == 0


class TestCapacity:
    def test_oom_raised(self):
        st = MemoryState(make_memory(capacity=100))
        with pytest.raises(OutOfMemoryError):
            st.ensure(1, R(0, 100), 8)

    def test_reservation_reduces_capacity(self):
        st = MemoryState(make_memory(capacity=100), reserved_bytes=50)
        with pytest.raises(OutOfMemoryError):
            st.ensure(1, R(0, 8), 8)

    def test_free_region_recycles(self):
        st = MemoryState(make_memory())
        st.ensure(1, R(0, 10), 8)
        st.free_region(1)
        # Allocation moves to the pool (still charged, §4.2 reuse)...
        assert st.used_bytes == 80
        assert st.pool == [80]
        # ...and a new region of similar size claims it with no charge.
        inst, move, _ = st.ensure(2, R(0, 9), 8)
        assert move == 0
        assert st.used_bytes == 80
        assert inst.alloc_bytes == 80

    def test_pooled_allocation_absorbs_growth(self):
        """The §4.3 steady state: a recycled, larger allocation lets the
        view grow to the halo rect with no resize copy."""
        st = MemoryState(make_memory())
        st.ensure(1, R(0, 11), 8)  # old vector incl. halo element
        st.free_region(1)
        inst, move, _ = st.ensure(2, R(0, 10), 8)  # new vector, written part
        assert move == 0
        inst2, move2, _ = st.ensure(2, R(0, 11), 8)  # read incl. halo
        assert inst2 is inst
        assert move2 == 0  # grew inside the recycled allocation

    def test_pool_drained_under_memory_pressure(self):
        st = MemoryState(make_memory(capacity=900))
        st.ensure(1, R(0, 20), 8)  # 160 bytes
        st.free_region(1)
        # A 800-byte request cannot reuse the 160-byte pooled allocation
        # and 160 + 800 > 900, so the pool is drained before charging.
        st.ensure(2, R(0, 100), 8)
        assert st.used_bytes == 800
        assert st.pool == []

    def test_peak_tracks_high_water(self):
        st = MemoryState(make_memory())
        st.ensure(1, R(0, 10), 8)
        st.free_region(1)
        assert st.peak_bytes == 80

    def test_data_scale_magnifies_footprint(self):
        st = MemoryState(make_memory(capacity=1000), data_scale=100.0)
        with pytest.raises(OutOfMemoryError):
            st.ensure(1, R(0, 10), 8)  # 80 bytes * 100 > 1000


class TestInstanceManager:
    def test_reservation_only_for_framebuffers(self):
        mgr = InstanceManager(reserved_fb_bytes=64)
        fb = Memory(0, MemoryKind.FRAMEBUFFER, 0, 1000)
        sysmem = Memory(1, MemoryKind.SYSMEM, 0, 1000)
        assert mgr.state(fb).reserved_bytes == 64
        assert mgr.state(sysmem).reserved_bytes == 0

    def test_reservation_clamped_for_small_memories(self):
        mgr = InstanceManager(reserved_fb_bytes=10**12)
        fb = Memory(0, MemoryKind.FRAMEBUFFER, 0, 1000)
        assert mgr.state(fb).reserved_bytes == 150

    def test_free_region_across_memories(self):
        mgr = InstanceManager()
        fb0 = Memory(0, MemoryKind.FRAMEBUFFER, 0, 10**6)
        fb1 = Memory(1, MemoryKind.FRAMEBUFFER, 0, 10**6)
        mgr.ensure(fb0, 7, R(0, 10), 8)
        mgr.ensure(fb1, 7, R(0, 10), 8)
        mgr.free_region(7)
        # Instances are gone; bytes moved to each memory's reuse pool.
        assert mgr.state(fb0).instances.get(7, []) == []
        assert mgr.state(fb1).instances.get(7, []) == []
        assert mgr.state(fb0).pool == [80]
        assert mgr.state(fb1).pool == [80]
