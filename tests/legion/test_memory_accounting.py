"""MemoryState accounting: pool, reservation and eviction bookkeeping."""

from repro.geometry import Rect
from repro.legion.instance import InstanceManager, MemoryState
from repro.machine import Machine, ProcessorKind
from repro.machine.model import MachineConfig


def _fb_memory(fb_mb: float = 1.0):
    machine = Machine(
        MachineConfig(
            nodes=1,
            sockets_per_node=1,
            gpus_per_node=1,
            gpu_memory=int(fb_mb * 2**20),
            sysmem_per_node=2**30,
        )
    )
    return machine.scope(ProcessorKind.GPU, 1).processors[0].memory


def _state(fb_mb: float = 1.0, **kwargs) -> MemoryState:
    return MemoryState(_fb_memory(fb_mb), **kwargs)


def rect(n: int) -> Rect:
    return Rect((0,), (n,))


class TestCharging:
    def test_available_tracks_usage_and_reservation(self):
        st = _state(fb_mb=1.0, reserved_bytes=2**18)
        budget = 2**20 - 2**18
        assert st.available == budget
        st.ensure(0, rect(1024), 8)  # 8 KiB
        assert st.available == budget - 8192
        assert st.peak_bytes == 8192

    def test_available_never_negative(self):
        st = _state(fb_mb=1.0)
        st.ensure(0, rect(100_000), 8)  # 800 KB of 1 MB
        assert st.available >= 0
        # Even float noise in used_bytes cannot surface as overdraft.
        st.used_bytes = st.memory.capacity + 0.25
        assert st.available == 0

    def test_free_region_pools_then_drain_releases(self):
        st = _state(fb_mb=1.0)
        st.ensure(0, rect(10_000), 8)
        used = st.used_bytes
        freed = st.free_region(0)
        assert freed == 80_000
        # Pooled allocations stay charged until drained.
        assert st.used_bytes == used
        assert st.pool == [80_000]
        st.drain_pool()
        assert st.used_bytes == 0
        assert st.pool == []

    def test_double_free_is_a_noop(self):
        st = _state(fb_mb=1.0)
        st.ensure(0, rect(10_000), 8)
        assert st.free_region(0) == 80_000
        assert st.free_region(0) == 0
        st.drain_pool()
        assert st.used_bytes == 0

    def test_allocation_reuses_pool_without_new_charge(self):
        st = _state(fb_mb=1.0)
        st.ensure(0, rect(10_000), 8)
        st.free_region(0)
        used = st.used_bytes
        inst, _, fresh = st.ensure(1, rect(10_000), 8)
        assert fresh
        assert st.used_bytes == used  # recycled, not re-charged
        assert inst.alloc_bytes == 80_000

    def test_inflight_window_keeps_newest_recycled(self):
        st = _state(fb_mb=1.0, inflight_window=1)
        st.ensure(0, rect(1_000), 8)
        st.ensure(1, rect(2_000), 8)
        st.free_region(0)
        st.free_region(1)
        st.drain_pool()
        # The newest recycled allocation is still in flight: charged.
        assert st.pool == [16_000]
        assert st.used_bytes == 16_000


class TestEviction:
    def test_lru_order_follows_use_ticks(self):
        st = _state(fb_mb=1.0)
        a, _, _ = st.ensure(0, rect(1_000), 8)
        b, _, _ = st.ensure(1, rect(1_000), 8)
        st.ensure(0, rect(1_000), 8)  # touch a again
        assert [i.region_uid for i in st.lru_instances()] == [1, 0]
        assert b.last_use < a.last_use

    def test_drop_instance_releases_once(self):
        st = _state(fb_mb=1.0)
        inst, _, _ = st.ensure(0, rect(1_000), 8)
        assert st.drop_instance(inst) == 8_000
        assert st.used_bytes == 0
        assert st.instances == {}
        # Dropping again is a no-op, not a double release.
        assert st.drop_instance(inst) == 0.0
        assert st.used_bytes == 0

    def test_evict_lru_frees_just_enough(self):
        st = _state(fb_mb=1.0)
        st.ensure(0, rect(1_000), 8)
        st.ensure(1, rect(1_000), 8)
        st.ensure(2, rect(1_000), 8)
        freed = st.evict_lru(10_000)
        assert freed == 16_000  # two oldest instances
        assert set(st.instances) == {2}

    def test_lose_wipes_contents_but_keeps_peak(self):
        st = _state(fb_mb=1.0)
        st.ensure(0, rect(10_000), 8)
        st.free_region(0)
        peak = st.peak_bytes
        st.lose()
        assert st.used_bytes == 0
        assert st.instances == {} and st.pool == []
        assert st.peak_bytes == peak

    def test_scaled_instances_release_scaled_bytes(self):
        st = _state(fb_mb=1.0)
        inst, _, _ = st.ensure(0, rect(1_000), 8, scale=10.0)
        assert st.used_bytes == 80_000
        assert st.drop_instance(inst) == 80_000
        assert st.used_bytes == 0


class TestManager:
    def test_reservation_clamped_for_small_memories(self):
        mgr = InstanceManager(reserved_fb_bytes=8 << 30)
        memory = _fb_memory(1.0)
        st = mgr.state(memory)
        assert st.reserved_bytes == int(0.15 * memory.capacity)

    def test_lose_memory_only_touches_target(self):
        mgr = InstanceManager()
        memory = _fb_memory(1.0)
        mgr.ensure(memory, 0, rect(1_000), 8)
        mgr.lose_memory(memory.uid)
        assert mgr.used_bytes(memory) == 0
        mgr.lose_memory(memory.uid + 999)  # unknown uid: no-op
