"""Tests for trace capture/replay (the paper's cited tracing fix)."""

import numpy as np
import pytest

import repro.numeric as rnp
import repro.sparse as sp
from repro.legion import Runtime, RuntimeConfig, Trace
from repro.legion.runtime import runtime_scope
from repro.machine import ProcessorKind, laptop


@pytest.fixture
def rt():
    machine = laptop()
    runtime = Runtime(machine.scope(ProcessorKind.GPU, 2), RuntimeConfig.legate())
    with runtime_scope(runtime):
        yield runtime


def loop_body(A, x):
    y = A @ x
    y /= rnp.linalg.norm(y)
    return y


class TestTrace:
    def test_capture_then_replay(self, rt):
        A = sp.eye(64, format="csr")
        x = rnp.ones(64)
        trace = Trace(rt, "power-iter")
        for _ in range(4):
            with trace:
                x = loop_body(A, x)
        assert trace.is_captured
        assert trace.replays == 3
        assert trace.captures == 1

    def test_replay_is_faster(self, rt):
        """Replayed iterations charge a fraction of the launch overhead."""
        A = sp.eye(256, format="csr")

        def run(traced: bool) -> float:
            runtime = Runtime(
                laptop().scope(ProcessorKind.GPU, 1),
                RuntimeConfig.legate(launch_overhead=1e-3),
            )
            with runtime_scope(runtime):
                B = sp.eye(256, format="csr")
                x = rnp.ones(256)
                trace = Trace(runtime, "t")
                x = loop_body(B, x)  # warm-up
                t0 = runtime.barrier()
                for _ in range(6):
                    if traced:
                        with trace:
                            x = loop_body(B, x)
                    else:
                        x = loop_body(B, x)
                return runtime.barrier() - t0

        untraced = run(False)
        traced = run(True)
        assert traced < 0.6 * untraced

    def test_numerics_unchanged_by_tracing(self, rt):
        mat = np.random.default_rng(0).random((32, 32))
        mat[mat < 0.7] = 0
        A = sp.csr_matrix(mat + 32 * np.eye(32))
        trace = Trace(rt, "t")
        x1 = rnp.ones(32)
        x2 = rnp.ones(32)
        for _ in range(3):
            x1 = loop_body(A, x1)
            with trace:
                x2 = loop_body(A, x2)
        np.testing.assert_allclose(x1.to_numpy(), x2.to_numpy(), rtol=1e-14)

    def test_divergent_body_recaptures(self, rt):
        A = sp.eye(32, format="csr")
        x = rnp.ones(32)
        trace = Trace(rt, "t")
        with trace:
            x = A @ x
        with trace:
            x = A @ x
            x /= rnp.linalg.norm(x)  # different sequence
        assert trace.captures == 2
        assert trace.replays == 0

    def test_cg_tail_iteration_diverges_gracefully(self, rt):
        """A CG loop whose final iteration does extra work (the
        convergence tail) diverges mid-body: the runtime degrades to
        full dynamic cost for that body and re-captures instead of
        aborting, and the numerics are untouched."""
        A = sp.csr_matrix(
            np.diag(np.arange(2.0, 34.0)) - np.eye(32, k=1) - np.eye(32, k=-1)
        )
        x = rnp.ones(32)
        trace = Trace(rt, "cg-body")
        iters = 5
        for it in range(iters):
            with trace:
                x = loop_body(A, x)
                if it == iters - 1:  # tail: compute the final residual
                    r = A @ x
                    r -= x
        assert trace.captures == 2  # initial capture + tail re-capture
        assert trace.replays == iters - 2
        # The re-captured (longer) body replays cleanly from here on.
        for it in range(2):
            with trace:
                x = loop_body(A, x)
                r = A @ x
                r -= x
        assert trace.replays == iters - 2 + 2
        assert np.isfinite(x.to_numpy()).all()

    def test_nesting_rejected(self, rt):
        trace = Trace(rt, "t")
        with trace.__class__(rt, "outer") as outer, pytest.raises(RuntimeError):
            outer.__enter__()

    def test_exception_inside_trace_does_not_capture_garbage(self, rt):
        A = sp.eye(16, format="csr")
        x = rnp.ones(16)
        trace = Trace(rt, "t")
        with pytest.raises(ValueError), trace:
            x = A @ x
            raise ValueError("boom")
        assert not trace.is_captured
        # A clean iteration captures normally afterwards.
        with trace:
            x = A @ x
        assert trace.is_captured
