"""Integration-style tests for the runtime: tasks, copies, timing."""

import numpy as np
import pytest

from repro.legion import (
    Future,
    Privilege,
    Replicate,
    Requirement,
    Runtime,
    RuntimeConfig,
    TaskLaunch,
    Tiling,
)
from repro.machine import ProcessorKind, laptop, summit


@pytest.fixture
def gpu2():
    machine = laptop()
    return Runtime(machine.scope(ProcessorKind.GPU, 2), RuntimeConfig.legate())


def double_kernel(ctx):
    ctx.view("out")[...] = 2.0 * ctx.view("inp")


def launch_double(rt, out, inp, colors=2):
    rt.launch(
        TaskLaunch(
            "double",
            [
                Requirement("out", out, Tiling.create(out, colors), Privilege.WRITE_DISCARD),
                Requirement("inp", inp, Tiling.create(inp, colors), Privilege.READ),
            ],
            double_kernel,
        )
    )


class TestExecution:
    def test_numerics_exact(self, gpu2):
        inp = gpu2.create_region((100,), np.float64, data=np.arange(100.0))
        out = gpu2.create_region((100,), np.float64)
        launch_double(gpu2, out, inp)
        np.testing.assert_array_equal(out.data, 2.0 * np.arange(100.0))

    def test_time_advances(self, gpu2):
        inp = gpu2.create_region((100,), np.float64, data=np.arange(100.0))
        out = gpu2.create_region((100,), np.float64)
        t0 = gpu2.elapsed()
        launch_double(gpu2, out, inp)
        assert gpu2.elapsed() > t0

    def test_host_data_staged_once(self, gpu2):
        inp = gpu2.create_region((100,), np.float64, data=np.arange(100.0))
        out = gpu2.create_region((100,), np.float64)
        launch_double(gpu2, out, inp)
        first = gpu2.profiler.total_copy_bytes("nvlink")
        assert first == 100 * 8  # both halves staged from host sysmem
        launch_double(gpu2, out, inp)
        # Data now resident on the GPUs: no further copies.
        assert gpu2.profiler.total_copy_bytes("nvlink") == first

    def test_write_invalidates_remote_copy(self, gpu2):
        a = gpu2.create_region((64,), np.float64, data=np.ones(64))
        b = gpu2.create_region((64,), np.float64)
        launch_double(gpu2, b, a)
        # Write a with one shard per GPU, then broadcast-read it on both:
        # each GPU must fetch the other's half.
        rt = gpu2

        def bump(ctx):
            ctx.view("out")[...] += 1.0

        rt.launch(
            TaskLaunch(
                "bump",
                [Requirement("out", a, Tiling.create(a, 2), Privilege.WRITE)],
                bump,
            )
        )
        snap = rt.profiler.snapshot()

        def read_all(ctx):
            assert ctx.view("inp").shape == (64,)

        rt.launch(
            TaskLaunch(
                "readall",
                [Requirement("inp", a, Replicate(a, 2), Privilege.READ)],
                read_all,
            )
        )
        delta = rt.profiler.since(snap)
        # Each GPU pulls the 32 elements it does not own.
        assert delta.total_copy_bytes("nvlink") == 2 * 32 * 8

    def test_scalar_future_gates_start(self, gpu2):
        inp = gpu2.create_region((10,), np.float64, data=np.zeros(10))
        out = gpu2.create_region((10,), np.float64)
        late = Future(3.0, ready_time=1.0)  # one simulated second away

        def add_scalar(ctx):
            ctx.view("out")[...] = ctx.view("inp") + ctx.scalar("c")

        gpu2.launch(
            TaskLaunch(
                "addc",
                [
                    Requirement("out", out, Tiling.create(out, 2), Privilege.WRITE_DISCARD),
                    Requirement("inp", inp, Tiling.create(inp, 2), Privilege.READ),
                ],
                add_scalar,
                scalars={"c": late},
            )
        )
        assert out.data[0] == 3.0
        assert gpu2.elapsed() >= 1.0

    def test_launch_overhead_accumulates(self):
        machine = laptop()
        slow = Runtime(
            machine.scope(ProcessorKind.GPU, 1),
            RuntimeConfig.legate(launch_overhead=1e-3),
        )
        fast = Runtime(
            machine.scope(ProcessorKind.GPU, 1),
            RuntimeConfig.cupy(launch_overhead=1e-6),
        )
        for rt in (slow, fast):
            inp = rt.create_region((8,), np.float64, data=np.ones(8))
            out = rt.create_region((8,), np.float64)
            for _ in range(10):
                launch_double(rt, out, inp, colors=1)
        assert slow.elapsed() > fast.elapsed() * 50

    def test_data_scale_magnifies_time(self):
        machine = laptop()
        times = []
        for scale in (1.0, 1000.0):
            rt = Runtime(
                machine.scope(ProcessorKind.GPU, 2),
                RuntimeConfig.legate(data_scale=scale, launch_overhead=0.0),
            )
            inp = rt.create_region((1000,), np.float64, data=np.ones(1000))
            out = rt.create_region((1000,), np.float64)
            launch_double(rt, out, inp)
            times.append(rt.elapsed())
        assert times[1] > times[0]


class TestReduceFold:
    def test_scatter_add_folds_to_owners(self, gpu2):
        rt = gpu2
        y = rt.create_region((8,), np.float64)
        contrib = rt.create_region((8,), np.float64, data=np.ones(8))

        def scatter(ctx):
            # Both shards add into the whole of y (aliased REDUCE).
            ctx.arrays["y"][...] += ctx.view("c").sum() / 8.0

        rt.launch(
            TaskLaunch(
                "scatter",
                [
                    Requirement("y", y, Replicate(y, 2), Privilege.REDUCE),
                    Requirement("c", contrib, Tiling.create(contrib, 2), Privilege.READ),
                ],
                scatter,
            )
        )
        np.testing.assert_allclose(y.data, np.ones(8))
        # Fold copies crossed the GPU-GPU link.
        assert rt.profiler.total_copies("nvlink") > 0


class TestSyncClock:
    def test_trailing_copy_counted_by_sync_points(self, gpu2):
        """elapsed()/barrier() must see channel occupancy: a run whose
        final operation is a copy (an async checkpoint snapshot here)
        is longer than max(issue, procs) says."""
        rt = gpu2
        inp = rt.create_region((4096,), np.float64, data=np.arange(4096.0))
        out = rt.create_region((4096,), np.float64)
        launch_double(rt, out, inp)
        rt.checkpoint()  # snapshot of `out` drains on the channels
        legacy = max(rt.issue_time, max(rt._proc_busy.values()))
        horizon = rt.machine.channel_horizon()
        assert horizon > legacy
        assert rt.elapsed() == horizon
        assert rt.barrier() == horizon
        assert rt.issue_time == horizon  # barrier waited for the drain


class TestAllreduce:
    def test_value_correct(self, gpu2):
        fut = gpu2.allreduce([1.0, 2.0, 3.0], [0.0, 0.0, 0.0])
        assert fut.value == 6.0

    def test_single_partial_is_cheap(self, gpu2):
        f1 = gpu2.allreduce([5.0], [1.0])
        assert f1.value == 5.0
        assert f1.ready_time == pytest.approx(
            1.0 + gpu2.config.allreduce_base_overhead
        )

    def test_latency_grows_with_participants(self):
        machine = summit(nodes=8)
        rt = Runtime(machine.scope(ProcessorKind.GPU, 48), RuntimeConfig.legate())
        t2 = rt.allreduce([1.0] * 2, [0.0] * 2).ready_time
        t48 = rt.allreduce([1.0] * 48, [0.0] * 48).ready_time
        assert t48 > t2

    def test_ops(self, gpu2):
        assert gpu2.allreduce([3.0, 1.0], [0, 0], op="max").value == 3.0
        assert gpu2.allreduce([3.0, 1.0], [0, 0], op="min").value == 1.0
        with pytest.raises(ValueError):
            gpu2.allreduce([1.0], [0.0], op="median")

    def test_wait_advances_issue_clock(self, gpu2):
        fut = Future(1.0, ready_time=42.0)
        assert gpu2.wait(fut) == 1.0
        assert gpu2.issue_time >= 42.0


class TestFill:
    def test_fill_value(self, gpu2):
        r = gpu2.create_region((10,), np.float64)
        gpu2.fill(r, 7.5)
        gpu2.barrier()  # fills are fusible: flush the deferred window
        np.testing.assert_array_equal(r.data, np.full(10, 7.5))
        assert gpu2.profiler.fills == 1


class TestRegionLifecycle:
    def test_free_region_recycles_instances(self, gpu2):
        inp = gpu2.create_region((100,), np.float64, data=np.ones(100))
        out = gpu2.create_region((100,), np.float64)
        launch_double(gpu2, out, inp)
        mem = gpu2.scope.processors[0].memory
        state = gpu2.instances.state(mem)
        before = state.used_bytes
        assert before > 0
        out.destroy()
        inp.destroy()
        # Bytes stay charged but the allocations are pooled for reuse.
        assert state.instances.get(out.uid, []) == []
        assert len(state.pool) == 2
        # A new same-size region claims a pooled allocation: no growth.
        again = gpu2.create_region((100,), np.float64)
        launch_double(gpu2, again, again, colors=2)
        assert state.used_bytes <= before
