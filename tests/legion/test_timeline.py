"""Timeline profiler: span conservation, critical path, export, gating."""

import json

import pytest

import repro.numeric as rnp
import repro.sparse as sp
from repro.apps.poisson import poisson2d_scipy
from repro.legion import Runtime, RuntimeConfig
from repro.legion.runtime import runtime_scope
from repro.legion.timeline import (
    BUSY_CATEGORIES,
    Timeline,
    active_timelines,
    drain_timelines,
    profile_default,
    set_profile_default,
)
from repro.machine import ProcessorKind, summit

GRID = 16
ITERS = 4


@pytest.fixture(autouse=True)
def _clean_registry():
    drain_timelines()
    yield
    drain_timelines()


def _cg(profile, procs=2, trailing_checkpoint=False, **cfg):
    """A small profiled CG solve; returns (rt, machine, elapsed)."""
    machine = summit(nodes=1)
    rt = Runtime(
        machine.scope(ProcessorKind.GPU, procs, per_node=min(procs, 2)),
        RuntimeConfig.legate(profile=profile, **cfg),
    )
    with runtime_scope(rt):
        A = sp.csr_matrix(poisson2d_scipy(GRID))
        b = rnp.ones(GRID * GRID)
        sp.linalg.cg(A, b, rtol=0.0, maxiter=ITERS)
        if trailing_checkpoint:
            rt.checkpoint()
        elapsed = rt.elapsed()
    return rt, machine, elapsed


class TestGating:
    def test_off_by_default(self):
        rt, _, _ = _cg(profile=False)
        assert rt.timeline is None
        assert active_timelines() == []

    def test_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        assert profile_default() is False
        monkeypatch.setenv("REPRO_PROFILE", "1")
        assert profile_default() is True
        monkeypatch.setenv("REPRO_PROFILE", "0")
        assert profile_default() is False

    def test_set_default_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "0")
        previous = set_profile_default(True)
        try:
            assert profile_default() is True
            rt, _, _ = _cg(profile=RuntimeConfig.legate().profile)
            assert rt.timeline is not None
        finally:
            set_profile_default(previous)
        assert profile_default() is False

    def test_profiling_changes_nothing_modeled(self):
        """Same workload with profiling on and off: identical counters
        and bit-identical modeled times (acceptance criterion)."""
        rt_off, _, t_off = _cg(profile=False)
        rt_on, _, t_on = _cg(profile=True)
        assert t_on == t_off
        assert rt_on.profiler.tasks_launched == rt_off.profiler.tasks_launched
        assert rt_on.profiler.copy_count == rt_off.profiler.copy_count
        assert rt_on.profiler.copy_bytes == rt_off.profiler.copy_bytes
        assert (
            rt_on.profiler.launch_overhead_seconds
            == rt_off.profiler.launch_overhead_seconds
        )

    def test_registry_tracks_profiling_runtimes(self):
        rt, _, _ = _cg(profile=True)
        assert rt.timeline in active_timelines()
        drained = drain_timelines()
        assert rt.timeline in drained
        assert active_timelines() == []


class TestConservation:
    def test_busy_spans_never_overlap(self):
        """Per resource, the sum of busy-span durations equals their
        union: no resource is ever double-booked."""
        rt, _, _ = _cg(profile=True)
        usage = rt.timeline.utilization()
        assert usage  # sanity: something was recorded
        for resource, u in usage.items():
            assert u.busy == pytest.approx(u.busy_sum, abs=0.0), resource

    def test_channel_spans_match_occupancy(self):
        """The latest span finish per channel equals Channel.busy_until."""
        rt, machine, _ = _cg(profile=True)
        by_resource = {}
        for span in rt.timeline.spans:
            if span.category in BUSY_CATEGORIES:
                by_resource.setdefault(span.resource, []).append(span.finish)
        for chan in machine.channels():
            if chan.busy_until == 0.0:
                continue
            assert max(by_resource[chan.name]) == chan.busy_until

    def test_proc_spans_match_busy_clock(self):
        rt, _, _ = _cg(profile=True)
        finishes = {}
        for span in rt.timeline.spans:
            if span.category in ("task", "fold"):
                finishes.setdefault(span.resource, []).append(span.finish)
        for proc in rt.scope.processors:
            label = f"{proc.kind.value}[{proc.uid}]"
            assert max(finishes[label]) == rt._proc_busy[proc.uid]

    def test_every_span_within_horizon(self):
        rt, _, elapsed = _cg(profile=True)
        for span in rt.timeline.spans:
            assert 0.0 <= span.start <= span.finish <= elapsed


class TestCriticalPath:
    def test_path_equals_elapsed_bitwise(self):
        rt, _, elapsed = _cg(profile=True)
        path = rt.timeline.critical_path(elapsed)
        assert path.start == 0.0
        assert path.finish == elapsed
        assert path.length == elapsed  # bit-for-bit, no re-summation
        for a, b in zip(path.steps, path.steps[1:]):
            assert a.finish == b.start  # contiguous by construction

    def test_saved_horizon_used_offline(self, tmp_path):
        rt, _, elapsed = _cg(profile=True)
        log = tmp_path / "run.spans.json"
        rt.timeline.save(str(log))
        loaded = Timeline.load(str(log))
        assert loaded.horizon == elapsed
        assert loaded.critical_path().length == elapsed

    def test_synthetic_wait_attribution(self):
        tl = Timeline("t")
        tl.record("task", "gpu[0]", "a", 0.0, 1.0)
        tl.record("task", "gpu[0]", "b", 1.5, 2.0)
        tl.record("evict", "fb[0]", "zero-width", 2.0, 2.0)  # never on path
        path = tl.critical_path(2.0)
        kinds = [s.kind for s in path.steps]
        assert kinds == ["task", "wait", "task"]
        assert path.time_by_kind() == {"task": 1.5, "wait": 0.5}
        assert path.length == 2.0

    def test_latest_start_breaks_finish_ties(self):
        tl = Timeline("t")
        tl.record("copy", "nic[0]", "long", 0.0, 2.0)
        tl.record("task", "gpu[0]", "short", 1.5, 2.0)
        path = tl.critical_path(2.0)
        assert path.steps[-1].name == "short"

    def test_empty_timeline(self):
        tl = Timeline("t")
        assert tl.critical_path().steps == []
        assert tl.critical_path().length == 0.0


class TestExport:
    def test_chrome_trace_well_formed(self):
        rt, _, _ = _cg(profile=True)
        trace = json.loads(json.dumps(rt.timeline.chrome_trace()))
        events = trace["traceEvents"]
        assert events
        assert all(e["ph"] in ("X", "M") for e in events)
        durable = [e for e in events if e["ph"] == "X"]
        assert len(durable) == len(rt.timeline.spans)
        assert all("ts" in e and "dur" in e and e["dur"] >= 0 for e in durable)
        names = {
            e["args"]["name"] for e in events if e.get("name") == "thread_name"
        }
        assert names == set(rt.timeline.resources())

    def test_save_load_round_trip(self, tmp_path):
        rt, _, _ = _cg(profile=True)
        log = tmp_path / "run.spans.json"
        rt.timeline.save(str(log))
        loaded = Timeline.load(str(log))
        assert loaded.name == rt.timeline.name
        assert loaded.meta == rt.timeline.meta
        assert loaded.spans == rt.timeline.spans
        assert loaded.horizon == rt.timeline.horizon

    def test_load_rejects_unknown_version(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"version": 99, "spans": []}))
        with pytest.raises(ValueError, match="version"):
            Timeline.load(str(bad))

    def test_ascii_summary_renders(self):
        rt, _, _ = _cg(profile=True)
        text = rt.timeline.format_ascii()
        assert "critical path" in text
        assert "resource" in text
        for proc in rt.scope.processors:
            assert f"{proc.kind.value}[{proc.uid}]" in text


class TestClockFix:
    def test_trailing_copy_extends_elapsed(self):
        """A run ending in a copy (async checkpoint snapshot) reports a
        strictly larger elapsed() than the pre-fix max(issue, procs)."""
        machine = summit(nodes=1)
        rt = Runtime(
            machine.scope(ProcessorKind.GPU, 2, per_node=2),
            RuntimeConfig.legate(profile=True),
        )
        with runtime_scope(rt):
            A = sp.csr_matrix(poisson2d_scipy(GRID))
            b = rnp.ones(GRID * GRID)
            sp.linalg.cg(A, b, rtol=0.0, maxiter=ITERS)
            rt.checkpoint()  # final operation: snapshot drains on channels
            legacy = max(rt.issue_time, max(rt._proc_busy.values()))
            elapsed = rt.elapsed()
        assert elapsed > legacy
        assert elapsed == machine.channel_horizon()
        # The channel drain still satisfies every timeline invariant.
        path = rt.timeline.critical_path(elapsed)
        assert path.length == elapsed
        assert path.steps[-1].kind == "checkpoint"

    def test_barrier_advances_issue_clock_past_channels(self):
        rt, machine, _ = _cg(profile=False, trailing_checkpoint=True)
        with runtime_scope(rt):
            t = rt.barrier()
        assert t == rt.issue_time
        assert t >= machine.channel_horizon()
