"""Graceful OOM degradation: LRU eviction + dirty spill to sysmem."""

import numpy as np
import pytest

import repro.numeric as rnp
from repro.legion import OutOfMemoryError, Runtime, RuntimeConfig
from repro.legion.runtime import runtime_scope
from repro.machine import Machine, ProcessorKind
from repro.machine.model import MachineConfig


def tiny_gpu_machine(fb_mb: float = 1.0) -> Machine:
    return Machine(
        MachineConfig(
            nodes=1,
            sockets_per_node=1,
            gpus_per_node=2,
            gpu_memory=int(fb_mb * 2**20),
            sysmem_per_node=2 * 2**30,
        )
    )


def _over_capacity_workload(rt):
    """~1.7 MB of live data on a 1 MB framebuffer, touched in phases.

    Barriers split the fusion window so each phase's fused group pins
    only its own regions — a fused group's union footprint must be
    resident (see docs/ARCHITECTURE.md, Resilience).
    """
    n = 30_000  # 240 KB per array
    arrays = []
    for i in range(6):
        arrays.append(rnp.full(n, float(i + 1)))
        rt.barrier()
    total = rnp.zeros(n)
    rt.barrier()
    for a in arrays:
        total = total + a
        rt.barrier()
    return total, n


class TestSpill:
    def test_over_capacity_run_completes_exactly(self):
        machine = tiny_gpu_machine(fb_mb=1.0)
        rt = Runtime(machine.scope(ProcessorKind.GPU, 1), RuntimeConfig.legate())
        with runtime_scope(rt):
            total, n = _over_capacity_workload(rt)
            out = total.to_numpy().copy()
        np.testing.assert_array_equal(out, np.full(n, 21.0))
        prof = rt.profiler
        assert prof.evictions + prof.spills > 0
        assert prof.eviction_bytes + prof.spill_bytes > 0

    def test_spill_disabled_still_raises(self):
        machine = tiny_gpu_machine(fb_mb=1.0)
        rt = Runtime(
            machine.scope(ProcessorKind.GPU, 1),
            RuntimeConfig.legate(spill=False),
        )
        with runtime_scope(rt), pytest.raises(OutOfMemoryError):
            _over_capacity_workload(rt)

    def test_oom_error_is_annotated(self):
        machine = tiny_gpu_machine(fb_mb=0.5)
        rt = Runtime(
            machine.scope(ProcessorKind.GPU, 1),
            RuntimeConfig.legate(spill=False),
        )
        with runtime_scope(rt):
            with pytest.raises(OutOfMemoryError) as err:
                rnp.zeros(10_000_000)
                rt.barrier()
        exc = err.value
        assert exc.region_uid is not None
        assert exc.rect is not None
        assert exc.task is not None
        described = exc.describe()
        assert "framebuffer" in described
        assert exc.task in described

    def test_spill_cannot_shrink_single_oversized_region(self):
        """Pressure relief frees other instances, not physics: a region
        larger than the whole framebuffer still OOMs, annotated."""
        machine = tiny_gpu_machine(fb_mb=0.5)
        rt = Runtime(machine.scope(ProcessorKind.GPU, 1), RuntimeConfig.legate())
        with runtime_scope(rt):
            with pytest.raises(OutOfMemoryError):
                rnp.zeros(10_000_000)
                rt.barrier()

    def test_spilled_data_survives_roundtrip(self):
        """Data pushed out to sysmem under pressure stages back correctly."""
        machine = tiny_gpu_machine(fb_mb=1.0)
        rt = Runtime(machine.scope(ProcessorKind.GPU, 1), RuntimeConfig.legate())
        with runtime_scope(rt):
            total, n = _over_capacity_workload(rt)
            # Re-read every original-phase value after the pressure storm.
            again = total * 1.0
            rt.barrier()
            out = again.to_numpy().copy()
        np.testing.assert_array_equal(out, np.full(n, 21.0))

    def test_presets_pin_spill_off(self):
        from repro.harness.config import paper_legate

        assert RuntimeConfig.legate().spill is True
        assert RuntimeConfig.cupy().spill is False
        assert RuntimeConfig.scipy().spill is False
        assert RuntimeConfig.petsc().spill is False
        assert paper_legate().spill is False
