"""Chaos injection + recovery: determinism, retry, loss replay."""

import numpy as np
import pytest

import repro.numeric as rnp
import repro.sparse as sp
from repro.apps.poisson import poisson2d_scipy
from repro.legion import FaultError, Runtime, RuntimeConfig
from repro.legion.chaos import ChaosConfig, ChaosInjector, LossSchedule, chaos_default
from repro.legion.runtime import runtime_scope
from repro.machine import ProcessorKind, summit

GRID = 16
ITERS = 4


def _cg_run(chaos, procs=2, nodes=1, profile=False, validate=False):
    """One small CG solve under a chaos config; returns (x, rt, t0, t1)."""
    machine = summit(nodes=nodes)
    rt = Runtime(
        machine.scope(ProcessorKind.GPU, procs, per_node=min(procs, 2)),
        RuntimeConfig.legate(chaos=chaos, profile=profile, validate=validate),
    )
    with runtime_scope(rt):
        A = sp.csr_matrix(poisson2d_scipy(GRID))
        b = rnp.ones(GRID * GRID)
        sp.linalg.cg(A, b, rtol=0.0, maxiter=1)  # warm-up
        t0 = rt.barrier()
        x, _ = sp.linalg.cg(A, b, rtol=0.0, maxiter=ITERS)
        t1 = rt.barrier()
        out = x.to_numpy().copy()
    return out, rt, t0, t1


class TestConfig:
    def test_parse_full_spec(self):
        cfg = ChaosConfig.parse(
            "seed:7, copy:0.02, alloc:0.01, retries:3, backoff:1e-5,"
            "ckpt:32, lose-gpu:1@0.004, lose-node:2@0.01"
        )
        assert cfg.seed == 7
        assert cfg.copy_fault_rate == 0.02
        assert cfg.alloc_fault_rate == 0.01
        assert cfg.max_retries == 3
        assert cfg.backoff_base == 1e-5
        assert cfg.checkpoint_every == 32
        assert cfg.losses == (
            LossSchedule("gpu", 1, 0.004),
            LossSchedule("node", 2, 0.01),
        )
        assert cfg.has_losses

    @pytest.mark.parametrize(
        "spec",
        ["bogus", "copy:2.0", "retries:0", "lose-gpu:1", "lose-disk:0@1"],
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            ChaosConfig.parse(spec)

    def test_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHAOS", raising=False)
        assert chaos_default() is None
        monkeypatch.setenv("REPRO_CHAOS", "seed:3,copy:0.1")
        cfg = chaos_default()
        assert cfg is not None and cfg.seed == 3 and cfg.copy_fault_rate == 0.1
        monkeypatch.setenv("REPRO_CHAOS", "0")
        assert chaos_default() is None

    def test_injector_deterministic(self):
        cfg = ChaosConfig(seed=11, copy_fault_rate=0.3, alloc_fault_rate=0.2)
        a, b = ChaosInjector(cfg), ChaosInjector(cfg)
        draws_a = [(a.copy_fault(), a.alloc_fault()) for _ in range(200)]
        draws_b = [(b.copy_fault(), b.alloc_fault()) for _ in range(200)]
        assert draws_a == draws_b
        assert a.faults_injected == b.faults_injected > 0

    def test_losses_delivered_in_time_order(self):
        cfg = ChaosConfig(
            losses=(LossSchedule("gpu", 0, 2.0), LossSchedule("gpu", 1, 1.0))
        )
        inj = ChaosInjector(cfg)
        assert inj.take_losses(0.5) == []
        assert [l.target for l in inj.take_losses(1.5)] == [1]
        assert [l.target for l in inj.take_losses(5.0)] == [0]
        assert inj.pending_losses == ()


class TestResilience2Config:
    def test_parse_new_keys_with_equals_separator(self):
        cfg = ChaosConfig.parse("replicas=2, heartbeat=1e-4, detect=5e-5, ckpt=8")
        assert cfg.ckpt_replicas == 2
        assert cfg.heartbeat_period == 1e-4
        assert cfg.detection_timeout == 5e-5
        assert cfg.checkpoint_every == 8

    def test_parse_new_keys_with_colon_separator(self):
        cfg = ChaosConfig.parse("replicas:3, heartbeat:2e-4, detect:1e-4")
        assert cfg.ckpt_replicas == 3
        assert cfg.heartbeat_period == 2e-4
        assert cfg.detection_timeout == 1e-4

    def test_mixed_separators_and_loss_at_sign_still_parse(self):
        cfg = ChaosConfig.parse("replicas=2, lose-node:0@0.004, ckpt:8")
        assert cfg.ckpt_replicas == 2
        assert cfg.losses == (LossSchedule("node", 0, 0.004),)

    def test_unknown_keys_rejected_naming_the_token(self):
        # Unknown keys must never be silently dropped — the error names
        # the offending token so a typo'd REPRO_CHAOS cannot quietly
        # disable the fault schedule it was meant to enable.
        with pytest.raises(ValueError, match="frobnicate"):
            ChaosConfig.parse("replicas=2, frobnicate=1")
        with pytest.raises(ValueError, match="replica"):
            ChaosConfig.parse("replica=2")  # singular: not a key

    @pytest.mark.parametrize(
        "spec", ["replicas=0", "heartbeat=-1", "detect=-0.5"]
    )
    def test_invalid_values_rejected(self, spec):
        with pytest.raises(ValueError):
            ChaosConfig.parse(spec)


class TestTransientFaults:
    def test_copy_faults_bitwise_identical(self):
        baseline, _, _, _ = _cg_run(None)
        chaos = ChaosConfig(seed=7, copy_fault_rate=0.05)
        faulty, rt, _, _ = _cg_run(chaos)
        np.testing.assert_array_equal(baseline, faulty)
        assert rt.profiler.retries == sum(rt.profiler.faults_injected.values())

    def test_alloc_faults_bitwise_identical_and_charged(self):
        baseline, _, t0, t1 = _cg_run(None)
        chaos = ChaosConfig(seed=7, alloc_fault_rate=0.05)
        faulty, rt, f0, f1 = _cg_run(chaos)
        np.testing.assert_array_equal(baseline, faulty)
        assert rt.profiler.faults_injected["alloc"] > 0
        # Backoff is charged on the simulated clock.
        assert rt.profiler.backoff_seconds > 0
        assert f1 - f0 >= t1 - t0

    def test_exhausted_retries_raise_fault_error(self):
        chaos = ChaosConfig(seed=0, copy_fault_rate=0.99, max_retries=2)
        with pytest.raises(FaultError):
            _cg_run(chaos)


class TestLossRecovery:
    def test_gpu_loss_recovers_bitwise(self):
        baseline, _, t0, t1 = _cg_run(None)
        chaos = ChaosConfig(
            checkpoint_every=16,
            losses=(LossSchedule("gpu", 1, (t0 + t1) / 2),),
        )
        recovered, rt, _, _ = _cg_run(chaos)
        np.testing.assert_array_equal(baseline, recovered)
        assert rt.profiler.faults_injected["gpu-loss"] == 1
        assert rt.profiler.checkpoints > 0
        assert rt.profiler.tasks_reexecuted > 0

    def test_node_loss_recovers_bitwise(self):
        baseline, _, t0, t1 = _cg_run(None, procs=2, nodes=2)
        chaos = ChaosConfig(
            checkpoint_every=16,
            losses=(LossSchedule("node", 1, (t0 + t1) / 2),),
        )
        recovered, rt, _, _ = _cg_run(chaos, procs=2, nodes=2)
        np.testing.assert_array_equal(baseline, recovered)
        assert rt.profiler.faults_injected["node-loss"] == 1
        assert rt.profiler.tasks_reexecuted > 0

    def test_recovery_charges_delay(self):
        _, _, t0, t1 = _cg_run(None)
        chaos = ChaosConfig(
            checkpoint_every=16,
            recovery_delay=5e-3,
            losses=(LossSchedule("gpu", 1, (t0 + t1) / 2),),
        )
        _, _, f0, f1 = _cg_run(chaos)
        assert f1 - f0 >= (t1 - t0) + 5e-3

    def test_losing_checkpoint_store_is_fatal(self):
        _, _, t0, t1 = _cg_run(None)
        chaos = ChaosConfig(
            checkpoint_every=16,
            losses=(LossSchedule("node", 0, (t0 + t1) / 2),),
        )
        with pytest.raises(FaultError, match="checkpoint store"):
            _cg_run(chaos)

    def test_denser_checkpoints_shorten_replay(self):
        """The journal resets each epoch: more checkpoints, less replay."""
        _, _, t0, t1 = _cg_run(None)
        t_mid = (t0 + t1) / 2
        reexec = {}
        for every in (12, 24):
            chaos = ChaosConfig(
                checkpoint_every=every,
                losses=(LossSchedule("gpu", 1, t_mid),),
            )
            _, rt, _, _ = _cg_run(chaos)
            reexec[every] = rt.profiler.tasks_reexecuted
        assert 0 < reexec[12] < reexec[24]


class TestTimelineComposition:
    """Chaos injection must stay visible — and conserved — on the timeline."""

    def _profiled_run(self, chaos, procs=2, nodes=1):
        from repro.legion.timeline import drain_timelines

        drain_timelines()
        try:
            return _cg_run(chaos, procs=procs, nodes=nodes, profile=True)
        finally:
            drain_timelines()

    def test_copy_faults_appear_as_retry_backoff_subspans(self):
        chaos = ChaosConfig(seed=7, copy_fault_rate=0.05)
        _, rt, _, _ = self._profiled_run(chaos)
        retries = [s for s in rt.timeline.spans if s.category == "retry"]
        backoffs = [s for s in rt.timeline.spans if s.category == "backoff"]
        # One retry + one backoff span per injected copy fault (every
        # intra-node path is a single channel).
        assert len(retries) == rt.profiler.faults_injected["copy"] > 0
        assert len(backoffs) == len(retries)
        for retry, backoff in zip(retries, backoffs):
            # The doomed attempt holds the wire, then the pause begins.
            assert retry.finish == backoff.start
            assert backoff.duration > 0

    def test_span_conservation_under_faults(self):
        chaos = ChaosConfig(seed=7, copy_fault_rate=0.05, alloc_fault_rate=0.05)
        _, rt, _, _ = self._profiled_run(chaos)
        assert rt.profiler.retries > 0
        usage = rt.timeline.utilization()
        for resource, u in usage.items():
            assert u.busy == pytest.approx(u.busy_sum, abs=0.0), resource

    def test_critical_path_exact_under_faults(self):
        chaos = ChaosConfig(seed=7, copy_fault_rate=0.05)
        _, rt, _, _ = self._profiled_run(chaos)
        with runtime_scope(rt):
            elapsed = rt.elapsed()
        path = rt.timeline.critical_path(elapsed)
        assert path.start == 0.0
        assert path.length == elapsed
        for a, b in zip(path.steps, path.steps[1:]):
            assert a.finish == b.start

    def test_loss_recovery_visible_on_timeline(self):
        _, _, t0, t1 = _cg_run(None)
        chaos = ChaosConfig(
            checkpoint_every=16,
            recovery_delay=5e-3,
            losses=(LossSchedule("gpu", 1, (t0 + t1) / 2),),
        )
        _, rt, _, _ = self._profiled_run(chaos)
        categories = {s.category for s in rt.timeline.spans}
        assert "recovery" in categories
        assert "checkpoint" in categories
        replayed = [
            s for s in rt.timeline.spans
            if s.category == "task" and s.name.startswith("replay:")
        ]
        assert len(replayed) > 0
        # Conservation still holds through checkpoint + replay traffic.
        for resource, u in rt.timeline.utilization().items():
            assert u.busy == pytest.approx(u.busy_sum, abs=0.0), resource


class TestReplicatedStores:
    """Resilience 2.0: k-way replicated checkpoint stores."""

    def test_replication_traffic_reaches_second_domain(self):
        from repro.analysis.events import CopyEvent
        from repro.legion.resilience import place_stores

        chaos = ChaosConfig(checkpoint_every=16, ckpt_replicas=2)
        _, rt, _, _ = _cg_run(chaos, procs=2, nodes=2, validate=True)
        assert rt.profiler.replication_bytes > 0
        stores = place_stores(rt.machine, 2)
        assert [m.node for m in stores] == [0, 1]
        # Checkpoint copies land in BOTH stores' memories — replication
        # rides the modeled cross-node channels, not a free broadcast.
        ckpt_dsts = {
            ev.dst_memory
            for ev in rt.event_log.events
            if isinstance(ev, CopyEvent) and ev.why == "checkpoint"
        }
        assert {m.uid for m in stores} <= ckpt_dsts

    def test_replication_costs_more_than_single_store(self):
        single = ChaosConfig(checkpoint_every=16, ckpt_replicas=1)
        double = ChaosConfig(checkpoint_every=16, ckpt_replicas=2)
        _, rt1, _, _ = _cg_run(single, procs=2, nodes=2)
        _, rt2, _, _ = _cg_run(double, procs=2, nodes=2)
        assert rt1.profiler.replication_bytes == 0
        assert rt2.profiler.replication_bytes > 0
        assert rt2.profiler.checkpoint_bytes > rt1.profiler.checkpoint_bytes

    def test_replicas2_survives_node0_loss_bitwise(self):
        """The headline: losing the primary store is no longer fatal."""
        from repro.analysis.checker import check_log

        baseline, _, t0, t1 = _cg_run(None, procs=2, nodes=2)
        chaos = ChaosConfig(
            checkpoint_every=16,
            ckpt_replicas=2,
            losses=(LossSchedule("node", 0, (t0 + t1) / 2),),
        )
        recovered, rt, _, _ = _cg_run(chaos, procs=2, nodes=2, validate=True)
        np.testing.assert_array_equal(baseline, recovered)
        assert rt.profiler.faults_injected["node-loss"] == 1
        assert rt.profiler.recoveries == 1
        assert check_log(rt.event_log) == []

    def test_replicas1_node0_loss_stays_fatal(self):
        """PR 4's unconditional failure is preserved at replicas=1."""
        _, _, t0, t1 = _cg_run(None, procs=2, nodes=2)
        chaos = ChaosConfig(
            checkpoint_every=16,
            ckpt_replicas=1,
            losses=(LossSchedule("node", 0, (t0 + t1) / 2),),
        )
        with pytest.raises(FaultError, match="checkpoint store"):
            _cg_run(chaos, procs=2, nodes=2)

    def test_losing_every_store_domain_is_fatal(self):
        _, _, t0, t1 = _cg_run(None, procs=2, nodes=2)
        t_mid = (t0 + t1) / 2
        chaos = ChaosConfig(
            checkpoint_every=16,
            ckpt_replicas=2,
            losses=(
                LossSchedule("node", 0, t_mid),
                LossSchedule("node", 1, t_mid),
            ),
        )
        with pytest.raises(FaultError, match="fault domain"):
            _cg_run(chaos, procs=2, nodes=2)


class TestFailureDetection:
    """Modeled detection: losses are suspected, then confirmed, on the clock."""

    def test_detection_latency_charged_and_counted(self):
        _, _, t0, t1 = _cg_run(None)
        t_mid = (t0 + t1) / 2
        base = dict(checkpoint_every=16, losses=(LossSchedule("gpu", 1, t_mid),))
        _, rt0, i0, i1 = _cg_run(ChaosConfig(**base))
        slow = ChaosConfig(heartbeat_period=1e-3, detection_timeout=2e-3, **base)
        _, rt, d0, d1 = _cg_run(slow)
        assert rt.profiler.detections == 1
        # Latency >= the timeout (plus the wait for a heartbeat tick),
        # and the stall is charged on the simulated clock.
        assert rt.profiler.detection_seconds >= 2e-3
        assert (d1 - d0) >= (i1 - i0) + 2e-3

    def test_detection_event_recorded_with_ordered_transitions(self):
        from repro.analysis.events import DetectionEvent

        _, _, t0, t1 = _cg_run(None)
        t_mid = (t0 + t1) / 2
        chaos = ChaosConfig(
            checkpoint_every=16,
            heartbeat_period=1e-3,
            detection_timeout=5e-4,
            losses=(LossSchedule("gpu", 1, t_mid),),
        )
        _, rt, _, _ = _cg_run(chaos, validate=True)
        dets = [e for e in rt.event_log.events if isinstance(e, DetectionEvent)]
        assert len(dets) == 1
        (det,) = dets
        assert det.fault == "gpu-loss" and det.target == 1
        assert det.at <= det.suspected <= det.confirmed
        assert det.confirmed == pytest.approx(det.suspected + 5e-4)

    def test_detection_spans_on_timeline_conserve(self):
        from repro.legion.timeline import drain_timelines

        _, _, t0, t1 = _cg_run(None)
        chaos = ChaosConfig(
            checkpoint_every=16,
            heartbeat_period=1e-3,
            detection_timeout=5e-4,
            losses=(LossSchedule("gpu", 1, (t0 + t1) / 2),),
        )
        drain_timelines()
        try:
            _, rt, _, _ = _cg_run(chaos, profile=True)
        finally:
            drain_timelines()
        detection = [s for s in rt.timeline.spans if s.category == "detection"]
        assert detection, "detector transitions must be visible"
        # Detection spans are annotations (non-busy): span conservation
        # over busy categories still holds exactly.
        for resource, u in rt.timeline.utilization().items():
            assert u.busy == pytest.approx(u.busy_sum, abs=0.0), resource


class TestNestedFaults:
    """Re-entrant recovery: losses during replay and checkpoint drains."""

    def test_loss_during_replay_recovers_bitwise(self):
        baseline, _, t0, t1 = _cg_run(None, procs=2, nodes=2)
        t_mid = (t0 + t1) / 2
        # recovery_delay defaults to 1e-3: the second loss lands inside
        # the first recovery's stall + journal replay window.
        chaos = ChaosConfig(
            checkpoint_every=16,
            ckpt_replicas=2,
            losses=(
                LossSchedule("node", 0, t_mid),
                LossSchedule("gpu", 1, t_mid + 5e-4),
            ),
        )
        recovered, rt, _, _ = _cg_run(chaos, procs=2, nodes=2)
        np.testing.assert_array_equal(baseline, recovered)
        assert rt.profiler.recoveries >= 2

    def test_loss_during_checkpoint_drain_recovers_bitwise(self):
        from repro.analysis.checker import check_log

        baseline, _, t0, t1 = _cg_run(None, procs=2, nodes=2)
        # Dense epochs: with losses spread across the solve window at
        # least one is delivered at checkpoint entry (the drain), which
        # must recover first and then snapshot the recovered state.
        chaos = ChaosConfig(
            checkpoint_every=8,
            ckpt_replicas=2,
            losses=(
                LossSchedule("gpu", 1, t0 + 0.3 * (t1 - t0)),
                LossSchedule("gpu", 0, t0 + 0.7 * (t1 - t0)),
            ),
        )
        recovered, rt, _, _ = _cg_run(chaos, procs=2, nodes=2, validate=True)
        np.testing.assert_array_equal(baseline, recovered)
        assert rt.profiler.recoveries >= 2
        assert rt.profiler.checkpoints > 1
        assert check_log(rt.event_log) == []
