"""Chaos injection + recovery: determinism, retry, loss replay."""

import numpy as np
import pytest

import repro.numeric as rnp
import repro.sparse as sp
from repro.apps.poisson import poisson2d_scipy
from repro.legion import FaultError, Runtime, RuntimeConfig
from repro.legion.chaos import ChaosConfig, ChaosInjector, LossSchedule, chaos_default
from repro.legion.runtime import runtime_scope
from repro.machine import ProcessorKind, summit

GRID = 16
ITERS = 4


def _cg_run(chaos, procs=2, nodes=1, profile=False):
    """One small CG solve under a chaos config; returns (x, rt, t0, t1)."""
    machine = summit(nodes=nodes)
    rt = Runtime(
        machine.scope(ProcessorKind.GPU, procs, per_node=min(procs, 2)),
        RuntimeConfig.legate(chaos=chaos, profile=profile),
    )
    with runtime_scope(rt):
        A = sp.csr_matrix(poisson2d_scipy(GRID))
        b = rnp.ones(GRID * GRID)
        sp.linalg.cg(A, b, rtol=0.0, maxiter=1)  # warm-up
        t0 = rt.barrier()
        x, _ = sp.linalg.cg(A, b, rtol=0.0, maxiter=ITERS)
        t1 = rt.barrier()
        out = x.to_numpy().copy()
    return out, rt, t0, t1


class TestConfig:
    def test_parse_full_spec(self):
        cfg = ChaosConfig.parse(
            "seed:7, copy:0.02, alloc:0.01, retries:3, backoff:1e-5,"
            "ckpt:32, lose-gpu:1@0.004, lose-node:2@0.01"
        )
        assert cfg.seed == 7
        assert cfg.copy_fault_rate == 0.02
        assert cfg.alloc_fault_rate == 0.01
        assert cfg.max_retries == 3
        assert cfg.backoff_base == 1e-5
        assert cfg.checkpoint_every == 32
        assert cfg.losses == (
            LossSchedule("gpu", 1, 0.004),
            LossSchedule("node", 2, 0.01),
        )
        assert cfg.has_losses

    @pytest.mark.parametrize(
        "spec",
        ["bogus", "copy:2.0", "retries:0", "lose-gpu:1", "lose-disk:0@1"],
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            ChaosConfig.parse(spec)

    def test_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHAOS", raising=False)
        assert chaos_default() is None
        monkeypatch.setenv("REPRO_CHAOS", "seed:3,copy:0.1")
        cfg = chaos_default()
        assert cfg is not None and cfg.seed == 3 and cfg.copy_fault_rate == 0.1
        monkeypatch.setenv("REPRO_CHAOS", "0")
        assert chaos_default() is None

    def test_injector_deterministic(self):
        cfg = ChaosConfig(seed=11, copy_fault_rate=0.3, alloc_fault_rate=0.2)
        a, b = ChaosInjector(cfg), ChaosInjector(cfg)
        draws_a = [(a.copy_fault(), a.alloc_fault()) for _ in range(200)]
        draws_b = [(b.copy_fault(), b.alloc_fault()) for _ in range(200)]
        assert draws_a == draws_b
        assert a.faults_injected == b.faults_injected > 0

    def test_losses_delivered_in_time_order(self):
        cfg = ChaosConfig(
            losses=(LossSchedule("gpu", 0, 2.0), LossSchedule("gpu", 1, 1.0))
        )
        inj = ChaosInjector(cfg)
        assert inj.take_losses(0.5) == []
        assert [l.target for l in inj.take_losses(1.5)] == [1]
        assert [l.target for l in inj.take_losses(5.0)] == [0]
        assert inj.pending_losses == ()


class TestTransientFaults:
    def test_copy_faults_bitwise_identical(self):
        baseline, _, _, _ = _cg_run(None)
        chaos = ChaosConfig(seed=7, copy_fault_rate=0.05)
        faulty, rt, _, _ = _cg_run(chaos)
        np.testing.assert_array_equal(baseline, faulty)
        assert rt.profiler.retries == sum(rt.profiler.faults_injected.values())

    def test_alloc_faults_bitwise_identical_and_charged(self):
        baseline, _, t0, t1 = _cg_run(None)
        chaos = ChaosConfig(seed=7, alloc_fault_rate=0.05)
        faulty, rt, f0, f1 = _cg_run(chaos)
        np.testing.assert_array_equal(baseline, faulty)
        assert rt.profiler.faults_injected["alloc"] > 0
        # Backoff is charged on the simulated clock.
        assert rt.profiler.backoff_seconds > 0
        assert f1 - f0 >= t1 - t0

    def test_exhausted_retries_raise_fault_error(self):
        chaos = ChaosConfig(seed=0, copy_fault_rate=0.99, max_retries=2)
        with pytest.raises(FaultError):
            _cg_run(chaos)


class TestLossRecovery:
    def test_gpu_loss_recovers_bitwise(self):
        baseline, _, t0, t1 = _cg_run(None)
        chaos = ChaosConfig(
            checkpoint_every=16,
            losses=(LossSchedule("gpu", 1, (t0 + t1) / 2),),
        )
        recovered, rt, _, _ = _cg_run(chaos)
        np.testing.assert_array_equal(baseline, recovered)
        assert rt.profiler.faults_injected["gpu-loss"] == 1
        assert rt.profiler.checkpoints > 0
        assert rt.profiler.tasks_reexecuted > 0

    def test_node_loss_recovers_bitwise(self):
        baseline, _, t0, t1 = _cg_run(None, procs=2, nodes=2)
        chaos = ChaosConfig(
            checkpoint_every=16,
            losses=(LossSchedule("node", 1, (t0 + t1) / 2),),
        )
        recovered, rt, _, _ = _cg_run(chaos, procs=2, nodes=2)
        np.testing.assert_array_equal(baseline, recovered)
        assert rt.profiler.faults_injected["node-loss"] == 1
        assert rt.profiler.tasks_reexecuted > 0

    def test_recovery_charges_delay(self):
        _, _, t0, t1 = _cg_run(None)
        chaos = ChaosConfig(
            checkpoint_every=16,
            recovery_delay=5e-3,
            losses=(LossSchedule("gpu", 1, (t0 + t1) / 2),),
        )
        _, _, f0, f1 = _cg_run(chaos)
        assert f1 - f0 >= (t1 - t0) + 5e-3

    def test_losing_checkpoint_store_is_fatal(self):
        _, _, t0, t1 = _cg_run(None)
        chaos = ChaosConfig(
            checkpoint_every=16,
            losses=(LossSchedule("node", 0, (t0 + t1) / 2),),
        )
        with pytest.raises(FaultError, match="checkpoint store"):
            _cg_run(chaos)

    def test_denser_checkpoints_shorten_replay(self):
        """The journal resets each epoch: more checkpoints, less replay."""
        _, _, t0, t1 = _cg_run(None)
        t_mid = (t0 + t1) / 2
        reexec = {}
        for every in (12, 24):
            chaos = ChaosConfig(
                checkpoint_every=every,
                losses=(LossSchedule("gpu", 1, t_mid),),
            )
            _, rt, _, _ = _cg_run(chaos)
            reexec[every] = rt.profiler.tasks_reexecuted
        assert 0 < reexec[12] < reexec[24]


class TestTimelineComposition:
    """Chaos injection must stay visible — and conserved — on the timeline."""

    def _profiled_run(self, chaos, procs=2, nodes=1):
        from repro.legion.timeline import drain_timelines

        drain_timelines()
        try:
            return _cg_run(chaos, procs=procs, nodes=nodes, profile=True)
        finally:
            drain_timelines()

    def test_copy_faults_appear_as_retry_backoff_subspans(self):
        chaos = ChaosConfig(seed=7, copy_fault_rate=0.05)
        _, rt, _, _ = self._profiled_run(chaos)
        retries = [s for s in rt.timeline.spans if s.category == "retry"]
        backoffs = [s for s in rt.timeline.spans if s.category == "backoff"]
        # One retry + one backoff span per injected copy fault (every
        # intra-node path is a single channel).
        assert len(retries) == rt.profiler.faults_injected["copy"] > 0
        assert len(backoffs) == len(retries)
        for retry, backoff in zip(retries, backoffs):
            # The doomed attempt holds the wire, then the pause begins.
            assert retry.finish == backoff.start
            assert backoff.duration > 0

    def test_span_conservation_under_faults(self):
        chaos = ChaosConfig(seed=7, copy_fault_rate=0.05, alloc_fault_rate=0.05)
        _, rt, _, _ = self._profiled_run(chaos)
        assert rt.profiler.retries > 0
        usage = rt.timeline.utilization()
        for resource, u in usage.items():
            assert u.busy == pytest.approx(u.busy_sum, abs=0.0), resource

    def test_critical_path_exact_under_faults(self):
        chaos = ChaosConfig(seed=7, copy_fault_rate=0.05)
        _, rt, _, _ = self._profiled_run(chaos)
        with runtime_scope(rt):
            elapsed = rt.elapsed()
        path = rt.timeline.critical_path(elapsed)
        assert path.start == 0.0
        assert path.length == elapsed
        for a, b in zip(path.steps, path.steps[1:]):
            assert a.finish == b.start

    def test_loss_recovery_visible_on_timeline(self):
        _, _, t0, t1 = _cg_run(None)
        chaos = ChaosConfig(
            checkpoint_every=16,
            recovery_delay=5e-3,
            losses=(LossSchedule("gpu", 1, (t0 + t1) / 2),),
        )
        _, rt, _, _ = self._profiled_run(chaos)
        categories = {s.category for s in rt.timeline.spans}
        assert "recovery" in categories
        assert "checkpoint" in categories
        replayed = [
            s for s in rt.timeline.spans
            if s.category == "task" and s.name.startswith("replay:")
        ]
        assert len(replayed) > 0
        # Conservation still holds through checkpoint + replay traffic.
        for resource, u in rt.timeline.utilization().items():
            assert u.busy == pytest.approx(u.busy_sum, abs=0.0), resource
