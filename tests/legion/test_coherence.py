"""Unit tests for validity tracking and copy derivation."""

import numpy as np

from repro.geometry import Rect
from repro.legion.coherence import RegionCoherence
from repro.legion import (
    Privilege,
    Requirement,
    Runtime,
    RuntimeConfig,
    TaskLaunch,
    Tiling,
)
from repro.legion.partition import ExplicitPartition
from repro.machine import ProcessorKind, laptop


def R(lo, hi):
    return Rect((lo,), (hi,))


class TestValidity:
    def test_initially_all_missing(self):
        coh = RegionCoherence()
        assert coh.missing(0, R(0, 10)) == [R(0, 10)]

    def test_mark_valid_then_no_missing(self):
        coh = RegionCoherence()
        coh.mark_valid(0, R(0, 10), 1.0)
        assert coh.missing(0, R(2, 8)) == []

    def test_partial_validity(self):
        coh = RegionCoherence()
        coh.mark_valid(0, R(0, 5), 1.0)
        missing = coh.missing(0, R(0, 10))
        assert missing == [R(5, 10)]

    def test_ready_time_is_latest_overlapping(self):
        coh = RegionCoherence()
        coh.mark_valid(0, R(0, 5), 1.0)
        coh.mark_valid(0, R(5, 10), 3.0)
        assert coh.ready_time(0, R(0, 10)) == 3.0
        assert coh.ready_time(0, R(0, 4)) == 1.0

    def test_write_invalidates_other_memories(self):
        coh = RegionCoherence()
        coh.mark_valid(0, R(0, 10), 1.0)
        coh.mark_valid(1, R(0, 10), 1.0)
        coh.mark_written(1, R(3, 7), 2.0)
        assert coh.missing(0, R(0, 10)) == [R(3, 7)]
        assert coh.missing(1, R(0, 10)) == []

    def test_write_updates_time_in_own_memory(self):
        coh = RegionCoherence()
        coh.mark_valid(0, R(0, 10), 1.0)
        coh.mark_written(0, R(0, 10), 5.0)
        assert coh.ready_time(0, R(0, 10)) == 5.0

    def test_mark_valid_replaces_overlap(self):
        coh = RegionCoherence()
        coh.mark_valid(0, R(0, 10), 1.0)
        coh.mark_valid(0, R(3, 7), 9.0)
        # Old piece split, new piece has new time.
        assert coh.ready_time(0, R(3, 7)) == 9.0
        assert coh.ready_time(0, R(0, 3)) == 1.0


class TestFindSource:
    def test_single_source(self):
        coh = RegionCoherence()
        coh.mark_valid(0, R(0, 10), 2.0)
        frags = coh.find_source(R(2, 6), exclude=1)
        assert frags == [(0, R(2, 6), 2.0)]

    def test_excludes_destination(self):
        coh = RegionCoherence()
        coh.mark_valid(0, R(0, 10), 2.0)
        assert coh.find_source(R(0, 5), exclude=0) == []

    def test_multiple_sources_cover(self):
        coh = RegionCoherence()
        coh.mark_valid(0, R(0, 5), 1.0)
        coh.mark_valid(1, R(5, 10), 2.0)
        frags = coh.find_source(R(3, 8), exclude=2)
        covered = sorted((f[1].lo[0], f[1].hi[0]) for f in frags)
        assert covered == [(3, 5), (5, 8)]

    def test_never_written_data_transfers_nothing(self):
        coh = RegionCoherence()
        assert coh.find_source(R(0, 10), exclude=0) == []

    def test_2d_fragments(self):
        coh = RegionCoherence()
        coh.mark_valid(0, Rect((0, 0), (4, 4)), 1.0)
        frags = coh.find_source(Rect((2, 0), (6, 4)), exclude=1)
        vol = sum(f[1].volume() for f in frags)
        assert vol == 8  # only the valid half is transferable


class TestStaleTracking:
    def test_written_set_accumulates(self):
        coh = RegionCoherence()
        coh.mark_written(0, R(0, 5), 1.0)
        coh.mark_written(1, R(5, 10), 2.0)
        assert coh.written.contains_rect(R(0, 10))

    def test_stale_flags_written_but_invalid(self):
        coh = RegionCoherence()
        coh.mark_valid(0, R(0, 10), 1.0)
        coh.mark_valid(1, R(0, 10), 1.0)
        coh.mark_written(0, R(3, 7), 2.0)
        # Memory 1's overlap was invalidated: reading it now is stale.
        assert coh.stale(1, R(0, 10)) == [R(3, 7)]
        assert coh.stale(0, R(0, 10)) == []

    def test_unwritten_data_is_never_stale(self):
        coh = RegionCoherence()
        assert coh.stale(0, R(0, 10)) == []


class TestCrossPartitionInvalidation:
    """A stale instance is re-copied after a WRITE through a *different*
    partition of the same region (the §4.3 invalidation path)."""

    def _runtime(self):
        machine = laptop()
        return Runtime(
            machine.scope(ProcessorKind.GPU, 2), RuntimeConfig.legate()
        )

    @staticmethod
    def _read_task(region, partition):
        def kernel(ctx):
            ctx.view("inp").sum()

        return TaskLaunch(
            "reader",
            [Requirement("inp", region, partition, Privilege.READ)],
            kernel,
        )

    def test_write_through_other_partition_forces_recopy(self):
        rt = self._runtime()
        region = rt.create_region((100,), np.float64, data=np.arange(100.0))
        tiles = Tiling.create(region, 2)

        # Both GPUs pull their tiles from host memory.
        rt.launch(self._read_task(region, tiles))
        staged = rt.profiler.total_copy_bytes()
        assert staged > 0

        # Re-reading through the same partition is free (steady state).
        rt.launch(self._read_task(region, tiles))
        assert rt.profiler.total_copy_bytes() == staged

        # Write the whole region through a *different* partition: one
        # color covering everything, mapped to GPU 0.
        whole = ExplicitPartition(region, [region.rect])

        def writer(ctx):
            ctx.view("out")[...] = 7.0

        rt.launch(
            TaskLaunch(
                "writer",
                [Requirement("out", region, whole, Privilege.WRITE_DISCARD)],
                writer,
            )
        )
        after_write = rt.profiler.total_copy_bytes()

        # GPU 1's tile instance is now stale; the next tiled read must
        # re-copy its half from the writer's memory.
        rt.launch(self._read_task(region, tiles))
        recopied = rt.profiler.total_copy_bytes() - after_write
        assert recopied >= 50 * 8  # at least GPU 1's half
