"""Unit tests for validity tracking and copy derivation."""

from repro.geometry import Rect
from repro.legion.coherence import RegionCoherence


def R(lo, hi):
    return Rect((lo,), (hi,))


class TestValidity:
    def test_initially_all_missing(self):
        coh = RegionCoherence()
        assert coh.missing(0, R(0, 10)) == [R(0, 10)]

    def test_mark_valid_then_no_missing(self):
        coh = RegionCoherence()
        coh.mark_valid(0, R(0, 10), 1.0)
        assert coh.missing(0, R(2, 8)) == []

    def test_partial_validity(self):
        coh = RegionCoherence()
        coh.mark_valid(0, R(0, 5), 1.0)
        missing = coh.missing(0, R(0, 10))
        assert missing == [R(5, 10)]

    def test_ready_time_is_latest_overlapping(self):
        coh = RegionCoherence()
        coh.mark_valid(0, R(0, 5), 1.0)
        coh.mark_valid(0, R(5, 10), 3.0)
        assert coh.ready_time(0, R(0, 10)) == 3.0
        assert coh.ready_time(0, R(0, 4)) == 1.0

    def test_write_invalidates_other_memories(self):
        coh = RegionCoherence()
        coh.mark_valid(0, R(0, 10), 1.0)
        coh.mark_valid(1, R(0, 10), 1.0)
        coh.mark_written(1, R(3, 7), 2.0)
        assert coh.missing(0, R(0, 10)) == [R(3, 7)]
        assert coh.missing(1, R(0, 10)) == []

    def test_write_updates_time_in_own_memory(self):
        coh = RegionCoherence()
        coh.mark_valid(0, R(0, 10), 1.0)
        coh.mark_written(0, R(0, 10), 5.0)
        assert coh.ready_time(0, R(0, 10)) == 5.0

    def test_mark_valid_replaces_overlap(self):
        coh = RegionCoherence()
        coh.mark_valid(0, R(0, 10), 1.0)
        coh.mark_valid(0, R(3, 7), 9.0)
        # Old piece split, new piece has new time.
        assert coh.ready_time(0, R(3, 7)) == 9.0
        assert coh.ready_time(0, R(0, 3)) == 1.0


class TestFindSource:
    def test_single_source(self):
        coh = RegionCoherence()
        coh.mark_valid(0, R(0, 10), 2.0)
        frags = coh.find_source(R(2, 6), exclude=1)
        assert frags == [(0, R(2, 6), 2.0)]

    def test_excludes_destination(self):
        coh = RegionCoherence()
        coh.mark_valid(0, R(0, 10), 2.0)
        assert coh.find_source(R(0, 5), exclude=0) == []

    def test_multiple_sources_cover(self):
        coh = RegionCoherence()
        coh.mark_valid(0, R(0, 5), 1.0)
        coh.mark_valid(1, R(5, 10), 2.0)
        frags = coh.find_source(R(3, 8), exclude=2)
        covered = sorted((f[1].lo[0], f[1].hi[0]) for f in frags)
        assert covered == [(3, 5), (5, 8)]

    def test_never_written_data_transfers_nothing(self):
        coh = RegionCoherence()
        assert coh.find_source(R(0, 10), exclude=0) == []

    def test_2d_fragments(self):
        coh = RegionCoherence()
        coh.mark_valid(0, Rect((0, 0), (4, 4)), 1.0)
        frags = coh.find_source(Rect((2, 0), (6, 4)), exclude=1)
        vol = sum(f[1].volume() for f in frags)
        assert vol == 8  # only the valid half is transferable
