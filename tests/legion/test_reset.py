"""``Runtime.reset_for_program``: program-boundary state leak regression.

A runtime historically lived as long as one program; a serving host
reuses one across many.  These tests pin each audited leak closed:
the deferred fusion window, the checkpoint cadence counter, the
recovery journal, the fusion/autoformat logs, and the structural
caches (opt-in) — while proving numerics of a reused runtime match a
fresh one bitwise.
"""

import numpy as np
import scipy.sparse as sps

import repro.numeric as rnp
import repro.sparse as sp
from repro.legion.chaos import ChaosConfig, LossSchedule
from repro.legion.runtime import Runtime, RuntimeConfig, runtime_scope
from repro.machine import ProcessorKind, laptop

N = 40


def _runtime(**overrides):
    machine = laptop()
    return Runtime(
        machine.scope(ProcessorKind.GPU, 2),
        RuntimeConfig.legate(**overrides),
    )


def _host_matrix(seed=0):
    return sps.random(
        N, N, density=0.2, random_state=seed, format="csr", dtype=np.float64
    )


def _program(rt, seed):
    """One client program: build a matrix, SpMV, return host bytes."""
    rng = np.random.default_rng(seed)
    with runtime_scope(rt):
        A = sp.csr_matrix(_host_matrix(seed))
        y = (A @ rnp.asarray(rng.standard_normal(N))).to_numpy().copy()
    return y


def test_reset_flushes_the_deferred_window():
    rt = _runtime()
    with runtime_scope(rt):
        A = sp.csr_matrix(_host_matrix())
        y = A @ rnp.asarray(np.ones(N))
        # Launches may still sit in the deferred window here...
        rt.reset_for_program()
        # ...but a program boundary is a sync point: nothing buffered
        # may flush into the next program.
        assert rt._window == []
        assert rt._window_refs == {}
        assert rt._pending_writes is None
        # The computed value was not lost by the flush.
        np.testing.assert_allclose(y.to_numpy(), _host_matrix() @ np.ones(N))


def test_reset_clears_checkpoint_cadence_counter():
    # A far-future scheduled loss turns journaling on; the cadence of
    # 100 launches never fires within one small program.
    chaos = ChaosConfig(
        seed=0,
        checkpoint_every=100,
        losses=(LossSchedule("gpu", 0, 1e9),),
    )
    rt = _runtime(chaos=chaos)
    _program(rt, 0)
    assert rt._launches_since_ckpt > 0  # the leak: carried into program 2
    ckpts_before = rt.profiler.checkpoints
    rt.reset_for_program()
    assert rt._launches_since_ckpt == 0
    # Journaled work existed, so the boundary took a real checkpoint
    # (coverage is never silently dropped).
    assert rt.profiler.checkpoints == ckpts_before + 1
    assert rt._journal == []
    assert not rt._freed_uids


def test_reset_without_journaling_skips_checkpoint():
    rt = _runtime()  # no chaos -> no journaling
    _program(rt, 0)
    rt.reset_for_program()
    assert rt.profiler.checkpoints == 0


def test_reset_clears_fusion_and_autoformat_logs():
    rt = _runtime(autoformat=True)
    _program(rt, 0)
    rt.fusion_log.append(("sentinel",))
    rt.autoformat_log.append(("sentinel",))
    rt.reset_for_program()
    assert rt.fusion_log == []
    assert rt.autoformat_log == []


def test_reset_keeps_structural_caches_warm_by_default():
    rt = _runtime()
    _program(rt, 0)
    rt.reset_for_program()
    warm = len(rt._solve_memo)
    _program(rt, 0)
    # Identical program shape: the memo served from cache, not regrown.
    assert len(rt._solve_memo) == warm
    rt.reset_for_program(clear_caches=True)
    assert len(rt._solve_memo) == 0
    assert len(rt._fusion_cache) == 0
    assert len(rt._nest_cache) == 0


def test_reused_runtime_matches_fresh_runtime_bitwise():
    """Back-to-back programs on one reset runtime produce exactly the
    bytes each program produces on its own fresh runtime."""
    reused = _runtime()
    got = []
    for seed in (1, 2, 3):
        got.append(_program(reused, seed))
        reused.reset_for_program()
    for seed, y in zip((1, 2, 3), got):
        fresh = _program(_runtime(), seed)
        assert y.tobytes() == fresh.tobytes()


def test_reset_clears_trace_hook():
    rt = _runtime()
    rt._trace_hook = lambda *a: None
    rt.reset_for_program()
    assert rt._trace_hook is None


def test_profiler_counters_survive_reset():
    rt = _runtime()
    _program(rt, 0)
    launched = rt.profiler.tasks_launched
    assert launched > 0
    rt.reset_for_program()
    # Cumulative observability state is not program-scoped.
    assert rt.profiler.tasks_launched == launched
