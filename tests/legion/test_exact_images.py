"""Exact (piecewise) coordinate images vs bounding rects."""

import numpy as np
import pytest
import scipy.sparse as sps

import repro.numeric as rnp
import repro.sparse as sp
from repro.geometry import Rect
from repro.legion import Runtime, RuntimeConfig, Tiling
from repro.legion.partition import ImageByCoordinate
from repro.legion.region import Region
from repro.legion.runtime import runtime_scope
from repro.machine import ProcessorKind, laptop


class TestExactImagePieces:
    def test_runs_computed(self):
        crd = Region((6,), np.int64, data=np.array([0, 1, 5, 6, 1, 0]))
        x = Region((10,), np.float64)
        img = ImageByCoordinate(crd, Tiling.create(crd, 1), x, exact=True)
        pieces = img.pieces(0)
        assert pieces == [Rect((0,), (2,)), Rect((5,), (7,))]
        # The bounding rect is still the hull.
        assert img.rect(0) == Rect((0,), (7,))

    def test_bounding_default(self):
        crd = Region((4,), np.int64, data=np.array([0, 9, 0, 9]))
        x = Region((10,), np.float64)
        img = ImageByCoordinate(crd, Tiling.create(crd, 1), x)
        assert img.pieces(0) == [Rect((0,), (10,))]

    def test_too_many_runs_falls_back(self):
        coords = np.arange(0, 300, 2)  # 150 separate runs
        crd = Region((len(coords),), np.int64, data=coords)
        x = Region((400,), np.float64)
        img = ImageByCoordinate(crd, Tiling.create(crd, 1), x, exact=True)
        assert img.pieces(0) == [Rect((0,), (299,))]

    def test_pieces_cover_all_references(self):
        rng = np.random.default_rng(0)
        coords = rng.choice(100, size=40, replace=True)
        crd = Region((40,), np.int64, data=coords.astype(np.int64))
        x = Region((100,), np.float64)
        img = ImageByCoordinate(crd, Tiling.create(crd, 2), x, exact=True)
        for c in range(2):
            tile = Tiling.create(crd, 2).rect(c)
            refs = coords[tile.lo[0] : tile.hi[0]]
            pieces = img.pieces(c)
            for j in refs:
                assert any(p.contains_point((int(j),)) for p in pieces)


class TestExactImageCommunication:
    def _spmv_copy_bytes(self, exact: bool) -> int:
        """Two-GPU SpMV on a matrix referencing only the vector's ends."""
        machine = laptop()
        rt = Runtime(
            machine.scope(ProcessorKind.GPU, 2),
            RuntimeConfig.legate(exact_images=exact),
        )
        with runtime_scope(rt):
            n = 1024
            # Each row references columns 0 and n-1 only: the bounding
            # image is the whole vector, the exact image two elements.
            rows = np.repeat(np.arange(n), 2)
            cols = np.tile(np.array([0, n - 1]), n)
            vals = np.ones(2 * n)
            ref = sps.csr_matrix((vals, (rows, cols)), shape=(n, n))
            A = sp.csr_matrix(ref)
            x = rnp.ones(n)
            for _ in range(3):  # startup: staging + instance steady state
                x = A @ x
                x /= rnp.linalg.norm(x)
            rt.barrier()
            snap = rt.profiler.snapshot()
            x = A @ x  # the rewritten x makes the halo stale again
            rt.barrier()
            return rt.profiler.since(snap).copy_bytes.get("nvlink", 0)

    def test_exact_images_shrink_halo(self):
        bounding = self._spmv_copy_bytes(exact=False)
        exact = self._spmv_copy_bytes(exact=True)
        assert exact < bounding / 50

    def test_numerics_identical(self):
        results = []
        for exact in (False, True):
            machine = laptop()
            rt = Runtime(
                machine.scope(ProcessorKind.GPU, 2),
                RuntimeConfig.legate(exact_images=exact),
            )
            with runtime_scope(rt):
                rng = np.random.default_rng(1)
                ref = sps.random(64, 64, density=0.2, random_state=rng, format="csr")
                A = sp.csr_matrix(ref)
                x = rnp.array(rng.random(64))
                results.append((A @ x).to_numpy())
        np.testing.assert_allclose(results[0], results[1], rtol=1e-14)
