"""Tests for the simulated-time model: contention, pressure, scaling."""

import numpy as np
import pytest

import repro.numeric as rnp
import repro.sparse as sp
from repro.legion import (
    Privilege,
    Requirement,
    Runtime,
    RuntimeConfig,
    TaskLaunch,
    Tiling,
)
from repro.legion.runtime import runtime_scope
from repro.machine import Machine, ProcessorKind, summit
from repro.machine.model import MachineConfig


class TestChannelContention:
    def test_nic_serializes_cross_node_traffic(self):
        """All-to-all through a shared NIC takes longer than pairwise
        NVLink — the Fig. 11 GPU-vs-CPU mechanism."""
        def all_to_all_time(gpus, nodes, per_node):
            machine = summit(nodes=nodes)
            rt = Runtime(
                machine.scope(ProcessorKind.GPU, gpus, per_node=per_node),
                RuntimeConfig.legate(launch_overhead=0.0),
            )
            with runtime_scope(rt):
                n = 4096 * gpus
                a = rnp.ones(n)
                rt.barrier()
                # Broadcast-read: every GPU pulls every other shard.
                from repro.legion.partition import Replicate

                def read_all(ctx):
                    ctx.view("inp").sum()

                rt.launch(
                    TaskLaunch(
                        "readall",
                        [
                            Requirement(
                                "inp",
                                a.store.region,
                                Replicate(a.store.region, gpus),
                                Privilege.READ,
                            )
                        ],
                        read_all,
                    )
                )
                return rt.barrier()

        same_node = all_to_all_time(4, 1, per_node=4)  # NVLink only
        cross_node = all_to_all_time(4, 4, per_node=1)  # all NIC
        assert cross_node > 2 * same_node

    def test_gpu_config_funnels_more_bytes_per_nic(self):
        """The Fig. 11 crossover mechanism: at equal processor counts,
        4 GPUs/node funnel ~1.7x the all-to-all bytes through each NIC
        that 2 CPU sockets/node do (sockets also share their memory, so
        the same-node peer costs nothing)."""
        from repro.legion.partition import Replicate

        def all_to_all(kind, per_node, procs=8):
            nodes = procs // per_node
            machine = summit(nodes=max(nodes, 2))
            rt = Runtime(
                machine.scope(kind, procs, per_node=per_node),
                RuntimeConfig.legate(launch_overhead=0.0),
            )
            with runtime_scope(rt):
                a = rnp.ones(8192 * procs)
                rt.barrier()
                rt.launch(
                    TaskLaunch(
                        "readall",
                        [
                            Requirement(
                                "inp",
                                a.store.region,
                                Replicate(a.store.region, procs),
                                Privilege.READ,
                            )
                        ],
                        lambda ctx: None,
                    )
                )
                rt.barrier()
                nic_bytes = rt.profiler.copy_bytes.get("nic", 0)
                return nic_bytes / nodes

        gpu_per_nic = all_to_all(ProcessorKind.GPU, per_node=4)
        cpu_per_nic = all_to_all(ProcessorKind.CPU_SOCKET, per_node=2)
        assert gpu_per_nic > 1.5 * cpu_per_nic


class TestMemoryPressure:
    def test_slowdown_above_threshold(self):
        machine = Machine(MachineConfig(nodes=1, gpus_per_node=1, gpu_memory=2**20))
        times = []
        for fill in (0.1, 0.95):
            rt = Runtime(
                machine.scope(ProcessorKind.GPU, 1),
                RuntimeConfig.cupy(reserved_fb_bytes=0),
            )
            with runtime_scope(rt):
                filler = rnp.zeros(int(fill * 2**20 / 8) - 64)
                x = rnp.ones(32)
                rt.barrier()
                t0 = rt.barrier()
                for _ in range(5):
                    x = x * 2.0
                times.append(rt.barrier() - t0)
        assert times[1] > 2 * times[0]

    def test_legate_not_affected_by_default(self):
        cfg = RuntimeConfig.legate()
        assert cfg.memory_pressure_slowdown == 1.0


class TestPerRegionMemScale:
    def test_extent_override_applies(self):
        machine = summit(nodes=1)
        rt = Runtime(
            machine.scope(ProcessorKind.GPU, 1),
            RuntimeConfig.legate(data_scale=1000.0),
        )
        rt.mem_scale_by_extent[77] = 2.0
        with runtime_scope(rt):
            small_scale = rnp.ones(77)  # magnified 2x, not 1000x
            rt.barrier()
            mem = rt.scope.processors[0].memory
            used = rt.instances.used_bytes(mem)
            assert used == pytest.approx(77 * 8 * 2.0, rel=0.01)

    def test_region_attribute_override(self):
        machine = summit(nodes=1)
        rt = Runtime(
            machine.scope(ProcessorKind.GPU, 1),
            RuntimeConfig.legate(data_scale=1000.0),
        )
        with runtime_scope(rt):
            arr = rnp.empty(50)
            arr.store.region.mem_scale = 3.0
            arr.fill(1.0)
            rt.barrier()
            mem = rt.scope.processors[0].memory
            assert rt.instances.used_bytes(mem) == pytest.approx(50 * 8 * 3.0, rel=0.01)


class TestProfilerEvents:
    def test_event_recording_toggle(self):
        machine = summit(nodes=1)
        rt = Runtime(machine.scope(ProcessorKind.GPU, 2), RuntimeConfig.legate())
        rt.profiler.record_events = True
        with runtime_scope(rt):
            a = rnp.ones(64)
            b = a * 2.0
        names = [name for name, _, _ in rt.profiler.events]
        # The fill and the multiply fuse into one launch by default.
        assert any("multiply" in name for name in names)
        for _, start, finish in rt.profiler.events:
            assert finish >= start

    def test_task_counts_by_name(self):
        machine = summit(nodes=1)
        rt = Runtime(machine.scope(ProcessorKind.GPU, 2), RuntimeConfig.legate())
        with runtime_scope(rt):
            A = sp.eye(32, format="csr")
            x = rnp.ones(32)
            for _ in range(3):
                x = A @ x
        spmv_key = [k for k in rt.profiler.task_counts if "y(i)=A(i,j)*x(j)" in k]
        assert spmv_key
        assert rt.profiler.task_counts[spmv_key[0]] == 3 * 2  # 3 launches x 2 shards


class TestDataScaleConsistency:
    def test_throughput_independent_of_build_size(self):
        """Two builds of the same full-scale problem at different reduced
        sizes produce similar simulated throughput (the harness's core
        soundness property)."""
        from repro.harness.experiments.fig8_spmv import banded_scipy

        def throughput(n_build):
            machine = summit(nodes=1)
            n_full = 10_000_000
            rt = Runtime(
                machine.scope(ProcessorKind.GPU, 2),
                RuntimeConfig.legate(data_scale=n_full / n_build, comm_scale=1.0),
            )
            with runtime_scope(rt):
                A = sp.csr_matrix(banded_scipy(n_build))
                x = rnp.ones(n_build)
                for _ in range(2):
                    y = A @ x
                t0 = rt.barrier()
                for _ in range(5):
                    y = A @ x
                return 5 / (rt.barrier() - t0)

        t_small = throughput(20_000)
        t_large = throughput(80_000)
        assert t_small == pytest.approx(t_large, rel=0.05)
