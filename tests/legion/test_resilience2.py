"""Resilience 2.0 units: replica placement, manifest, recovery planner."""

import pytest

from repro.geometry import Rect, RectSet
from repro.legion.chaos import ChaosConfig
from repro.legion.coherence import RegionCoherence
from repro.legion.exceptions import FaultError
from repro.legion.privilege import Privilege
from repro.legion.resilience import (
    CheckpointManifest,
    journal_write_coverage,
    place_stores,
    plan_recovery,
    transfer_cost,
)
from repro.machine import MemoryKind, summit


def r1(lo, hi):
    return Rect((lo,), (hi,))


def _sysmem(machine, node):
    for mem in machine.memories:
        if mem.kind == MemoryKind.SYSMEM and mem.node == node:
            return mem
    raise AssertionError(f"no sysmem on node {node}")


def _framebuffer(machine, node):
    for mem in machine.memories:
        if mem.kind == MemoryKind.FRAMEBUFFER and mem.node == node:
            return mem
    raise AssertionError(f"no framebuffer on node {node}")


class TestPlacement:
    def test_replicas_1_is_exactly_node0_sysmem(self):
        machine = summit(nodes=3)
        stores = place_stores(machine, 1)
        assert [(m.kind, m.node) for m in stores] == [(MemoryKind.SYSMEM, 0)]

    def test_replicas_spread_across_distinct_fault_domains(self):
        machine = summit(nodes=3)
        stores = place_stores(machine, 2)
        assert [m.node for m in stores] == [0, 1]
        assert all(m.kind == MemoryKind.SYSMEM for m in stores)

    def test_replicas_clamped_to_available_domains(self):
        machine = summit(nodes=2)
        assert [m.node for m in place_stores(machine, 5)] == [0, 1]

    def test_dead_domains_excluded(self):
        machine = summit(nodes=3)
        stores = place_stores(machine, 2, exclude_nodes={0})
        assert [m.node for m in stores] == [1, 2]
        assert place_stores(machine, 2, exclude_nodes={0, 1, 2}) == []


class TestTransferCost:
    def test_same_memory_is_free(self):
        machine = summit(nodes=2)
        s0 = _sysmem(machine, 0)
        assert transfer_cost(machine, s0, s0, 10**6) == 0.0

    def test_cross_node_costs_more_than_intra_node(self):
        machine = summit(nodes=2)
        s0, f0, s1 = _sysmem(machine, 0), _framebuffer(machine, 0), _sysmem(machine, 1)
        nbytes = 10**6
        intra = transfer_cost(machine, f0, s0, nbytes)
        cross = transfer_cost(machine, s1, s0, nbytes)
        assert 0.0 < intra < cross


class TestManifest:
    def test_record_skips_empty_and_sums_volume(self):
        man = CheckpointManifest()
        man.record(1, "x", RectSet([r1(0, 10)]))
        man.record(2, "y", RectSet())
        assert set(man.pieces) == {1}
        assert man.protected_volume() == 10
        man.drop(1)
        assert not man.pieces


class _Part:
    """Stub partition: color -> rect."""

    def __init__(self, rects):
        self._rects = rects

    @property
    def color_count(self):
        return len(self._rects)

    def rect(self, color):
        return self._rects[color]


class _Region:
    def __init__(self, uid):
        self.uid = uid


class _Req:
    def __init__(self, privilege, region, partition):
        self.privilege = privilege
        self.region = region
        self.partition = partition


class _Task:
    def __init__(self, reqs, color_count, fold_partition=None):
        self.requirements = reqs
        self.color_count = color_count
        self.fold_partition = fold_partition


class TestJournalCoverage:
    def test_writes_cover_partition_rects_reads_do_not(self):
        region = _Region(7)
        part = _Part([r1(0, 5), r1(5, 10)])
        task = _Task(
            [
                _Req(Privilege.WRITE, region, part),
                _Req(Privilege.READ, _Region(8), part),
            ],
            color_count=2,
        )
        cov = journal_write_coverage([task], set())
        assert set(cov) == {7}
        assert cov[7].volume() == 10
        assert RectSet([r1(0, 10)]).subtract(cov[7]).is_empty()

    def test_freed_regions_excluded(self):
        region = _Region(7)
        task = _Task([_Req(Privilege.WRITE, region, _Part([r1(0, 5)]))], 1)
        assert journal_write_coverage([task], {7}) == {}

    def test_reduce_uses_owner_partition_not_contributions(self):
        # The fold re-marks owner tiles written, regardless of which
        # contribution rects overlap them — coverage must match the fold
        # exactly (over-approximating would lose data in recovery).
        region = _Region(7)
        contributions = _Part([r1(0, 10), r1(0, 10)])  # overlapping partials
        owner = _Part([r1(0, 4), r1(4, 10)])
        task = _Task(
            [_Req(Privilege.REDUCE, region, contributions)],
            color_count=2,
            fold_partition=owner,
        )
        cov = journal_write_coverage([task], set())
        assert cov[7].volume() == 10
        assert RectSet([r1(0, 10)]).subtract(cov[7]).is_empty()


class TestPlanner:
    def _setup(self, nodes=2):
        machine = summit(nodes=nodes)
        by_uid = {m.uid: m for m in machine.memories}
        return machine, by_uid

    def _plan(self, machine, by_uid, manifest, coh, rewritten, stores):
        return plan_recovery(
            manifest, {1: coh}, rewritten, stores, machine,
            by_uid.__getitem__, {1: ("x", 8)},
        )

    def test_survives_single_domain_loss_by_resourcing(self):
        machine, by_uid = self._setup()
        s0, s1 = _sysmem(machine, 0), _sysmem(machine, 1)
        rect = r1(0, 100)
        coh = RegionCoherence()
        coh.written.add(rect)
        coh.mark_valid(s1.uid, rect, 1.0)  # replica 1 survives; s0 wiped
        manifest = CheckpointManifest()
        manifest.record(1, "x", RectSet([rect]))
        steps = self._plan(machine, by_uid, manifest, coh, {}, [s0, s1])
        # Only the wiped store needs refilling, from the survivor.
        assert [(st.src_uid, st.dst_uid) for st in steps] == [(s1.uid, s0.uid)]
        assert steps[0].rect == rect
        assert steps[0].nbytes == 100 * 8

    def test_replay_rewritten_pieces_not_restored(self):
        machine, by_uid = self._setup()
        s0, s1 = _sysmem(machine, 0), _sysmem(machine, 1)
        rect = r1(0, 100)
        coh = RegionCoherence()
        coh.written.add(rect)
        coh.mark_valid(s1.uid, rect, 1.0)
        manifest = CheckpointManifest()
        manifest.record(1, "x", RectSet([rect]))
        rewritten = {1: RectSet([rect])}
        assert self._plan(machine, by_uid, manifest, coh, rewritten, [s0, s1]) == []

    def test_cheapest_surviving_source_wins(self):
        machine, by_uid = self._setup()
        s0, f0, s1 = (
            _sysmem(machine, 0),
            _framebuffer(machine, 0),
            _sysmem(machine, 1),
        )
        rect = r1(0, 100)
        coh = RegionCoherence()
        coh.written.add(rect)
        coh.mark_valid(f0.uid, rect, 1.0)  # NVLink-close framebuffer
        coh.mark_valid(s1.uid, rect, 1.0)  # NIC-remote replica
        manifest = CheckpointManifest()
        manifest.record(1, "x", RectSet([rect]))
        steps = self._plan(machine, by_uid, manifest, coh, {}, [s0])
        assert [st.src_uid for st in steps] == [f0.uid]

    def test_all_replicas_gone_names_region_and_rect(self):
        machine, by_uid = self._setup()
        s0, s1 = _sysmem(machine, 0), _sysmem(machine, 1)
        rect = r1(0, 100)
        coh = RegionCoherence()
        coh.written.add(rect)  # written once, now valid nowhere
        manifest = CheckpointManifest()
        manifest.record(1, "x", RectSet([rect]))
        with pytest.raises(FaultError, match="all replicas") as exc:
            self._plan(machine, by_uid, manifest, coh, {}, [s0, s1])
        assert "x" in str(exc.value)
        assert str(rect) in str(exc.value)


class TestDetectionTimes:
    def test_zero_heartbeat_suspects_immediately(self):
        cfg = ChaosConfig(detection_timeout=2e-4)
        assert cfg.detection_times(0.5) == (0.5, 0.5 + 2e-4)

    def test_suspicion_waits_for_next_heartbeat_tick(self):
        cfg = ChaosConfig(heartbeat_period=1e-3, detection_timeout=5e-4)
        suspected, confirmed = cfg.detection_times(0.0042)
        assert suspected == pytest.approx(0.005)
        assert confirmed == pytest.approx(0.0055)

    def test_loss_on_tick_is_suspected_on_that_tick(self):
        cfg = ChaosConfig(heartbeat_period=1e-3)
        suspected, confirmed = cfg.detection_times(0.004)
        assert suspected == pytest.approx(0.004)
        assert confirmed == suspected
