"""Privilege semantics: truth table, launch shape, and cost charging."""

import numpy as np
import pytest

from repro.geometry import Rect
from repro.legion.privilege import Privilege
from repro.legion.task import ShardContext, TaskLaunch, default_cost


class TestTruthTable:
    """reads/writes for every privilege, including REDUCE."""

    @pytest.mark.parametrize(
        "priv,reads,writes",
        [
            (Privilege.READ, True, False),
            (Privilege.WRITE, True, True),
            (Privilege.WRITE_DISCARD, False, True),
            (Privilege.REDUCE, False, True),
        ],
    )
    def test_reads_writes(self, priv, reads, writes):
        assert priv.reads is reads
        assert priv.writes is writes

    def test_values_are_log_strings(self):
        # The event log serializes privileges by value; these strings are
        # load-bearing for the offline checker.
        assert {p.value for p in Privilege} == {
            "read", "write", "write-discard", "reduce"
        }


class TestColorCount:
    def test_no_requirements_is_single_color(self):
        # Regression: max() over an empty requirement list used to raise
        # ValueError; a region-free launch runs as one shard.
        launch = TaskLaunch("scalar-only", [], lambda ctx: None)
        assert launch.color_count == 1


def _ctx(privileges):
    n = 16
    arrays = {name: np.zeros(n) for name in privileges}
    rects = {name: Rect((0,), (n,)) for name in privileges}
    return ShardContext(0, 1, arrays, rects, {}, None, privileges=privileges)


class TestDefaultCost:
    def test_discard_charges_half_of_write(self):
        write = default_cost(_ctx({"a": Privilege.WRITE}))[1]
        discard = default_cost(_ctx({"a": Privilege.WRITE_DISCARD}))[1]
        assert write == 2 * discard  # no read-side staging for discard

    def test_read_matches_discard(self):
        read = default_cost(_ctx({"a": Privilege.READ}))[1]
        discard = default_cost(_ctx({"a": Privilege.WRITE_DISCARD}))[1]
        assert read == discard == 16 * 8

    def test_reduce_pays_rmw(self):
        reduce = default_cost(_ctx({"a": Privilege.REDUCE}))[1]
        assert reduce == 2 * 16 * 8

    def test_no_privileges_falls_back_to_one_touch(self):
        ctx = ShardContext(
            0, 1, {"a": np.zeros(16)}, {"a": Rect((0,), (16,))}, {}, None
        )
        assert default_cost(ctx)[1] == 16 * 8
