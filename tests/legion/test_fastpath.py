"""Host fast path: bitwise neutrality + cache invalidation proofs.

``RuntimeConfig.fastpath`` (see ``repro.legion.fastpath``) is pure
host-side mechanism — batched coherence writes, a version-checked
instance lookup cache, a positional constraint-solve memo and an
epoch-keyed image-partition cache.  Everything here pins down the two
properties the design hangs on:

* **bitwise neutrality** — identical numerics, modeled times and
  event-log shapes with the fast path on vs off, including under
  spill, eviction, chaos loss + journal replay and validation mode;
* **invalidation** — every cache observes the mutations that could
  make it stale (memory version bumps, write epochs, key-partition
  changes) and never pins region lifetimes.
"""

import gc
import random
import weakref

import numpy as np
import pytest

import repro.numeric as rnp
import repro.sparse as sp
from repro.analysis.checker import check_log
from repro.apps.poisson import poisson2d_scipy
from repro.constraints import Align, Broadcast, Explicit, Image, ImageKind, Store
from repro.constraints.solver import (
    rebuild_solution, solution_plan, solve_partitions, solve_signature,
)
from repro.geometry import Rect, RectSet
from repro.legion import Replicate, Runtime, RuntimeConfig, Tiling
from repro.legion.chaos import ChaosConfig, LossSchedule
from repro.legion.coherence import RegionCoherence
from repro.legion.fastpath import (
    ImagePartitionCache, InstanceLookupCache, SolveMemo, eligible_write_reqs,
)
from repro.legion.instance import MemoryState
from repro.legion.privilege import Privilege
from repro.legion.runtime import runtime_scope
from repro.legion.task import Requirement
from repro.machine import Machine, ProcessorKind, laptop, summit
from repro.machine.model import MachineConfig

GRID = 16
ITERS = 4


# ----------------------------------------------------------------------
# Batched coherence writes
# ----------------------------------------------------------------------
class TestWriteComplete:
    """write_complete == the sequential mark_written loop, state for state."""

    @staticmethod
    def _tiles(n, colors):
        bounds = [round(i * n / colors) for i in range(colors + 1)]
        return [
            Rect((bounds[i],), (bounds[i + 1],))
            for i in range(colors)
            if bounds[i + 1] > bounds[i]
        ]

    @staticmethod
    def _random_state(rng, n):
        coh = RegionCoherence()
        for mem in range(rng.randrange(4)):
            for _ in range(rng.randrange(3)):
                lo = rng.randrange(n)
                hi = rng.randrange(lo + 1, n + 1)
                coh.mark_valid(mem, Rect((lo,), (hi,)), rng.random())
        for _ in range(rng.randrange(4)):
            lo = rng.randrange(n)
            hi = rng.randrange(lo + 1, n + 1)
            coh.mark_written(rng.randrange(3), Rect((lo,), (hi,)), rng.random())
        return coh

    @staticmethod
    def _canonical(coh):
        return {
            mem: sorted((p.rect.lo, p.rect.hi, p.ready_time) for p in pieces)
            for mem, pieces in coh.valid.items()
            if pieces
        }

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_sequential_path(self, seed):
        rng = random.Random(seed)
        n = 40
        colors = rng.choice([1, 2, 3, 5])
        tiles = self._tiles(n, colors)
        writes = [
            (rng.randrange(4), rect, rng.random()) for rect in tiles
        ]
        slow = self._random_state(rng, n)
        fast = RegionCoherence()
        fast.written = RectSet(slow.written.rects())
        for mem, pieces in slow.valid.items():
            for p in pieces:
                fast.mark_valid(mem, p.rect, p.ready_time)
        assert self._canonical(slow) == self._canonical(fast)

        for mem, rect, t in writes:
            slow.mark_written(mem, rect, t)
        fast.write_complete(writes)

        assert self._canonical(slow) == self._canonical(fast)
        # Not just the same set: the same pieces in the same order.
        assert slow.written.rects() == fast.written.rects()

    def test_written_union_is_exact(self):
        coh = RegionCoherence()
        coh.mark_written(0, Rect((3,), (9,)), 0.1)
        coh.write_complete([
            (0, Rect((0,), (5,)), 0.2),
            (1, Rect((5,), (10,)), 0.3),
        ])
        covered = RectSet([Rect((0,), (10,))])
        assert covered.subtract(coh.written).is_empty()
        assert coh.written.subtract(covered).is_empty()


# ----------------------------------------------------------------------
# Instance lookup cache + MemoryState versioning
# ----------------------------------------------------------------------
def _mem_state(capacity=1 << 20):
    class _FakeMemory:
        uid = 0
        capacity = 0
        kind = type("K", (), {"value": "fb"})()

    mem = _FakeMemory()
    mem.capacity = capacity
    return MemoryState(mem)


class TestInstanceLookupCache:
    def test_hit_requires_matching_version(self):
        cache = InstanceLookupCache()
        key = (0, 7, Rect((0,), (4,)))
        sentinel = object()
        cache.put(key, sentinel, version=3)
        assert cache.get(key, 3) is sentinel
        assert cache.get(key, 4) is None  # store mutated since
        assert cache.get((0, 8, Rect((0,), (4,))), 3) is None

    def test_overflow_clears_wholesale(self):
        cache = InstanceLookupCache()
        for i in range(InstanceLookupCache.MAX_ENTRIES):
            cache.put((0, i, Rect((0,), (1,))), object(), 0)
        assert len(cache) == InstanceLookupCache.MAX_ENTRIES
        cache.put((1, 0, Rect((0,), (1,))), object(), 0)
        assert len(cache) == 1

    def test_version_bumps_on_alloc_growth_drop_free_lose(self):
        st = _mem_state()
        v0 = st.version
        inst, _, fresh = st.ensure(1, Rect((0,), (8,)), 8)
        assert fresh and st.version > v0

        v1 = st.version
        grown, moved, _ = st.ensure(1, Rect((4,), (16,)), 8)
        assert grown is inst and st.version > v1  # coalesced growth

        v2 = st.version
        st.drop_instance(inst)
        assert st.version > v2

        inst2, _, _ = st.ensure(2, Rect((0,), (4,)), 8)
        v3 = st.version
        st.free_region(2)
        assert st.version > v3

        v4 = st.version
        st.lose()
        assert st.version > v4

    def test_find_hit_does_not_bump(self):
        st = _mem_state()
        st.ensure(1, Rect((0,), (8,)), 8)
        v = st.version
        again, moved, fresh = st.ensure(1, Rect((2,), (6,)), 8)
        assert not fresh and moved == 0
        assert st.version == v  # pure find hit: scan outcome unchanged


# ----------------------------------------------------------------------
# Solve memo: positional signatures, plans, no region pinning
# ----------------------------------------------------------------------
@pytest.fixture
def rt():
    runtime = Runtime(
        laptop().scope(ProcessorKind.GPU, 2), RuntimeConfig.legate()
    )
    with runtime_scope(runtime):
        yield runtime


class TestSolveSignature:
    def test_fresh_regions_share_signatures(self, rt):
        """Iterative-solver shape: fresh uids, identical structure."""
        def sig():
            a = Store.create((10,), np.float64, runtime=rt)
            b = Store.create((10,), np.float64, runtime=rt)
            a.set_key_partition(Tiling(a.region, (0, 5, 10)))
            return solve_signature([a, b], [Align(a, b)], colors=2)

        s1, s2 = sig(), sig()
        assert s1 is not None and s1 == s2

    def test_repartition_changes_signature(self, rt):
        a = Store.create((10,), np.float64, runtime=rt)
        a.set_key_partition(Tiling(a.region, (0, 5, 10)))
        s1 = solve_signature([a], [], colors=2)
        a.set_key_partition(Tiling(a.region, (0, 7, 10)))
        s2 = solve_signature([a], [], colors=2)
        assert s1 is not None and s2 is not None and s1 != s2

    def test_nbytes_distinguishes_largest_member(self, rt):
        a32 = Store.create((10,), np.float32, runtime=rt)
        b = Store.create((10,), np.float64, runtime=rt)
        a64 = Store.create((10,), np.float64, runtime=rt)
        c = Store.create((10,), np.float64, runtime=rt)
        s1 = solve_signature([a32, b], [Align(a32, b)], colors=2)
        s2 = solve_signature([a64, c], [Align(a64, c)], colors=2)
        assert s1 != s2  # the solver picks the largest member's key

    def test_foreign_key_partition_is_uid_pinned(self, rt):
        a = Store.create((10,), np.float64, runtime=rt)
        other = Store.create((10,), np.float64, runtime=rt)
        a.set_key_partition(Tiling(other.region, (0, 5, 10)))
        s1 = solve_signature([a], [], colors=2)
        assert s1 is not None and s1[3][0][3][0] == other.region.uid

    def test_image_and_explicit_not_memoizable(self, rt):
        src = Store.create((10,), np.int64, runtime=rt)
        dst = Store.create((10,), np.float64, runtime=rt)
        con = Image(src, dst, ImageKind.RANGE)
        assert solve_signature([src, dst], [con], 2) is None
        part = Tiling.create(dst.region, 2)
        assert (
            solve_signature([dst], [Explicit(dst, part)], 2) is None
        )

    def test_non_tiling_key_partition_not_memoizable(self, rt):
        a = Store.create((10,), np.float64, runtime=rt)
        a.set_key_partition(Replicate(a.region, 2))
        assert solve_signature([a], [], colors=2) is None

    def test_colors_and_flags_in_signature(self, rt):
        a = Store.create((10,), np.float64, runtime=rt)
        base = solve_signature([a], [], colors=2)
        assert solve_signature([a], [], colors=4) != base
        assert (
            solve_signature([a], [], colors=2, reuse_partitions=False)
            != base
        )


class TestSolutionPlan:
    def test_rebuild_matches_fresh_solve(self, rt):
        a = Store.create((12,), np.float64, runtime=rt)
        b = Store.create((12,), np.float64, runtime=rt)
        c = Store.create((1,), np.float64, runtime=rt)
        cons = [Align(a, b), Broadcast(c)]
        sol = solve_partitions([a, b, c], cons, colors=2)
        plan = solution_plan(sol, [a, b, c])
        assert plan is not None

        # Fresh stores, same structure (an iterative solver's next step).
        a2 = Store.create((12,), np.float64, runtime=rt)
        b2 = Store.create((12,), np.float64, runtime=rt)
        c2 = Store.create((1,), np.float64, runtime=rt)
        rebuilt = rebuild_solution(plan, [a2, b2, c2], colors=2)
        fresh = solve_partitions([a2, b2, c2], cons_for(a2, b2, c2), colors=2)
        for s_new in (a2, b2):
            got = rebuilt[s_new.region.uid]
            want = fresh[s_new.region.uid]
            assert type(got) is type(want) is Tiling
            assert got.boundaries == want.boundaries
            assert got.region is s_new.region
        assert type(rebuilt[c2.region.uid]) is Replicate

    def test_key_rows_return_the_store_key_object(self, rt):
        a = Store.create((10,), np.float64, runtime=rt)
        kp = Tiling(a.region, (0, 5, 10))
        a.set_key_partition(kp)
        sol = solve_partitions([a], [], colors=2)
        plan = solution_plan(sol, [a])
        rebuilt = rebuild_solution(plan, [a], colors=2)
        assert rebuilt[a.region.uid] is kp

    def test_memo_entry_does_not_pin_regions(self, rt):
        """The steady-state regression: cached plans must hold no regions."""
        memo = SolveMemo()
        a = Store.create((10,), np.float64, runtime=rt)
        b = Store.create((10,), np.float64, runtime=rt)
        sig = solve_signature([a, b], [Align(a, b)], colors=2)
        sol = solve_partitions([a, b], [Align(a, b)], colors=2)
        memo.put(sig, solution_plan(sol, [a, b]))
        ref = weakref.ref(a.region)
        del a, b, sol
        gc.collect()
        assert ref() is None, "solve memo kept a region alive"
        assert len(memo) == 1  # the entry itself survives

    def test_memo_bounded(self):
        memo = SolveMemo()
        for i in range(SolveMemo.MAX_ENTRIES):
            memo.put(("sig", i), (("tile", 0, (0, 5, 10)),))
        memo.put(("sig", "overflow"), (("tile", 0, (0, 5, 10)),))
        assert len(memo) == 1


def cons_for(a, b, c):
    return [Align(a, b), Broadcast(c)]


# ----------------------------------------------------------------------
# Image-partition cache: epoch invalidation
# ----------------------------------------------------------------------
class TestImagePartitionCache:
    def _stores(self, rt, crd_vals):
        crd = Store.create(
            (len(crd_vals),), np.int64,
            data=np.asarray(crd_vals, dtype=np.int64), runtime=rt,
        )
        x = Store.create((8,), np.float64, runtime=rt)
        crd.set_key_partition(Tiling.create(crd.region, 2))
        return crd, x

    def test_hit_reproduces_geometry_without_reads(self, rt):
        cache = ImagePartitionCache()
        crd, x = self._stores(rt, [0, 1, 6, 7])
        cons = [Image(crd, x, ImageKind.COORDINATE)]
        sol1 = solve_partitions([crd, x], cons, 2, image_cache=cache)
        assert len(cache) == 1
        sol2 = solve_partitions([crd, x], cons, 2, image_cache=cache)
        p1, p2 = sol1[x.region.uid], sol2[x.region.uid]
        assert p1 is not p2  # rebuilt object, cached geometry
        assert p1._rects == p2._rects
        uncached = solve_partitions([crd, x], cons, 2)
        assert uncached[x.region.uid]._rects == p2._rects

    def test_write_epoch_invalidates(self, rt):
        cache = ImagePartitionCache()
        crd, x = self._stores(rt, [0, 1, 6, 7])
        cons = [Image(crd, x, ImageKind.COORDINATE)]
        before = solve_partitions([crd, x], cons, 2, image_cache=cache)
        # A task write to the source: new coordinates, bumped epoch
        # (the runtime bumps on every written requirement).
        crd.region.data[:] = np.asarray([2, 3, 4, 5], dtype=np.int64)
        cache.bump(crd.region.uid)
        after = solve_partitions([crd, x], cons, 2, image_cache=cache)
        assert before[x.region.uid]._rects != after[x.region.uid]._rects
        fresh = solve_partitions([crd, x], cons, 2)
        assert fresh[x.region.uid]._rects == after[x.region.uid]._rects

    def test_values_hold_no_partition_objects(self, rt):
        cache = ImagePartitionCache()
        crd, x = self._stores(rt, [0, 1, 6, 7])
        solve_partitions(
            [crd, x], [Image(crd, x, ImageKind.COORDINATE)], 2, image_cache=cache,
        )
        def flat(v):
            if isinstance(v, (tuple, list)):
                for item in v:
                    yield from flat(item)
            else:
                yield v
        for value in cache._entries.values():
            for leaf in flat(value):
                assert isinstance(leaf, (Rect, int)), leaf

    def test_clear_keeps_epochs(self):
        cache = ImagePartitionCache()
        cache.bump(7)
        cache.put(("k",), (Rect((0,), (1,)),))
        cache.clear()
        assert len(cache) == 0 and cache.epochs == {7: 1}


# ----------------------------------------------------------------------
# Batched-write eligibility
# ----------------------------------------------------------------------
class _FakeTask:
    def __init__(self, requirements):
        self.requirements = requirements


class TestEligibleWriteReqs:
    def _region_and_tiling(self, rt, n=10, colors=2):
        s = Store.create((n,), np.float64, runtime=rt)
        return s.region, Tiling.create(s.region, colors)

    def test_single_tiled_writer_is_eligible(self, rt):
        region, part = self._region_and_tiling(rt)
        task = _FakeTask([
            Requirement("out", region, part, Privilege.WRITE_DISCARD),
        ])
        assert set(eligible_write_reqs(task, False, set())) == {"out"}

    def test_aligned_read_companion_allowed(self, rt):
        region, part = self._region_and_tiling(rt)
        task = _FakeTask([
            Requirement("in", region, part, Privilege.READ),
            Requirement("out", region, part, Privilege.WRITE),
        ])
        assert set(eligible_write_reqs(task, False, set())) == {"out"}

    def test_misaligned_read_companion_blocks(self, rt):
        region, part = self._region_and_tiling(rt)
        other = Tiling(region, (0, 3, 10))
        task = _FakeTask([
            Requirement("in", region, other, Privilege.READ),
            Requirement("out", region, part, Privilege.WRITE),
        ])
        assert eligible_write_reqs(task, False, set()) == {}

    def test_replicate_companion_blocks(self, rt):
        region, part = self._region_and_tiling(rt)
        task = _FakeTask([
            Requirement("in", region, Replicate(region, 2), Privilege.READ),
            Requirement("out", region, part, Privilege.WRITE),
        ])
        assert eligible_write_reqs(task, False, set()) == {}

    def test_two_writers_block(self, rt):
        region, part = self._region_and_tiling(rt)
        task = _FakeTask([
            Requirement("a", region, part, Privilege.WRITE),
            Requirement("b", region, part, Privilege.WRITE_DISCARD),
        ])
        assert eligible_write_reqs(task, False, set()) == {}

    def test_reduce_blocks(self, rt):
        region, part = self._region_and_tiling(rt)
        task = _FakeTask([
            Requirement("acc", region, part, Privilege.REDUCE),
        ])
        assert eligible_write_reqs(task, False, set()) == {}

    def test_foreign_region_tiling_blocks(self, rt):
        region, _ = self._region_and_tiling(rt)
        other_region, other_part = self._region_and_tiling(rt)
        foreign = Tiling(other_region, other_part.boundaries)
        task = _FakeTask([
            Requirement("out", region, foreign, Privilege.WRITE),
        ])
        assert eligible_write_reqs(task, False, set()) == {}

    def test_replay_of_freed_region_skipped(self, rt):
        region, part = self._region_and_tiling(rt)
        task = _FakeTask([
            Requirement("out", region, part, Privilege.WRITE),
        ])
        assert eligible_write_reqs(task, True, {region.uid}) == {}
        assert set(eligible_write_reqs(task, False, {region.uid})) == {"out"}


# ----------------------------------------------------------------------
# End-to-end bitwise neutrality
# ----------------------------------------------------------------------
def _cg_pair(procs=2, nodes=1, validate=False, chaos=None, grid=GRID):
    """One CG solve per mode; returns {mode: (x, modeled, runtime)}."""
    out = {}
    for fastpath in (True, False):
        rt = Runtime(
            summit(nodes=nodes).scope(
                ProcessorKind.GPU, procs, per_node=min(procs, 2)
            ),
            RuntimeConfig.legate(
                fastpath=fastpath, validate=validate, chaos=chaos
            ),
        )
        with runtime_scope(rt):
            A = sp.csr_matrix(poisson2d_scipy(grid))
            b = rnp.ones(grid * grid)
            sp.linalg.cg(A, b, rtol=0.0, maxiter=1)  # warm-up
            t0 = rt.barrier()
            x, _ = sp.linalg.cg(A, b, rtol=0.0, maxiter=ITERS)
            t1 = rt.barrier()
            out[fastpath] = (x.to_numpy().copy(), t1 - t0, rt)
    return out


def _assert_pair_identical(pair):
    x_on, t_on, _ = pair[True]
    x_off, t_off, _ = pair[False]
    np.testing.assert_array_equal(x_on, x_off)
    assert t_on == t_off


class TestBitwiseNeutrality:
    def test_cg_identical_and_checker_clean(self):
        pair = _cg_pair(validate=True)
        _assert_pair_identical(pair)
        for mode in (True, False):
            rt = pair[mode][2]
            assert not check_log(rt.event_log), f"fastpath={mode} not clean"
        # Same event-log shape, on vs off (uids differ run to run, so
        # compare counts per kind, not raw lines).
        assert pair[True][2].event_log.stats() == pair[False][2].event_log.stats()
        counters = pair[True][2].profiler.fastpath_counters
        assert counters["batched_writes"] > 0
        assert counters["solve_hits"] > 0

    def test_spill_and_eviction_identical(self):
        """Over-capacity run: spill/evict churn must not diverge modes."""
        machine = Machine(MachineConfig(
            nodes=1, sockets_per_node=1, gpus_per_node=2,
            gpu_memory=1 << 20, sysmem_per_node=2 << 30,
        ))
        results = {}
        for fastpath in (True, False):
            rt = Runtime(
                machine.scope(ProcessorKind.GPU, 1),
                RuntimeConfig.legate(fastpath=fastpath),
            )
            with runtime_scope(rt):
                n = 30_000
                arrays = []
                for i in range(6):
                    arrays.append(rnp.full(n, float(i + 1)))
                    rt.barrier()
                total = rnp.zeros(n)
                rt.barrier()
                for a in arrays:
                    total = total + a
                    rt.barrier()
                t = rt.barrier()
                results[fastpath] = (total.to_numpy().copy(), t, rt.profiler)
            assert rt.profiler.evictions + rt.profiler.spills > 0
        np.testing.assert_array_equal(results[True][0], results[False][0])
        assert results[True][1] == results[False][1]
        for attr in ("evictions", "spills", "eviction_bytes", "spill_bytes"):
            assert getattr(results[True][2], attr) == getattr(
                results[False][2], attr
            ), attr

    def test_gpu_loss_replay_identical(self):
        baseline = _cg_pair()
        _assert_pair_identical(baseline)
        _, t_model, _ = baseline[True]
        chaos = ChaosConfig(
            checkpoint_every=16,
            losses=(LossSchedule("gpu", 1, t_model / 2),),
        )
        pair = _cg_pair(chaos=chaos)
        _assert_pair_identical(pair)
        np.testing.assert_array_equal(baseline[True][0], pair[True][0])
        for mode in (True, False):
            rt = pair[mode][2]
            assert rt.profiler.faults_injected["gpu-loss"] == 1
            assert rt.profiler.tasks_reexecuted > 0

    def test_node_loss_replay_identical(self):
        baseline = _cg_pair(procs=2, nodes=2)
        _, t_model, _ = baseline[True]
        chaos = ChaosConfig(
            checkpoint_every=16,
            losses=(LossSchedule("node", 1, t_model / 2),),
        )
        pair = _cg_pair(procs=2, nodes=2, chaos=chaos)
        _assert_pair_identical(pair)
        np.testing.assert_array_equal(baseline[True][0], pair[True][0])
        assert pair[True][2].profiler.tasks_reexecuted > 0

    def test_validate_mode_with_chaos_identical(self):
        _, t_model, _ = _cg_pair()[True]
        chaos = ChaosConfig(
            checkpoint_every=16,
            losses=(LossSchedule("gpu", 1, t_model / 2),),
        )
        pair = _cg_pair(validate=True, chaos=chaos)
        _assert_pair_identical(pair)
        for mode in (True, False):
            assert not check_log(pair[mode][2].event_log)

    def test_paper_config_pins_fastpath_off(self):
        from repro.harness.config import paper_legate

        assert paper_legate().fastpath is False
        assert RuntimeConfig.legate().fastpath is True
