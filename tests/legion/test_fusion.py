"""Tests for automatic task fusion: the deferred launch window.

Covers the planner's legality rules in isolation, the runtime's window
mechanics (what defers, what flushes), temporary elision, bitwise
equivalence of fused vs. unfused execution, and composition with trace
capture/replay.
"""

from types import SimpleNamespace

import numpy as np
import pytest

import repro.numeric as rnp
import repro.sparse as sp
from repro.legion import (
    Pointwise,
    Privilege,
    Replicate,
    Requirement,
    Runtime,
    RuntimeConfig,
    TaskLaunch,
    Tiling,
    Trace,
    fusion,
)
from repro.legion.runtime import runtime_scope
from repro.machine import ProcessorKind, laptop


@pytest.fixture
def rt():
    machine = laptop()
    runtime = Runtime(machine.scope(ProcessorKind.GPU, 2), RuntimeConfig.legate())
    with runtime_scope(runtime):
        yield runtime


def region(uid):
    return SimpleNamespace(uid=uid)


def acc(uid, kind="tile", priv=Privilege.READ, boundaries=(0, 4, 8)):
    return fusion.Access(
        region(uid), kind, boundaries if kind == "tile" else None, priv
    )


def summ(name, *accesses, colors=2, fusible=True):
    return fusion.LaunchSummary(name, colors, fusible, tuple(accesses))


class TestPlanner:
    def test_compatible_run_fuses(self):
        window = [
            summ("a", acc(1, priv=Privilege.WRITE_DISCARD), acc(2)),
            summ("b", acc(3, priv=Privilege.WRITE_DISCARD), acc(1)),
        ]
        (plan,) = fusion.plan_window(window)
        assert plan.indices == (0, 1)
        assert plan.fused

    def test_mismatched_boundaries_split(self):
        window = [
            summ("a", acc(1, priv=Privilege.WRITE_DISCARD)),
            summ("b", acc(2, priv=Privilege.WRITE_DISCARD, boundaries=(0, 3, 8))),
        ]
        plans = fusion.plan_window(window)
        assert [p.indices for p in plans] == [(0,), (1,)]

    def test_mismatched_colors_split(self):
        window = [
            summ("a", acc(1, priv=Privilege.WRITE_DISCARD)),
            summ("b", acc(2, priv=Privilege.WRITE_DISCARD), colors=4),
        ]
        plans = fusion.plan_window(window)
        assert [p.indices for p in plans] == [(0,), (1,)]

    def test_nonfusible_breaks_run(self):
        window = [
            summ("a", acc(1, priv=Privilege.WRITE_DISCARD)),
            summ("spmv", acc(2, kind="other"), fusible=False),
            summ("b", acc(3, priv=Privilege.WRITE_DISCARD)),
        ]
        plans = fusion.plan_window(window)
        assert [p.indices for p in plans] == [(0,), (1,), (2,)]

    def test_replicate_read_after_group_write_splits(self):
        window = [
            summ("w", acc(1, priv=Privilege.WRITE_DISCARD)),
            summ("r", acc(2, priv=Privilege.WRITE_DISCARD), acc(1, kind="rep")),
        ]
        plans = fusion.plan_window(window)
        assert [p.indices for p in plans] == [(0,), (1,)]

    def test_write_after_replicate_read_splits(self):
        window = [
            summ("r", acc(2, priv=Privilege.WRITE_DISCARD), acc(1, kind="rep")),
            summ("w", acc(1, priv=Privilege.WRITE)),
        ]
        plans = fusion.plan_window(window)
        assert [p.indices for p in plans] == [(0,), (1,)]

    def test_replicate_read_of_unwritten_region_fuses(self):
        window = [
            summ("a", acc(1, priv=Privilege.WRITE_DISCARD), acc(9, kind="rep")),
            summ("b", acc(2, priv=Privilege.WRITE_DISCARD), acc(9, kind="rep")),
        ]
        (plan,) = fusion.plan_window(window)
        assert plan.indices == (0, 1)

    def test_temporary_elided(self):
        # t = f(x); y = g(t): t is produced and consumed inside the group.
        window = [
            summ("f", acc(5, priv=Privilege.WRITE_DISCARD), acc(1)),
            summ("g", acc(6, priv=Privilege.WRITE_DISCARD), acc(5)),
        ]
        ids = fusion.local_ids(window)
        (plan,) = fusion.plan_window(window)
        assert plan.elide == frozenset({ids[5]})

    def test_input_not_elided(self):
        # x is read first: it pre-exists the group, so it must be mapped.
        window = [
            summ("f", acc(5, priv=Privilege.WRITE_DISCARD), acc(1)),
            summ("g", acc(6, priv=Privilege.WRITE_DISCARD), acc(1)),
        ]
        (plan,) = fusion.plan_window(window)
        assert plan.elide == frozenset()

    def test_signature_is_structural(self):
        """Windows over different regions with the same access pattern
        share a signature — the memoization key."""
        w1 = [
            summ("f", acc(10, priv=Privilege.WRITE_DISCARD), acc(11)),
            summ("g", acc(12, priv=Privilege.WRITE_DISCARD), acc(10)),
        ]
        w2 = [
            summ("f", acc(70, priv=Privilege.WRITE_DISCARD), acc(71)),
            summ("g", acc(72, priv=Privilege.WRITE_DISCARD), acc(70)),
        ]
        assert fusion.signature(w1) == fusion.signature(w2)
        assert fusion.signature(w1) != fusion.signature(list(reversed(w2)))

    def test_fused_name_truncates(self):
        name = fusion.fused_name(["x" * 200, "y"])
        assert name.startswith("fused{2}:")
        assert len(name) <= len("fused{2}:") + fusion.MAX_FUSED_NAME


class TestWindowMechanics:
    def test_pointwise_launch_defers(self, rt):
        a = rnp.ones(64)
        assert len(rt._window) >= 1  # the fill is buffered, not executed
        b = a * 2.0
        assert any("multiply" in t.name for t in rt._window)
        rt.barrier()
        assert rt._window == []
        np.testing.assert_array_equal(b.to_numpy(), np.full(64, 2.0))

    def test_barrier_flushes_and_fuses(self, rt):
        snap = rt.profiler.snapshot()
        a = rnp.ones(64)
        b = a * 2.0
        rt.barrier()
        delta = rt.profiler.since(snap)
        assert delta.fused_tasks == 1
        assert delta.tasks_fused_away == 1
        assert rt.fusion_log[-1][0] == ("fill", "multiply")

    def test_window_overflow_flushes(self, rt):
        x = rnp.ones(32)
        rt.barrier()
        before = len(rt.fusion_log)
        for _ in range(rt.config.fusion_window + 1):
            x = x + 1.0
        assert len(rt.fusion_log) > before  # overflow forced a flush
        assert len(rt._window) >= 1  # the remainder is still deferred

    def test_nonfusible_launch_flushes_first(self, rt):
        A = sp.eye(32, format="csr")
        x = rnp.ones(32)
        y = A @ x  # image-constrained SpMV: flushes, then runs eagerly
        assert any("fill" in names for names, _, _ in rt.fusion_log)
        np.testing.assert_array_equal(y.to_numpy(), np.ones(32))

    def test_store_data_syncs(self, rt):
        a = rnp.ones(16)
        b = a + 3.0
        np.testing.assert_array_equal(b.store.data, np.full(16, 4.0))
        assert rt._window == []

    def test_scope_exit_flushes(self):
        machine = laptop()
        runtime = Runtime(
            machine.scope(ProcessorKind.GPU, 2), RuntimeConfig.legate()
        )
        with runtime_scope(runtime):
            a = rnp.ones(16)
            b = a * 5.0
        assert runtime._window == []
        np.testing.assert_array_equal(b.to_numpy(), np.full(16, 5.0))

    def test_fusion_off_is_eager(self):
        machine = laptop()
        runtime = Runtime(
            machine.scope(ProcessorKind.GPU, 2),
            RuntimeConfig.legate(fusion=False),
        )
        with runtime_scope(runtime):
            snap = runtime.profiler.snapshot()
            a = rnp.ones(16)
            assert runtime._window == []
            b = a * 2.0
            delta = runtime.profiler.since(snap)
            assert delta.tasks_launched == 2
            assert delta.fused_tasks == 0
            assert runtime.fusion_log == []

    def test_accelerated_presets_disable_fusion(self):
        assert RuntimeConfig.legate().fusion
        assert not RuntimeConfig.cupy().fusion
        assert not RuntimeConfig.scipy().fusion

    def test_elision_counted_and_cached(self, rt):
        x = rnp.array(np.arange(16.0))
        rt.barrier()

        def chain(v):
            snap = rt.profiler.snapshot()
            t = v * 2.0  # temporary: produced and consumed in-window
            out = t + 1.0
            rt.barrier()
            return out, rt.profiler.since(snap)

        out, delta = chain(x)
        assert delta.fused_tasks == 1
        assert delta.regions_elided >= 1
        np.testing.assert_array_equal(out.to_numpy(), np.arange(16.0) * 2.0 + 1.0)
        # Same window shape again: the plan comes from the cache and the
        # counters move identically.
        cached = len(rt._fusion_cache)
        out2, delta2 = chain(out)
        assert len(rt._fusion_cache) == cached
        assert delta2.fused_tasks == delta.fused_tasks
        assert delta2.regions_elided == delta.regions_elided

    def test_elided_temporary_maps_no_instance(self, rt):
        x = rnp.array(np.ones(64))
        rt.barrier()
        mem = rt.scope.processors[0].memory
        used_before = rt.instances.used_bytes(mem)
        t = x * 2.0
        y = t + 1.0
        rt.barrier()
        used_after = rt.instances.used_bytes(mem)
        # x's shard is staged in and y's shard is mapped (256 B each on
        # this GPU); the temporary t never gets an instance (768 B if
        # it did).
        assert used_after - used_before == pytest.approx(2 * 32 * 8)
        np.testing.assert_array_equal(y.to_numpy(), np.full(64, 3.0))


class TestManualFuse:
    def test_fused_kernel_is_bitwise_identical(self, rt):
        rng = np.random.default_rng(7)
        data = rng.random(100)
        inp = rt.create_region((100,), np.float64, data=data.copy())
        mid = rt.create_region((100,), np.float64)
        out = rt.create_region((100,), np.float64)

        def times2(ctx):
            ctx.view("o")[...] = 2.0 * ctx.view("i")

        def plus1(ctx):
            ctx.view("o")[...] = ctx.view("i") + 1.0

        def make(name, kernel, o, i):
            return TaskLaunch(
                name,
                [
                    Requirement(
                        "o", o, Tiling.create(o, 2), Privilege.WRITE_DISCARD
                    ),
                    Requirement("i", i, Tiling.create(i, 2), Privilege.READ),
                ],
                kernel,
                pointwise=Pointwise((name,)),
            )

        group = [make("times2", times2, mid, inp), make("plus1", plus1, out, mid)]
        merged = fusion.fuse(group, frozenset({mid.uid}))
        assert merged.name == "fused{2}:times2+plus1"
        assert [r.elide for r in merged.requirements] == [True, False, False, True]
        rt._execute(merged)
        np.testing.assert_array_equal(out.data, 2.0 * data + 1.0)

    def test_rep_read_requirement_survives_fuse(self, rt):
        inp = rt.create_region((8,), np.float64, data=np.arange(8.0))
        out = rt.create_region((8,), np.float64)

        def bcast_sum(ctx):
            ctx.view("o")[...] = ctx.view("i").sum()

        task = TaskLaunch(
            "bsum",
            [
                Requirement(
                    "o", out, Tiling.create(out, 2), Privilege.WRITE_DISCARD
                ),
                Requirement("i", inp, Replicate(inp, 2), Privilege.READ),
            ],
            bcast_sum,
            pointwise=Pointwise(("bsum",)),
        )
        merged = fusion.fuse([task, task], frozenset())
        rt._execute(merged)
        np.testing.assert_array_equal(out.data, np.full(8, 28.0))


def _cg_workload():
    from repro.apps.poisson import poisson2d_scipy

    A = sp.csr_matrix(poisson2d_scipy(12))
    b = rnp.ones(A.shape[0])
    x, info = sp.linalg.cg(A, b, rtol=0.0, maxiter=5)
    return x, info


def _run(workload, fused: bool, validate: bool = False):
    machine = laptop()
    runtime = Runtime(
        machine.scope(ProcessorKind.GPU, 2),
        RuntimeConfig.legate(fusion=fused, validate=validate),
    )
    with runtime_scope(runtime):
        result = workload()
        runtime.barrier()
    return result, runtime


class TestBitwiseEquivalence:
    def test_cg_identical(self):
        (x_fused, info_f), rt_f = _run(_cg_workload, fused=True)
        (x_eager, info_e), rt_e = _run(_cg_workload, fused=False)
        assert info_f == info_e
        np.testing.assert_array_equal(x_fused.to_numpy(), x_eager.to_numpy())
        assert rt_f.profiler.fused_tasks > 0

    def test_cg_fewer_launches_lower_overhead(self):
        _, rt_f = _run(_cg_workload, fused=True)
        _, rt_e = _run(_cg_workload, fused=False)
        assert rt_f.profiler.tasks_launched <= 0.7 * rt_e.profiler.tasks_launched
        assert (
            rt_f.profiler.launch_overhead_seconds
            < rt_e.profiler.launch_overhead_seconds
        )

    def test_lazy_chain_identical(self):
        def workload():
            xs = np.linspace(0.0, 1.0, 200)
            x = rnp.array(xs.copy())
            b = rnp.array(np.cos(xs))
            y = (x * 2.0 + b) * b - x / (b + 2.0)
            return y.to_numpy()

        y_fused, _ = _run(workload, fused=True)
        y_eager, _ = _run(workload, fused=False)
        np.testing.assert_array_equal(y_fused, y_eager)

    def test_event_log_identical_modulo_elided(self):
        """Fused runs move no *more* data and the same data classes;
        the only copies that disappear are those for elided temporaries
        and merged staging."""
        (x_f, _), rt_f = _run(_cg_workload, fused=True, validate=True)
        (x_e, _), rt_e = _run(_cg_workload, fused=False, validate=True)
        np.testing.assert_array_equal(x_f.to_numpy(), x_e.to_numpy())
        from repro.analysis.events import AllreduceEvent, CopyEvent

        fused_copies = [
            e for e in rt_f.event_log.events if isinstance(e, CopyEvent)
        ]
        eager_copies = [
            e for e in rt_e.event_log.events if isinstance(e, CopyEvent)
        ]
        assert len(fused_copies) <= len(eager_copies)
        assert sum(e.nbytes for e in fused_copies) <= sum(
            e.nbytes for e in eager_copies
        )
        # The scalar allreduce sequence (CG's dots and norms) is
        # untouched by fusion.
        fused_all = [
            (e.op, e.participants)
            for e in rt_f.event_log.events
            if isinstance(e, AllreduceEvent)
        ]
        eager_all = [
            (e.op, e.participants)
            for e in rt_e.event_log.events
            if isinstance(e, AllreduceEvent)
        ]
        assert fused_all == eager_all


class TestTraceComposition:
    def test_fused_window_replays(self, rt):
        """Fused launches record deterministic names, so a fused loop
        body still captures once and replays thereafter."""
        x = rnp.ones(64)
        rt.barrier()
        trace = Trace(rt, "axpy-loop")
        for _ in range(4):
            with trace:
                x = x * 0.5 + 1.0
        assert trace.captures == 1
        assert trace.replays == 3
        assert rt.profiler.fused_tasks >= 4
