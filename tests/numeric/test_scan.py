"""Distributed prefix-sum tests (the two-phase parallel scan)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.numeric as rnp
from repro.legion import Runtime, RuntimeConfig
from repro.legion.runtime import runtime_scope
from repro.machine import ProcessorKind, laptop


class TestCumsum:
    def test_matches_numpy(self, rt):
        data = np.arange(1.0, 33.0)
        out = rnp.cumsum(rnp.array(data))
        np.testing.assert_allclose(out.to_numpy(), np.cumsum(data))

    def test_integer_dtype_widens(self, rt):
        data = np.ones(10, dtype=np.int64)
        out = rnp.cumsum(rnp.array(data))
        assert out.dtype == np.int64
        np.testing.assert_array_equal(out.to_numpy(), np.arange(1, 11))

    def test_method_form(self, rt):
        a = rnp.array(np.array([3.0, 1.0, 4.0]))
        np.testing.assert_allclose(a.cumsum().to_numpy(), [3, 4, 8])

    def test_single_element(self, rt):
        out = rnp.cumsum(rnp.array(np.array([7.0])))
        np.testing.assert_allclose(out.to_numpy(), [7.0])

    def test_2d_rejected(self, rt):
        with pytest.raises(ValueError):
            rnp.cumsum(rnp.ones((2, 2)))


class TestExclusiveScan:
    def test_shifted_by_one(self, rt):
        data = np.array([2, 3, 5, 7], dtype=np.int64)
        excl, total = rnp.exclusive_scan(rnp.array(data))
        np.testing.assert_array_equal(excl.to_numpy(), [0, 2, 5, 10])
        assert int(total) == 17

    def test_zero_counts(self, rt):
        data = np.zeros(6, dtype=np.int64)
        excl, total = rnp.exclusive_scan(rnp.array(data))
        np.testing.assert_array_equal(excl.to_numpy(), np.zeros(6))
        assert int(total) == 0

    def test_pos_construction_pattern(self, rt):
        """The sparse library's usage: counts -> (lo, hi) ranges."""
        counts = np.array([2, 0, 3, 1], dtype=np.int64)
        excl, total = rnp.exclusive_scan(rnp.array(counts))
        lo = excl.to_numpy()
        hi = lo + counts
        assert list(lo) == [0, 2, 2, 5]
        assert list(hi) == [2, 2, 5, 6]
        assert int(total) == 6


class TestScanProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        data=st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=64),
        procs=st.integers(min_value=1, max_value=2),
    )
    def test_property_matches_numpy(self, data, procs):
        runtime = Runtime(
            laptop().scope(ProcessorKind.GPU, procs), RuntimeConfig.legate()
        )
        with runtime_scope(runtime):
            arr = rnp.array(np.array(data, dtype=np.int64))
            np.testing.assert_array_equal(
                rnp.cumsum(arr).to_numpy(), np.cumsum(data)
            )
            excl, total = rnp.exclusive_scan(arr)
            expected = np.concatenate([[0], np.cumsum(data)[:-1]])
            np.testing.assert_array_equal(excl.to_numpy(), expected)
            assert int(total) == sum(data)
