"""Tests for expression-template task fusion."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.numeric as rnp
from repro.numeric.lazy import LazyExpr, evaluate, lazy


class TestFusion:
    def test_single_launch(self, rt):
        x = rnp.array(np.arange(8.0))
        b = rnp.array(np.ones(8))
        rt.barrier()  # flush the two array-upload fills first
        snap = rt.profiler.snapshot()
        evaluate(lazy(x) * 2.0 + lazy(b) - 0.5)
        rt.barrier()  # flush the deferred window before counting
        assert rt.profiler.since(snap).tasks_launched == 1

    def test_matches_unfused(self, rt):
        rng = np.random.default_rng(0)
        xs = rng.random(32)
        bs = rng.random(32) + 1.0
        x, b = rnp.array(xs), rnp.array(bs)
        fused = evaluate((lazy(x) + 1.0) * lazy(b).sqrt() - lazy(x) / lazy(b))
        expected = (xs + 1.0) * np.sqrt(bs) - xs / bs
        np.testing.assert_allclose(fused.to_numpy(), expected, rtol=1e-14)

    def test_unary_chain(self, rt):
        x = rnp.array(np.array([0.5, 1.0, 2.0]))
        out = evaluate(abs(-(lazy(x).exp())))
        np.testing.assert_allclose(out.to_numpy(), np.exp([0.5, 1.0, 2.0]))

    def test_deferred_scalar_operand(self, rt):
        x = rnp.array(np.array([3.0, 4.0]))
        nrm = rnp.linalg.norm(x)  # deferred Scalar
        out = evaluate(lazy(x) / nrm)
        np.testing.assert_allclose(out.to_numpy(), [0.6, 0.8])

    def test_repeated_leaf_loaded_once(self, rt):
        x = rnp.array(np.arange(4.0))
        expr = lazy(x) * lazy(x) + lazy(x)
        assert len(expr.leaves()) == 1
        np.testing.assert_allclose(
            evaluate(expr).to_numpy(), np.arange(4.0) ** 2 + np.arange(4.0)
        )

    def test_op_count(self, rt):
        x = rnp.array(np.ones(4))
        expr = (lazy(x) + 1.0) * 2.0 - lazy(x)
        assert expr.op_count() == 3

    def test_evaluate_method(self, rt):
        x = rnp.array(np.arange(3.0))
        np.testing.assert_allclose(
            (lazy(x) * 3.0).evaluate().to_numpy(), [0, 3, 6]
        )

    def test_shape_mismatch_rejected(self, rt):
        with pytest.raises(ValueError):
            evaluate(lazy(rnp.ones(3)) + lazy(rnp.ones(4)))

    def test_scalar_only_rejected(self, rt):
        with pytest.raises(ValueError):
            evaluate(LazyExpr("scalar", (1.0,)))

    def test_non_array_rejected(self, rt):
        with pytest.raises(TypeError):
            lazy(np.ones(3))

    def test_complex_dtype(self, rt):
        z = rnp.array(np.array([1 + 1j, 2 - 1j]))
        out = evaluate(lazy(z).conj() * lazy(z)) if hasattr(lazy(z), "conj") else None
        # conj isn't exposed as a method; use the square pathway instead.
        out = evaluate(lazy(z) * lazy(z))
        np.testing.assert_allclose(
            out.to_numpy(), np.array([1 + 1j, 2 - 1j]) ** 2
        )

    def test_fusion_reduces_simulated_time(self, rt):
        x = rnp.array(np.ones(64))
        b = rnp.array(np.ones(64))
        # Warm-up both paths.
        evaluate(lazy(x) * 2.0 + lazy(b) - 0.5)
        _ = x * 2.0 + b - 0.5
        t0 = rt.barrier()
        for _ in range(10):
            evaluate(lazy(x) * 2.0 + lazy(b) - 0.5)
        t_fused = rt.barrier() - t0
        t0 = rt.barrier()
        for _ in range(10):
            _ = x * 2.0 + b - 0.5
        t_unfused = rt.barrier() - t0
        assert t_fused < t_unfused


class TestFusionProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 1000),
        coeffs=st.lists(
            st.floats(min_value=-3, max_value=3, allow_nan=False), min_size=1, max_size=5
        ),
    )
    def test_fused_axpy_chain_matches_numpy(self, rt_module, seed, coeffs):
        rng = np.random.default_rng(seed)
        xs = rng.random(24)
        x = rnp.array(xs)
        expr = lazy(x)
        expected = xs.copy()
        for c in coeffs:
            expr = expr * c + lazy(x)
            expected = expected * c + xs
        np.testing.assert_allclose(
            evaluate(expr).to_numpy(), expected, rtol=1e-12, atol=1e-12
        )
