"""Reverse-mode autodiff tests: analytic and finite-difference checks."""

import numpy as np
import pytest

import repro.numeric as rnp
from repro.numeric.autograd import DifferentiationError, grad
from repro.numeric.lazy import LazyExpr, lazy


def finite_difference(f, x: np.ndarray, eps=1e-6) -> np.ndarray:
    out = np.zeros_like(x)
    for i in range(len(x)):
        up, down = x.copy(), x.copy()
        up[i] += eps
        down[i] -= eps
        out[i] = (f(up) - f(down)) / (2 * eps)
    return out


class TestAnalytic:
    def test_quadratic(self, rt):
        xs = np.array([1.0, -2.0, 3.0])
        x = rnp.array(xs)
        loss, (g,) = grad(lazy(x) * lazy(x), wrt=[x])
        assert float(loss) == pytest.approx((xs**2).sum())
        np.testing.assert_allclose(g.to_numpy(), 2 * xs, rtol=1e-12)

    def test_mf_residual_gradient(self, rt):
        """The paper's generated gradient, rederived: d/dp sum((p-r)^2)."""
        rng = np.random.default_rng(0)
        preds = rng.random(16)
        obs = rng.random(16)
        p, r = rnp.array(preds), rnp.array(obs)
        diff = lazy(p) - lazy(r)
        loss, (gp,) = grad(diff * diff, wrt=[p])
        np.testing.assert_allclose(gp.to_numpy(), 2 * (preds - obs), rtol=1e-12)
        assert float(loss) == pytest.approx(((preds - obs) ** 2).sum())

    def test_division_rule(self, rt):
        xs = np.array([1.0, 2.0, 4.0])
        x = rnp.array(xs)
        ones = rnp.ones(3)
        _, (g,) = grad(lazy(ones) / lazy(x), wrt=[x])
        np.testing.assert_allclose(g.to_numpy(), -1.0 / xs**2, rtol=1e-12)

    def test_chain_rule_exp_log(self, rt):
        xs = np.array([0.5, 1.0, 1.5])
        x = rnp.array(xs)
        _, (g,) = grad(lazy(x).exp() * 2.0, wrt=[x])
        np.testing.assert_allclose(g.to_numpy(), 2 * np.exp(xs), rtol=1e-12)

    def test_pow_constant_exponent(self, rt):
        xs = np.array([1.0, 2.0, 3.0])
        x = rnp.array(xs)
        _, (g,) = grad(lazy(x) ** 3.0, wrt=[x])
        np.testing.assert_allclose(g.to_numpy(), 3 * xs**2, rtol=1e-12)

    def test_repeated_leaf_accumulates(self, rt):
        xs = np.array([1.0, 2.0])
        x = rnp.array(xs)
        # f = x*x + x  -> f' = 2x + 1
        _, (g,) = grad(lazy(x) * lazy(x) + lazy(x), wrt=[x])
        np.testing.assert_allclose(g.to_numpy(), 2 * xs + 1, rtol=1e-12)

    def test_multiple_wrt(self, rt):
        a = rnp.array(np.array([1.0, 2.0]))
        b = rnp.array(np.array([3.0, 4.0]))
        _, (ga, gb) = grad(lazy(a) * lazy(b), wrt=[a, b])
        np.testing.assert_allclose(ga.to_numpy(), [3.0, 4.0])
        np.testing.assert_allclose(gb.to_numpy(), [1.0, 2.0])


class TestFiniteDifference:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_expression(self, rt, seed):
        rng = np.random.default_rng(seed)
        xs = rng.random(8) + 0.5
        bs = rng.random(8) + 0.5
        x = rnp.array(xs)
        b = rnp.array(bs)
        expr = (lazy(x) * 2.0 + lazy(b)).sqrt() * lazy(x) - lazy(x) / lazy(b)
        _, (g,) = grad(expr, wrt=[x])

        def f(v):
            return float(np.sum(np.sqrt(v * 2 + bs) * v - v / bs))

        np.testing.assert_allclose(
            g.to_numpy(), finite_difference(f, xs), rtol=1e-5, atol=1e-7
        )


class TestErrors:
    def test_wrt_not_in_expression(self, rt):
        x = rnp.ones(3)
        other = rnp.ones(3)
        with pytest.raises(DifferentiationError):
            grad(lazy(x) * 2.0, wrt=[other])

    def test_variable_exponent_rejected(self, rt):
        x = rnp.ones(3)
        with pytest.raises(DifferentiationError):
            grad(lazy(x) ** lazy(x), wrt=[x])

    def test_non_expression_rejected(self, rt):
        with pytest.raises(TypeError):
            grad(rnp.ones(3), wrt=[])


class TestTrainingLoop:
    def test_gradient_descent_converges(self, rt):
        """Fit y = w * x with autograd gradients (one-parameter-per-
        element least squares; closed form w = y/x)."""
        rng = np.random.default_rng(3)
        xs = rng.random(32) + 0.5
        ys = 3.0 * xs
        x, y = rnp.array(xs), rnp.array(ys)
        w = rnp.ones(32)
        for _ in range(60):
            resid = lazy(w) * lazy(x) - lazy(y)
            _, (gw,) = grad(resid * resid, wrt=[w])
            w = w - gw * 0.3
        np.testing.assert_allclose(w.to_numpy(), np.full(32, 3.0), rtol=1e-3)
