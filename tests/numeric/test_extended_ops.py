"""Tests for the extended dense API: comparisons, where, argmax, etc."""

import numpy as np
import pytest

import repro.numeric as rnp


class TestComparisons:
    def test_operators_return_bool_arrays(self, rt):
        a = rnp.array(np.array([1.0, 5.0, 3.0]))
        b = rnp.array(np.array([2.0, 5.0, 1.0]))
        lt = a < b
        assert lt.dtype == np.bool_
        np.testing.assert_array_equal(lt.to_numpy(), [True, False, False])
        np.testing.assert_array_equal((a <= b).to_numpy(), [True, True, False])
        np.testing.assert_array_equal((a > b).to_numpy(), [False, False, True])
        np.testing.assert_array_equal((a >= b).to_numpy(), [False, True, True])
        np.testing.assert_array_equal((a == b).to_numpy(), [False, True, False])
        np.testing.assert_array_equal((a != b).to_numpy(), [True, False, True])

    def test_scalar_comparison(self, rt):
        a = rnp.array(np.array([1.0, 5.0, 3.0]))
        np.testing.assert_array_equal((a > 2.0).to_numpy(), [False, True, True])


class TestWhere:
    def test_array_operands(self, rt):
        cond = rnp.array(np.array([True, False, True]))
        a = rnp.array(np.array([1.0, 2.0, 3.0]))
        b = rnp.array(np.array([10.0, 20.0, 30.0]))
        np.testing.assert_array_equal(
            rnp.where(cond, a, b).to_numpy(), [1.0, 20.0, 3.0]
        )

    def test_scalar_operands(self, rt):
        cond = rnp.array(np.array([True, False]))
        out = rnp.where(cond, 1.0, -1.0)
        np.testing.assert_array_equal(out.to_numpy(), [1.0, -1.0])

    def test_rejects_host_condition(self, rt):
        with pytest.raises(TypeError):
            rnp.where(np.array([True]), 1.0, 2.0)


class TestRounding:
    def test_floor_ceil_rint(self, rt):
        a = rnp.array(np.array([1.2, -1.7, 2.5]))
        np.testing.assert_array_equal(rnp.floor(a).to_numpy(), [1, -2, 2])
        np.testing.assert_array_equal(rnp.ceil(a).to_numpy(), [2, -1, 3])
        np.testing.assert_array_equal(rnp.rint(a).to_numpy(), np.rint([1.2, -1.7, 2.5]))

    def test_clip(self, rt):
        a = rnp.array(np.array([-5.0, 0.5, 9.0]))
        np.testing.assert_array_equal(
            rnp.clip(a, 0.0, 1.0).to_numpy(), [0.0, 0.5, 1.0]
        )


class TestPredicates:
    def test_isnan_isfinite(self, rt):
        a = rnp.array(np.array([1.0, np.nan, np.inf]))
        np.testing.assert_array_equal(rnp.isnan(a).to_numpy(), [False, True, False])
        np.testing.assert_array_equal(
            rnp.isfinite(a).to_numpy(), [True, False, False]
        )

    def test_allclose_and_array_equal(self, rt):
        a = rnp.array(np.array([1.0, 2.0]))
        b = rnp.array(np.array([1.0, 2.0 + 1e-12]))
        assert rnp.allclose(a, b)
        assert not rnp.array_equal(a, b)
        assert rnp.array_equal(a, a.copy())
        assert not rnp.array_equal(a, rnp.ones(3))


class TestArgReductions:
    def test_argmax_argmin(self, rt):
        data = np.array([3.0, 9.0, -2.0, 9.0, 1.0])
        a = rnp.array(data)
        assert int(rnp.argmax(a)) == int(np.argmax(data))
        assert int(rnp.argmin(a)) == int(np.argmin(data))

    def test_first_occurrence_tie(self, rt):
        a = rnp.array(np.array([5.0, 5.0, 5.0]))
        assert int(rnp.argmax(a)) == 0

    def test_count_nonzero(self, rt):
        a = rnp.array(np.array([0.0, 1.0, 0.0, -2.0]))
        assert int(rnp.count_nonzero(a)) == 2


class TestConcatenate:
    def test_matches_numpy(self, rt):
        parts = [np.arange(3.0), np.arange(4.0) + 10, np.arange(2.0) + 100]
        out = rnp.concatenate([rnp.array(p) for p in parts])
        np.testing.assert_array_equal(out.to_numpy(), np.concatenate(parts))

    def test_dtype_promotion(self, rt):
        out = rnp.concatenate([rnp.ones(2), rnp.array(np.array([1j]))])
        assert out.dtype == np.complex128

    def test_empty_list_rejected(self, rt):
        with pytest.raises(ValueError):
            rnp.concatenate([])

    def test_2d_rejected(self, rt):
        with pytest.raises(ValueError):
            rnp.concatenate([rnp.ones((2, 2))])


class TestAxisSums:
    def test_sum_axis1(self, rt):
        data = np.arange(12.0).reshape(4, 3)
        out = rnp.sum(rnp.array(data), axis=1)
        np.testing.assert_allclose(out.to_numpy(), data.sum(axis=1))

    def test_sum_axis0(self, rt):
        data = np.arange(12.0).reshape(4, 3)
        out = rnp.sum(rnp.array(data), axis=0)
        np.testing.assert_allclose(out.to_numpy(), data.sum(axis=0))

    def test_mean_axis(self, rt):
        data = np.arange(12.0).reshape(4, 3) + 1
        np.testing.assert_allclose(
            rnp.mean(rnp.array(data), axis=1).to_numpy(), data.mean(axis=1)
        )
        np.testing.assert_allclose(
            rnp.mean(rnp.array(data), axis=0).to_numpy(), data.mean(axis=0)
        )

    def test_axis_sum_on_1d_rejected(self, rt):
        with pytest.raises(ValueError):
            rnp.sum(rnp.ones(4), axis=0)

    def test_bad_axis(self, rt):
        with pytest.raises(ValueError):
            rnp.sum(rnp.ones((2, 2)), axis=3)
