import pytest

from repro.legion import Runtime, RuntimeConfig
from repro.legion.runtime import runtime_scope
from repro.machine import ProcessorKind, laptop


@pytest.fixture(params=[1, 2], ids=["p1", "p2"])
def rt(request):
    """Run every numeric test on 1 and 2 simulated GPUs."""
    machine = laptop()
    runtime = Runtime(
        machine.scope(ProcessorKind.GPU, request.param), RuntimeConfig.legate()
    )
    with runtime_scope(runtime):
        yield runtime


@pytest.fixture(scope="module")
def rt_module():
    """A module-scoped runtime for hypothesis tests (no per-example setup)."""
    machine = laptop()
    runtime = Runtime(machine.scope(ProcessorKind.GPU, 2), RuntimeConfig.legate())
    with runtime_scope(runtime):
        yield runtime
