"""Tests for the dense array library against NumPy semantics."""

import numpy as np
import pytest

import repro.numeric as rnp


class TestCreation:
    def test_zeros_ones_full(self, rt):
        np.testing.assert_array_equal(rnp.zeros(5).to_numpy(), np.zeros(5))
        np.testing.assert_array_equal(rnp.ones((3, 2)).to_numpy(), np.ones((3, 2)))
        np.testing.assert_array_equal(rnp.full(4, 2.5).to_numpy(), np.full(4, 2.5))

    def test_array_roundtrip(self, rt):
        data = np.arange(10.0)
        arr = rnp.array(data)
        np.testing.assert_array_equal(arr.to_numpy(), data)
        # to_numpy returns a copy: mutating it leaves the array intact.
        arr.to_numpy()[0] = 99
        assert arr.to_numpy()[0] == 0

    def test_asarray_idempotent(self, rt):
        a = rnp.ones(3)
        assert rnp.asarray(a) is a

    def test_arange_linspace(self, rt):
        np.testing.assert_array_equal(rnp.arange(6).to_numpy(), np.arange(6))
        np.testing.assert_allclose(
            rnp.linspace(0, 1, 5).to_numpy(), np.linspace(0, 1, 5)
        )

    def test_zeros_like_preserves_dtype(self, rt):
        a = rnp.ones(4, ) .astype(np.complex128)
        z = rnp.zeros_like(a)
        assert z.dtype == np.complex128

    def test_3d_rejected(self, rt):
        with pytest.raises(ValueError):
            rnp.array(np.zeros((2, 2, 2)))


class TestElementwise:
    def test_binary_ops(self, rt):
        a = rnp.array(np.arange(1.0, 9.0))
        b = rnp.array(np.arange(8.0) + 0.5)
        np.testing.assert_allclose((a + b).to_numpy(), a.to_numpy() + b.to_numpy())
        np.testing.assert_allclose((a - b).to_numpy(), a.to_numpy() - b.to_numpy())
        np.testing.assert_allclose((a * b).to_numpy(), a.to_numpy() * b.to_numpy())
        np.testing.assert_allclose((a / b).to_numpy(), a.to_numpy() / b.to_numpy())
        np.testing.assert_allclose((a**2).to_numpy(), a.to_numpy() ** 2)

    def test_scalar_operands(self, rt):
        a = rnp.array(np.arange(4.0))
        np.testing.assert_allclose((a + 1).to_numpy(), np.arange(4.0) + 1)
        np.testing.assert_allclose((1 + a).to_numpy(), np.arange(4.0) + 1)
        np.testing.assert_allclose((2 - a).to_numpy(), 2 - np.arange(4.0))
        np.testing.assert_allclose((1 / (a + 1)).to_numpy(), 1 / (np.arange(4.0) + 1))

    def test_inplace_ops(self, rt):
        a = rnp.array(np.arange(4.0))
        a += 1
        a *= 2
        np.testing.assert_allclose(a.to_numpy(), (np.arange(4.0) + 1) * 2)

    def test_inplace_with_array(self, rt):
        a = rnp.array(np.ones(6))
        b = rnp.array(np.arange(6.0))
        a += b
        np.testing.assert_allclose(a.to_numpy(), 1 + np.arange(6.0))

    def test_unary_ops(self, rt):
        a = rnp.array(np.array([-2.0, -0.5, 1.0, 4.0]))
        np.testing.assert_allclose((-a).to_numpy(), -a.to_numpy())
        np.testing.assert_allclose(abs(a).to_numpy(), np.abs(a.to_numpy()))
        np.testing.assert_allclose(rnp.sqrt(abs(a)).to_numpy(), np.sqrt(np.abs(a.to_numpy())))
        np.testing.assert_allclose(rnp.exp(a).to_numpy(), np.exp(a.to_numpy()))
        np.testing.assert_allclose(rnp.square(a).to_numpy(), a.to_numpy() ** 2)

    def test_shape_mismatch_raises(self, rt):
        with pytest.raises(ValueError):
            rnp.ones(3) + rnp.ones(4)

    def test_dtype_promotion(self, rt):
        a = rnp.ones(3)
        c = a * (1 + 2j)
        assert c.dtype == np.complex128
        np.testing.assert_allclose(c.to_numpy(), np.ones(3) * (1 + 2j))

    def test_complex_conj_real_imag(self, rt):
        data = np.array([1 + 2j, 3 - 4j])
        a = rnp.array(data)
        np.testing.assert_allclose(a.conj().to_numpy(), data.conj())
        np.testing.assert_allclose(a.real.to_numpy(), data.real)
        np.testing.assert_allclose(a.imag.to_numpy(), data.imag)
        assert a.real.dtype == np.float64

    def test_2d_elementwise(self, rt):
        data = np.arange(12.0).reshape(4, 3)
        a = rnp.array(data)
        np.testing.assert_allclose((a * 2 + 1).to_numpy(), data * 2 + 1)

    def test_maximum_minimum(self, rt):
        a = rnp.array(np.array([1.0, 5.0, 3.0]))
        b = rnp.array(np.array([2.0, 4.0, 3.0]))
        np.testing.assert_array_equal(rnp.maximum(a, b).to_numpy(), [2, 5, 3])
        np.testing.assert_array_equal(rnp.minimum(a, 2.0).to_numpy(), [1, 2, 2])


class TestReductions:
    def test_sum_mean(self, rt):
        data = np.arange(10.0)
        a = rnp.array(data)
        assert float(rnp.sum(a)) == pytest.approx(45.0)
        assert float(rnp.mean(a)) == pytest.approx(4.5)

    def test_sum_2d(self, rt):
        data = np.arange(12.0).reshape(3, 4)
        assert float(rnp.sum(rnp.array(data))) == pytest.approx(data.sum())

    def test_minmax(self, rt):
        a = rnp.array(np.array([3.0, -1.0, 7.0, 2.0]))
        assert float(rnp.amax(a)) == 7.0
        assert float(rnp.amin(a)) == -1.0

    def test_prod(self, rt):
        a = rnp.array(np.array([1.0, 2.0, 3.0, 4.0]))
        assert float(rnp.prod(a)) == pytest.approx(24.0)

    def test_dot(self, rt):
        a = rnp.array(np.arange(5.0))
        b = rnp.array(np.arange(5.0) + 1)
        assert float(rnp.dot(a, b)) == pytest.approx(np.dot(a.to_numpy(), b.to_numpy()))

    def test_vdot_conjugates(self, rt):
        a = rnp.array(np.array([1 + 1j, 2 - 1j]))
        b = rnp.array(np.array([3 + 0j, 1 + 1j]))
        expected = np.vdot(a.to_numpy(), b.to_numpy())
        assert complex(rnp.vdot(a, b)) == pytest.approx(expected)

    def test_norm(self, rt):
        data = np.array([3.0, 4.0])
        assert float(rnp.linalg.norm(rnp.array(data))) == pytest.approx(5.0)

    def test_norm_complex_is_real(self, rt):
        data = np.array([3j, 4.0])
        val = float(rnp.linalg.norm(rnp.array(data)))
        assert val == pytest.approx(5.0)

    def test_norm_inf(self, rt):
        data = np.array([-7.0, 3.0])
        assert float(rnp.linalg.norm(rnp.array(data), ord=np.inf)) == 7.0


class TestScalar:
    def test_lazy_arithmetic(self, rt):
        a = rnp.array(np.arange(4.0))
        s = rnp.sum(a)  # 6.0
        t = (s + 1) * 2 / 7 - 1  # 1.0
        assert float(t) == pytest.approx(1.0)

    def test_comparisons_sync(self, rt):
        s = rnp.sum(rnp.ones(4))
        assert s > 3
        assert s <= 4.0
        assert s == 4.0

    def test_scalar_sqrt_neg_abs(self, rt):
        s = rnp.sum(rnp.ones(9))
        assert float(s.sqrt()) == pytest.approx(3.0)
        assert float(-s) == -9.0
        assert float(abs(-s)) == 9.0

    def test_scalar_in_elementwise(self, rt):
        a = rnp.array(np.arange(1.0, 5.0))
        nrm = rnp.linalg.norm(a)
        unit = a / nrm
        assert float(rnp.linalg.norm(unit)) == pytest.approx(1.0)

    def test_item(self, rt):
        assert rnp.sum(rnp.ones(3)).item() == pytest.approx(3.0)


class TestRandom:
    def test_deterministic_given_seed(self, rt):
        rnp.random.seed(7)
        a = rnp.random.rand(32).to_numpy()
        rnp.random.seed(7)
        b = rnp.random.rand(32).to_numpy()
        np.testing.assert_array_equal(a, b)

    def test_in_unit_interval(self, rt):
        a = rnp.random.rand(100).to_numpy()
        assert (a >= 0).all() and (a < 1).all()

    def test_distinct_draws(self, rt):
        rnp.random.seed(8)
        a = rnp.random.rand(16).to_numpy()
        b = rnp.random.rand(16).to_numpy()
        assert not np.array_equal(a, b)

    def test_normal_moments(self, rt):
        rnp.random.seed(9)
        a = rnp.random.standard_normal(4000).to_numpy()
        assert abs(a.mean()) < 0.1
        assert abs(a.std() - 1.0) < 0.1


class TestIndexing:
    def test_int_getitem(self, rt):
        a = rnp.array(np.arange(10.0))
        assert a[3] == 3.0

    def test_slice_copy(self, rt):
        data = np.arange(10.0)
        a = rnp.array(data)
        np.testing.assert_array_equal(a[2:7].to_numpy(), data[2:7])
        np.testing.assert_array_equal(a[::2].to_numpy(), data[::2])
        np.testing.assert_array_equal(a[1::3].to_numpy(), data[1::3])

    def test_slice_is_copy_not_view(self, rt):
        a = rnp.array(np.arange(5.0))
        s = a[1:3]
        a += 100
        np.testing.assert_array_equal(s.to_numpy(), [1.0, 2.0])

    def test_slice_assign_array(self, rt):
        a = rnp.array(np.zeros(8))
        a[2:5] = rnp.array(np.array([1.0, 2.0, 3.0]))
        np.testing.assert_array_equal(
            a.to_numpy(), [0, 0, 1, 2, 3, 0, 0, 0]
        )

    def test_slice_assign_scalar(self, rt):
        a = rnp.array(np.zeros(6))
        a[1:4] = 5.0
        np.testing.assert_array_equal(a.to_numpy(), [0, 5, 5, 5, 0, 0])

    def test_strided_assign(self, rt):
        a = rnp.array(np.zeros(6))
        a[::2] = rnp.array(np.array([1.0, 2.0, 3.0]))
        np.testing.assert_array_equal(a.to_numpy(), [1, 0, 2, 0, 3, 0])

    def test_gather_rows_1d(self, rt):
        a = rnp.array(np.arange(10.0) * 10)
        idx = rnp.array(np.array([7, 1, 1, 4]), dtype=np.int64)
        np.testing.assert_array_equal(a[idx].to_numpy(), [70, 10, 10, 40])

    def test_gather_rows_2d(self, rt):
        data = np.arange(12.0).reshape(6, 2)
        a = rnp.array(data)
        idx = rnp.array(np.array([5, 0, 3]), dtype=np.int64)
        np.testing.assert_array_equal(a[idx].to_numpy(), data[[5, 0, 3]])

    def test_scatter_add_accumulates_duplicates(self, rt):
        a = rnp.array(np.zeros(5))
        idx = rnp.array(np.array([1, 3, 1]), dtype=np.int64)
        vals = rnp.array(np.array([1.0, 2.0, 4.0]))
        rnp.scatter_add(a, idx, vals)
        np.testing.assert_array_equal(a.to_numpy(), [0, 5, 0, 2, 0])

    def test_scatter_add_2d(self, rt):
        a = rnp.array(np.zeros((4, 2)))
        idx = rnp.array(np.array([2, 0]), dtype=np.int64)
        vals = rnp.array(np.array([[1.0, 2.0], [3.0, 4.0]]))
        rnp.scatter_add(a, idx, vals)
        expected = np.zeros((4, 2))
        expected[2] = [1, 2]
        expected[0] = [3, 4]
        np.testing.assert_array_equal(a.to_numpy(), expected)


class TestMatmulTranspose:
    def test_matvec(self, rt):
        A = np.arange(12.0).reshape(4, 3)
        x = np.array([1.0, 2.0, 3.0])
        out = rnp.array(A) @ rnp.array(x)
        np.testing.assert_allclose(out.to_numpy(), A @ x)

    def test_matmat(self, rt):
        A = np.arange(12.0).reshape(4, 3)
        B = np.arange(6.0).reshape(3, 2)
        out = rnp.array(A) @ rnp.array(B)
        np.testing.assert_allclose(out.to_numpy(), A @ B)

    def test_vecvec_is_dot(self, rt):
        a, b = np.arange(4.0), np.arange(4.0) + 1
        out = rnp.array(a) @ rnp.array(b)
        assert float(out) == pytest.approx(a @ b)

    def test_transpose(self, rt):
        A = np.arange(12.0).reshape(4, 3)
        np.testing.assert_array_equal(rnp.array(A).T.to_numpy(), A.T)

    def test_matmul_shape_check(self, rt):
        with pytest.raises(ValueError):
            rnp.ones((3, 2)) @ rnp.ones((3, 2))


class TestComposition:
    def test_power_iteration_style_loop(self, rt):
        """The dense half of Fig. 1: normalize repeatedly."""
        rnp.random.seed(3)
        x = rnp.random.rand(64)
        for _ in range(3):
            x /= rnp.linalg.norm(x)
        assert float(rnp.linalg.norm(x)) == pytest.approx(1.0)

    def test_partition_reuse_avoids_copies(self, rt):
        """Element-wise chains after the first op move no data."""
        if rt.num_procs == 1:
            pytest.skip("needs multiple processors")
        a = rnp.array(np.arange(64.0))
        b = rnp.array(np.arange(64.0))
        c = a + b
        snap = rt.profiler.snapshot()
        for _ in range(5):
            c = c * 2.0 + 1.0
        delta = rt.profiler.since(snap)
        assert delta.total_copy_bytes() == 0


class TestRandomExtended:
    def test_uniform_bounds(self, rt):
        rnp.random.seed(11)
        a = rnp.random.uniform(-2.0, 3.0, size=500).to_numpy()
        assert (a >= -2.0).all() and (a < 3.0).all()
        assert a.min() < 0 < a.max()

    def test_integers(self, rt):
        rnp.random.seed(12)
        a = rnp.random.integers(5, 15, size=200)
        assert a.dtype == np.int64
        vals = a.to_numpy()
        assert (vals >= 5).all() and (vals < 15).all()

    def test_normal_parameters(self, rt):
        rnp.random.seed(13)
        a = rnp.random.normal(10.0, 0.5, size=4000).to_numpy()
        assert abs(a.mean() - 10.0) < 0.1
        assert abs(a.std() - 0.5) < 0.1

    def test_shards_draw_different_streams(self, rt):
        """Per-shard generators must not produce identical halves."""
        if rt.num_procs == 1:
            pytest.skip("needs two shards")
        rnp.random.seed(14)
        a = rnp.random.rand(64).to_numpy()
        assert not np.array_equal(a[:32], a[32:])
