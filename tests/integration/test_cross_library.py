"""Cross-library composition: the paper's central claim, end-to-end.

Legate Sparse and cuNumeric (here: repro.core and repro.numeric) are
implemented against the constraint layer only; these tests observe the
resulting behaviour — partitions created by one library being consumed
by the other with no data movement, including non-default partitions.
"""

import numpy as np
import pytest
import scipy.sparse as sps

import repro.numeric as rnp
import repro.sparse as sp
from repro.legion import Runtime, RuntimeConfig, Tiling, Trace
from repro.legion.runtime import runtime_scope
from repro.machine import ProcessorKind, laptop
from repro.numeric.lazy import evaluate, lazy


@pytest.fixture
def rt2():
    machine = laptop()
    runtime = Runtime(machine.scope(ProcessorKind.GPU, 2), RuntimeConfig.legate())
    with runtime_scope(runtime):
        yield runtime


def banded_csr(n, band=1):
    diags = [np.full(n - abs(k), 1.0) for k in range(-band, band + 1)]
    return sps.diags(diags, list(range(-band, band + 1))).tocsr()


class TestPartitionReuseAcrossLibraries:
    def test_sparse_output_partition_reused_by_dense(self, rt2):
        """y = A @ x writes y with pos's tiling; norm/divide reuse it."""
        A = sp.csr_matrix(banded_csr(64))
        x = rnp.ones(64)
        y = A @ x
        pos_boundaries = Tiling.create(A.pos.region, 2).boundaries
        assert y.store.key_partition.boundaries == pos_boundaries
        snap = rt2.profiler.snapshot()
        y / rnp.linalg.norm(y)  # dense ops on the sparse library's output
        assert rt2.profiler.since(snap).total_copy_bytes() == 0

    def test_custom_partition_propagates(self, rt2):
        """A hand-set uneven key partition flows through SpMV into the
        dense library with no repartitioning."""
        A = sp.csr_matrix(banded_csr(60))
        custom = Tiling(A.pos.region, (0, 45, 60))  # uneven on purpose
        A.pos.set_key_partition(custom)
        x = rnp.ones(60)
        y = A @ x
        assert y.store.key_partition.boundaries == (0, 45, 60)
        # The dense library keeps computing on the uneven partition.
        z = y * 2.0
        assert z.store.key_partition.boundaries == (0, 45, 60)

    def test_dense_array_backs_sparse_values(self, rt2):
        """§3: users can operate on the arrays that back a matrix."""
        A = sp.csr_matrix(banded_csr(32))
        vals = A.data  # a repro.numeric array sharing the vals region
        doubled = A._with_values(vals * 2.0)
        np.testing.assert_allclose(
            doubled.toarray(), 2 * banded_csr(32).toarray()
        )

    def test_matrix_from_numeric_arrays(self, rt2):
        """Sparse matrices constructed out of dense-library arrays."""
        from repro.constraints import Store

        ref = banded_csr(16)
        indptr = ref.indptr.astype(np.int64)
        pos = Store.create(
            (16, 2), np.int64,
            data=np.stack([indptr[:-1], indptr[1:]], axis=1), runtime=rt2,
        )
        crd_arr = rnp.array(ref.indices.astype(np.int64))
        vals_arr = rnp.array(ref.data)
        from repro.core.csr import csr_matrix

        A = csr_matrix._from_stores(pos, crd_arr.store, vals_arr.store, (16, 16))
        np.testing.assert_allclose(A.toarray(), ref.toarray())


class TestComposedPipelines:
    def test_fusion_inside_solver_loop(self, rt2):
        """Hand-fused CG updates give the same answer as the stock CG."""
        ref = (banded_csr(48) + 4 * sps.eye(48)).tocsr()
        A = sp.csr_matrix(ref)
        b = rnp.ones(48)
        x_ref, info = sp.linalg.cg(A, b, rtol=1e-10)
        assert info == 0

        # A CG with fused axpy updates.
        x = rnp.zeros(48)
        r = b - A @ x
        p = r.copy()
        rz = rnp.vdot(r, r)
        for _ in range(200):
            if float(rnp.linalg.norm(r)) <= 1e-10:
                break
            q = A @ p
            alpha = rz / rnp.vdot(p, q)
            x = evaluate(lazy(x) + lazy(p) * alpha)
            r = evaluate(lazy(r) - lazy(q) * alpha)
            rz_next = rnp.vdot(r, r)
            p = evaluate(lazy(r) + lazy(p) * (rz_next / rz))
            rz = rz_next
        np.testing.assert_allclose(x.to_numpy(), x_ref.to_numpy(), atol=1e-8)

    def test_traced_solver_iteration(self, rt2):
        """Tracing wraps a whole CG iteration (sparse + dense tasks)."""
        ref = (banded_csr(40) + 4 * sps.eye(40)).tocsr()
        A = sp.csr_matrix(ref)
        b = rnp.ones(40)
        x = rnp.zeros(40)
        r = b - A @ x
        p = r.copy()
        rz = rnp.vdot(r, r)
        trace = Trace(rt2, "cg-iter")
        for _ in range(5):
            with trace:
                q = A @ p
                alpha = rz / rnp.vdot(p, q)
                x += p * alpha
                r -= q * alpha
                rz_next = rnp.vdot(r, r)
                p = r + p * (rz_next / rz)
                rz = rz_next
        assert trace.replays >= 3
        resid = np.linalg.norm(ref @ x.to_numpy() - 1.0)
        assert resid < np.linalg.norm(np.ones(40))  # it is converging

    def test_scan_feeds_sparse_assembly(self, rt2):
        """Distributed scan output used as a pos array (two-pass style)."""
        counts = rnp.array(np.array([2, 0, 1, 3], dtype=np.int64))
        from repro.core.convert import _pos_from_counts

        pos_store, nnz = _pos_from_counts(counts)
        assert nnz == 6
        np.testing.assert_array_equal(
            pos_store.data, [[0, 2], [2, 2], [2, 3], [3, 6]]
        )

    def test_integrator_over_solver_output(self, rt2):
        """Chain: CG solve -> use the solution as an ODE initial state."""
        ref = (banded_csr(24) + 24 * sps.eye(24)).tocsr()
        A = sp.csr_matrix(ref)
        x0, info = sp.linalg.cg(A, rnp.ones(24), rtol=1e-10)
        assert info == 0
        from repro.integrate import solve_ivp

        res = solve_ivp(
            lambda t, y: (A @ y) * -0.01, (0.0, 1.0), x0, method="RK4", step=0.25
        )
        assert res.success
        assert float(rnp.linalg.norm(res.y)) < float(rnp.linalg.norm(x0))


class TestDeterminism:
    def test_results_identical_across_processor_counts(self, rt2):
        """The same Poisson solve on 1..4 processors is bitwise stable
        to solver tolerance — distribution is semantically transparent."""
        import scipy.sparse as sps
        from repro.apps.poisson import poisson2d_scipy
        from repro.machine import summit

        k = 17
        ref = poisson2d_scipy(k)
        solutions = []
        for procs in (1, 2, 4):
            machine = summit(nodes=1)
            runtime = Runtime(
                machine.scope(ProcessorKind.GPU, procs), RuntimeConfig.legate()
            )
            with runtime_scope(runtime):
                A = sp.csr_matrix(ref)
                x, info = sp.linalg.cg(A, rnp.ones(k * k), rtol=1e-10, maxiter=2000)
                assert info == 0
                solutions.append(x.to_numpy())
        for got in solutions[1:]:
            np.testing.assert_allclose(got, solutions[0], rtol=1e-7, atol=1e-9)
