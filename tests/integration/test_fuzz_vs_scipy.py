"""Differential fuzzing: random op sequences vs stock SciPy/NumPy.

Generates random programs over a small vocabulary of sparse and dense
operations, executes them through both the distributed stack and stock
SciPy/NumPy, and asserts the results agree.  This is the strongest
drop-in-replacement check we have: any divergence in semantics between
the two stacks fails loudly with the generating seed.
"""

import numpy as np
import pytest
import scipy.sparse as sps
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.numeric as rnp
import repro.sparse as sp
from repro.legion import Runtime, RuntimeConfig
from repro.legion.runtime import runtime_scope
from repro.machine import ProcessorKind, laptop

_SET = dict(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# Each op transforms the paired state (ours, theirs). States hold
# (matrix, vector) pairs with matching values.
MATRIX_OPS = ["transpose_csr", "scale", "add_self", "hadamard_self", "abs", "tril"]
VECTOR_OPS = ["matvec", "rmatvec", "axpy", "normalize", "elementwise"]


def _apply_matrix_op(op, A, ref):
    if op == "transpose_csr":
        return A.T.tocsr(), ref.T.tocsr()
    if op == "scale":
        return 1.5 * A, 1.5 * ref
    if op == "add_self":
        return A + 0.5 * A, (ref + 0.5 * ref).tocsr()
    if op == "hadamard_self":
        return A.multiply(A), ref.multiply(ref).tocsr()
    if op == "abs":
        return abs(A), abs(ref)
    if op == "tril":
        return sp.tril(A), sps.tril(ref, format="csr")
    raise AssertionError(op)


def _apply_vector_op(op, A, ref, x, xref):
    if op == "matvec" and A.shape[0] == A.shape[1]:
        return A @ x, ref @ xref
    if op == "rmatvec" and A.shape[0] == A.shape[1]:
        return x @ A, xref @ ref
    if op == "axpy":
        return x * 2.0 + x, xref * 2.0 + xref
    if op == "normalize":
        nrm = rnp.linalg.norm(x)
        denom = float(nrm)
        if denom == 0:
            return x, xref
        return x / nrm, xref / np.linalg.norm(xref)
    if op == "elementwise":
        return rnp.sqrt(abs(x) + 1.0), np.sqrt(np.abs(xref) + 1.0)
    return x, xref  # dimension-guard fallthrough


class TestDifferentialFuzz:
    @settings(**_SET)
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(3, 20),
        density=st.floats(0.05, 0.6),
        matrix_program=st.lists(st.sampled_from(MATRIX_OPS), max_size=4),
        vector_program=st.lists(st.sampled_from(VECTOR_OPS), max_size=4),
        procs=st.integers(1, 2),
    )
    def test_random_program_matches_scipy(
        self, seed, n, density, matrix_program, vector_program, procs
    ):
        rng = np.random.default_rng(seed)
        ref = sps.random(n, n, density=density, random_state=rng, format="csr")
        ref.sum_duplicates()
        xref = rng.standard_normal(n)

        runtime = Runtime(
            laptop().scope(ProcessorKind.GPU, procs), RuntimeConfig.legate()
        )
        with runtime_scope(runtime):
            A = sp.csr_matrix(ref)
            x = rnp.array(xref)
            for op in matrix_program:
                A, ref = _apply_matrix_op(op, A, ref)
                ref = ref.tocsr()
            np.testing.assert_allclose(
                A.toarray(), ref.toarray(), rtol=1e-9, atol=1e-11
            )
            for op in vector_program:
                x, xref = _apply_vector_op(op, A, ref, x, xref)
            np.testing.assert_allclose(
                x.to_numpy(), xref, rtol=1e-8, atol=1e-10
            )

    @settings(**_SET)
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(2, 16),
        m=st.integers(2, 16),
        fmt=st.sampled_from(["csr", "csc", "coo", "dia"]),
    )
    def test_conversion_chain_fuzz(self, seed, n, m, fmt):
        rng = np.random.default_rng(seed)
        ref = sps.random(n, m, density=0.3, random_state=rng, format="csr")
        runtime = Runtime(laptop().scope(ProcessorKind.GPU, 2), RuntimeConfig.legate())
        with runtime_scope(runtime):
            A = sp.csr_matrix(ref).asformat(fmt)
            np.testing.assert_allclose(A.toarray(), ref.toarray(), rtol=1e-12)
            back = A.tocsr()
            np.testing.assert_allclose(back.toarray(), ref.toarray(), rtol=1e-12)

    @settings(**_SET)
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(4, 24),
    )
    def test_solver_fuzz_spd(self, seed, n):
        rng = np.random.default_rng(seed)
        a = sps.random(n, n, density=0.3, random_state=rng, format="csr")
        a = 0.5 * (a + a.T) + n * sps.eye(n)
        b = rng.standard_normal(n)
        runtime = Runtime(laptop().scope(ProcessorKind.GPU, 2), RuntimeConfig.legate())
        with runtime_scope(runtime):
            x, info = sp.linalg.cg(sp.csr_matrix(a.tocsr()), rnp.array(b), rtol=1e-10)
            assert info == 0
            np.testing.assert_allclose(a @ x.to_numpy(), b, atol=1e-6)
