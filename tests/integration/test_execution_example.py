"""The paper's §4.3 execution example (Fig. 5), observed end-to-end.

The program is Fig. 1's power-iteration loop over a banded matrix on two
GPUs.  The paper's walkthrough predicts:

* iteration 1 (startup): inputs staged to the GPUs;
* iteration 2: allocation resizing causes a full copy of x plus a
  one-element halo exchange;
* iteration 3+ (steady state): allocations are reused via the pool, and
  the ONLY inter-GPU traffic is the one-element halo copy per side.
"""

import numpy as np
import pytest
import scipy.sparse as sps

import repro.numeric as rnp
import repro.sparse as sp
from repro.legion import Runtime, RuntimeConfig
from repro.legion.runtime import runtime_scope
from repro.machine import ProcessorKind, laptop


def banded_matrix(n: int, band: int = 1) -> sps.csr_matrix:
    diags = [np.full(n - abs(k), 1.0) for k in range(-band, band + 1)]
    return sps.diags(diags, list(range(-band, band + 1))).tocsr()


def make_runtime(coalescing: bool = True) -> Runtime:
    machine = laptop()
    return Runtime(
        machine.scope(ProcessorKind.GPU, 2),
        RuntimeConfig.legate(coalescing=coalescing),
    )


def run_iterations(rt, n=64, iters=6, band=1):
    """The Fig. 1 loop; returns per-iteration copy-byte deltas."""
    with runtime_scope(rt):
        A = sp.csr_matrix(banded_matrix(n, band))
        rnp.random.seed(0)
        x = rnp.random.rand(n)
        deltas = []
        for _ in range(iters):
            snap = rt.profiler.snapshot()
            x = A @ x
            x /= rnp.linalg.norm(x)
            rt.barrier()
            deltas.append(rt.profiler.since(snap))
        return deltas, x


class TestExecutionExample:
    def test_steady_state_halo_only(self):
        rt = make_runtime()
        deltas, _ = run_iterations(rt)
        # Steady state (iterations 3+): exactly the two one-element halo
        # copies per iteration cross the GPU-GPU link.
        for delta in deltas[3:]:
            assert delta.copy_count["nvlink"] == 2
            assert delta.copy_bytes["nvlink"] == 2 * 8
            assert delta.resize_copies == 0

    def test_iteration_two_resizes(self):
        rt = make_runtime()
        deltas, _ = run_iterations(rt)
        # The second iteration reads beyond the written tile of the new
        # x, forcing the RA1->RA5-style allocation resize of Fig. 5.
        assert deltas[1].resize_copies >= 1

    def test_startup_stages_inputs_once(self):
        rt = make_runtime()
        deltas, _ = run_iterations(rt)
        startup = deltas[0].copy_bytes["nvlink"]
        steady = deltas[4].copy_bytes["nvlink"]
        assert startup > steady  # matrix + vector staging dominates

    def test_numerics_match_scipy_power_iteration(self):
        rt = make_runtime()
        _, x = run_iterations(rt, n=64, iters=80)
        mat = banded_matrix(64)
        expected = np.linalg.eigvalsh(mat.toarray()).max()
        with runtime_scope(rt):
            rayleigh = float(rnp.dot(x, sp.csr_matrix(mat) @ x))
        # Power iteration converges slowly on this clustered spectrum;
        # the Rayleigh quotient still lands within a fraction of a %.
        assert rayleigh == pytest.approx(expected, rel=2e-3)

    def test_wider_band_wider_halo(self):
        rt1 = make_runtime()
        d1, _ = run_iterations(rt1, band=1)
        rt3 = make_runtime()
        d3, _ = run_iterations(rt3, band=3)
        assert (
            d3[4].copy_bytes["nvlink"] == 3 * d1[4].copy_bytes["nvlink"]
        )

    def test_coalescing_off_repeats_copies(self):
        """The ablation the paper calls out: without the mapper's
        coalescing step, the full-vector copy recurs every iteration."""
        on = make_runtime(coalescing=True)
        d_on, _ = run_iterations(on)
        off = make_runtime(coalescing=False)
        d_off, _ = run_iterations(off)
        steady_on = sum(d.total_copy_bytes() + d.resize_bytes for d in d_on[3:])
        steady_off = sum(d.total_copy_bytes() + d.resize_bytes for d in d_off[3:])
        assert steady_off > steady_on

    def test_partition_reuse_across_libraries(self):
        """cuNumeric-side ops (norm, divide) reuse the partition the
        sparse SpMV wrote x with: no copies between the two libraries."""
        rt = make_runtime()
        with runtime_scope(rt):
            A = sp.csr_matrix(banded_matrix(64))
            rnp.random.seed(1)
            x = rnp.random.rand(64)
            for _ in range(3):
                x = A @ x
                x /= rnp.linalg.norm(x)
            rt.barrier()
            # Now measure one dense-only step: everything is resident.
            snap = rt.profiler.snapshot()
            x /= rnp.linalg.norm(x)
            rt.barrier()
            delta = rt.profiler.since(snap)
            assert delta.total_copy_bytes() == 0
