import pytest

from repro.legion import Runtime, RuntimeConfig
from repro.legion.runtime import runtime_scope
from repro.machine import ProcessorKind, laptop


@pytest.fixture(params=[1, 2], ids=["p1", "p2"])
def rt(request):
    machine = laptop()
    runtime = Runtime(
        machine.scope(ProcessorKind.GPU, request.param), RuntimeConfig.legate()
    )
    with runtime_scope(runtime):
        yield runtime
