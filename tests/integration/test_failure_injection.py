"""Failure injection: error paths behave predictably and recoverably."""

import numpy as np
import pytest

import repro.numeric as rnp
import repro.sparse as sp
from repro.constraints import ConstraintError
from repro.legion import OutOfMemoryError, Runtime, RuntimeConfig
from repro.legion.runtime import runtime_scope
from repro.machine import Machine, ProcessorKind, laptop
from repro.machine.model import MachineConfig


def tiny_gpu_machine(fb_mb: float = 1.0) -> Machine:
    return Machine(
        MachineConfig(
            nodes=1,
            sockets_per_node=1,
            gpus_per_node=2,
            gpu_memory=int(fb_mb * 2**20),
            sysmem_per_node=2 * 2**30,
        )
    )


class TestOutOfMemory:
    def test_oversized_array_raises(self):
        machine = tiny_gpu_machine(fb_mb=0.5)
        rt = Runtime(machine.scope(ProcessorKind.GPU, 1), RuntimeConfig.legate())
        with runtime_scope(rt):
            with pytest.raises(OutOfMemoryError) as err:
                rnp.zeros(10_000_000)
                rt.barrier()  # deferred launches map at the sync point
            assert "framebuffer" in str(err.value)

    def test_error_reports_requested_and_available(self):
        machine = tiny_gpu_machine(fb_mb=0.5)
        rt = Runtime(machine.scope(ProcessorKind.GPU, 1), RuntimeConfig.legate())
        with runtime_scope(rt):
            with pytest.raises(OutOfMemoryError) as err:
                rnp.zeros(10_000_000)
                rt.barrier()
            assert err.value.requested > err.value.available

    def test_adding_processors_avoids_oom(self):
        """The Fig. 12 pattern: the same problem fits on more GPUs."""
        n = 45_000  # ~352 KB of float64: too big for half a 1MB FB
        machine1 = tiny_gpu_machine(fb_mb=0.4)
        rt1 = Runtime(machine1.scope(ProcessorKind.GPU, 1), RuntimeConfig.legate())
        with runtime_scope(rt1), pytest.raises(OutOfMemoryError):
            rnp.zeros(n)
            rt1.barrier()
        machine2 = tiny_gpu_machine(fb_mb=0.4)
        rt2 = Runtime(machine2.scope(ProcessorKind.GPU, 2), RuntimeConfig.legate())
        with runtime_scope(rt2):
            arr = rnp.zeros(n)  # tiled across two framebuffers
            assert arr.shape == (n,)

    def test_runtime_usable_after_oom(self):
        machine = tiny_gpu_machine(fb_mb=0.5)
        rt = Runtime(machine.scope(ProcessorKind.GPU, 1), RuntimeConfig.legate())
        with runtime_scope(rt):
            with pytest.raises(OutOfMemoryError):
                rnp.zeros(10_000_000)
                rt.barrier()
            small = rnp.ones(64)
            assert float(rnp.sum(small)) == 64.0

    def test_freed_regions_allow_retry(self):
        machine = tiny_gpu_machine(fb_mb=1.0)
        rt = Runtime(machine.scope(ProcessorKind.GPU, 1), RuntimeConfig.legate())
        with runtime_scope(rt):
            a = rnp.zeros(50_000)  # ~400 KB of ~870 KB budget
            del a
            b = rnp.zeros(50_000)  # reuses the recycled allocation
            assert b.shape == (50_000,)


class TestUserErrors:
    def test_shape_mismatch_messages(self, rt):
        A = sp.eye(4, format="csr")
        with pytest.raises(ValueError, match="dimension mismatch"):
            A @ rnp.ones(5)
        with pytest.raises(ValueError, match="shape mismatch"):
            rnp.ones(3) + rnp.ones(4)
        with pytest.raises(ValueError, match="shape mismatch"):
            sp.eye(3, format="csr") + sp.eye(4, format="csr")

    def test_solver_input_validation(self, rt):
        A = sp.eye(4, format="csr")
        with pytest.raises(ValueError):
            sp.linalg.cg(A, rnp.ones(5))

    def test_bad_constructor_type(self, rt):
        with pytest.raises(TypeError):
            sp.csr_matrix("not a matrix")

    def test_conflicting_constraints_surface(self, rt):
        from repro.constraints import AutoTask, Store

        a = Store.create((4,), np.float64, runtime=rt)
        b = Store.create((4,), np.float64, runtime=rt)
        task = AutoTask(rt, "bad", lambda ctx: None)
        task.add_input("a", a)
        task.add_input("b", b)
        task.add_broadcast(a)
        task.add_alignment_constraint(a, b)
        with pytest.raises(ConstraintError):
            task.execute()

    def test_solver_breakdown_reports_negative_info(self, rt):
        """CG on a singular system with a zero curvature direction."""
        import scipy.sparse as sps

        # A = 0: p^T A p == 0 on the first iteration -> breakdown.
        A = sp.csr_matrix(sps.csr_matrix((3, 3)))
        x, info = sp.linalg.cg(A, rnp.ones(3), maxiter=5)
        assert info == -1


class TestNumericalEdgeCases:
    def test_empty_matrix_products(self, rt):
        A = sp.csr_matrix((3, 4))
        out = A @ rnp.ones(4)
        np.testing.assert_array_equal(out.to_numpy(), np.zeros(3))

    def test_zero_length_vector_norm(self, rt):
        z = rnp.zeros(0)
        assert float(rnp.linalg.norm(z)) == 0.0

    def test_single_row_matrix(self, rt):
        A = sp.csr_matrix(np.array([[1.0, 2.0, 3.0]]))
        out = A @ rnp.ones(3)
        assert float(out[0]) == 6.0

    def test_matrix_larger_proc_count_than_rows(self):
        machine = laptop()
        rt = Runtime(machine.scope(ProcessorKind.GPU, 2), RuntimeConfig.legate())
        with runtime_scope(rt):
            A = sp.csr_matrix(np.array([[2.0]]))
            out = A @ rnp.ones(1)
            assert float(out[0]) == 2.0

    def test_nan_propagates_not_crashes(self, rt):
        a = rnp.array(np.array([np.nan, 1.0]))
        out = (a * 2.0).to_numpy()
        assert np.isnan(out[0]) and out[1] == 2.0
