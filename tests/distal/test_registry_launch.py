"""Registry launcher error paths and dispatch behaviour."""

import numpy as np
import pytest

from repro.constraints import Store
from repro.distal import get_registry
from repro.distal.codegen import KernelSpec
from repro.distal.formats import CSR, DIA
from repro.distal.registry import launch
from repro.legion import Runtime, RuntimeConfig
from repro.legion.runtime import runtime_scope
from repro.machine import ProcessorKind, laptop


@pytest.fixture
def rt():
    machine = laptop()
    runtime = Runtime(machine.scope(ProcessorKind.GPU, 2), RuntimeConfig.legate())
    with runtime_scope(runtime):
        yield runtime


class TestRegistry:
    def test_unknown_statement(self):
        with pytest.raises(KeyError):
            get_registry().get("y(i)=nonsense", CSR, ProcessorKind.GPU)

    def test_generated_count_tracks_cache(self):
        reg = get_registry()
        before = reg.generated_count()
        reg.get("y(i)=A(i,j)*x(j)", CSR, ProcessorKind.CPU_CORE)
        after = reg.generated_count()
        assert after >= before

    def test_missing_explicit_partition_rejected(self, rt):
        spec = get_registry().get("y(i)=A(i,j)*x(j)", DIA, ProcessorKind.GPU)
        stores = {
            "y": Store.create((4,), np.float64, runtime=rt),
            "data": Store.create((4, 1), np.float64, runtime=rt),
            "offsets": Store.create((1,), np.int64, data=np.zeros(1, np.int64), runtime=rt),
            "x": Store.create((4,), np.float64, runtime=rt),
        }
        with pytest.raises(ValueError, match="explicit partition"):
            launch(spec, rt, stores)

    def test_unknown_role_rejected(self, rt):
        spec = KernelSpec(
            name="bad",
            kernel=lambda ctx: None,
            cost=lambda ctx: (0.0, 0.0),
            source="",
            args=[("a", "banana")],
            constraints=[],
        )
        store = Store.create((4,), np.float64, runtime=rt)
        with pytest.raises(ValueError, match="unknown role"):
            launch(spec, rt, {"a": store})

    def test_unknown_constraint_rejected(self, rt):
        spec = KernelSpec(
            name="bad",
            kernel=lambda ctx: None,
            cost=lambda ctx: (0.0, 0.0),
            source="",
            args=[("a", "in")],
            constraints=[("teleport", "a")],
        )
        store = Store.create((4,), np.float64, runtime=rt)
        with pytest.raises(ValueError, match="unknown constraint"):
            launch(spec, rt, {"a": store})

    def test_sources_are_distinct_per_kind(self):
        reg = get_registry()
        gpu = reg.get("y(i)=A(i,j)*x(j)", CSR, ProcessorKind.GPU)
        cpu = reg.get("y(i)=A(i,j)*x(j)", CSR, ProcessorKind.CPU_SOCKET)
        assert gpu.name != cpu.name
        assert gpu.source == cpu.source  # numerics identical; costs differ
