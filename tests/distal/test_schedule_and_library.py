"""Tests for the DISTAL scheduling language and statement library."""

import pytest

from repro.distal.ir import IndexVar, Tensor
from repro.distal.library import (
    STATEMENTS,
    i,
    io,
    ii,
    row_distributed_schedule,
    x,
    y,
    A,
)
from repro.distal.schedule import Schedule
from repro.machine import ProcessorKind


class TestSchedule:
    def test_fig6_chain(self):
        """The paper's Fig. 6 schedule builds without error."""
        sched = row_distributed_schedule(ProcessorKind.CPU_SOCKET)
        assert sched.divided == (i, io, ii)
        assert sched.distributed == io
        assert sched.parallel_kind == ProcessorKind.CPU_SOCKET
        assert A in sched.communicated

    def test_distribute_requires_divided_outer(self):
        j = IndexVar("j")
        with pytest.raises(ValueError):
            Schedule().divide(i, io, ii).distribute(j)

    def test_communicate_requires_distributed(self):
        sched = Schedule().divide(i, io, ii)
        with pytest.raises(ValueError):
            sched.communicate(ii, [y])

    def test_parallelize_requires_inner(self):
        sched = Schedule().divide(i, io, ii).distribute(io)
        with pytest.raises(ValueError):
            sched.parallelize(io, ProcessorKind.GPU)

    def test_distributed_var_name(self):
        sched = row_distributed_schedule(ProcessorKind.GPU)
        assert sched.distributed_var_name == "i"


class TestStatementLibrary:
    def test_contains_all_kernels(self):
        expected = {
            "y(i)=A(i,j)*x(j)",
            "y(j)=A(i,j)*x(i)",
            "Y(i,k)=A(i,j)*X(j,k)",
            "Y(j,k)=A(i,j)*X(i,k)",
            "R(i,j)=B(i,j)*C(i,k)*D(j,k)",
            "y(i)=A(i,j)",
            "y(j)=A(i,j)",
            "y(i)=A(i,i)",
        }
        assert expected == set(STATEMENTS)

    def test_statement_keys_roundtrip(self):
        for key, stmt in STATEMENTS.items():
            assert stmt.key() == key

    def test_reduction_variables(self):
        spmv = STATEMENTS["y(i)=A(i,j)*x(j)"]
        assert [v.name for v in spmv.reduction_vars] == ["j"]
        diag = STATEMENTS["y(i)=A(i,i)"]
        assert diag.reduction_vars == []

    def test_index_vars_ordered(self):
        sddmm = STATEMENTS["R(i,j)=B(i,j)*C(i,k)*D(j,k)"]
        assert [v.name for v in sddmm.index_vars] == ["i", "j", "k"]
