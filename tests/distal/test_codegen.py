"""Tests for the DISTAL mini-compiler: IR, codegen, generated kernels."""

import numpy as np
import pytest
import scipy.sparse as sps

from repro.constraints import Store
from repro.distal import codegen, get_registry
from repro.distal.formats import COO, CSR, DIA
from repro.distal.ir import Assignment, IndexVar, Tensor
from repro.distal.library import STATEMENTS
from repro.distal.registry import launch
from repro.legion import Runtime, RuntimeConfig, Tiling
from repro.legion.partition import ExplicitPartition
from repro.geometry import Rect
from repro.legion.runtime import runtime_scope
from repro.machine import ProcessorKind, laptop


@pytest.fixture
def rt():
    machine = laptop()
    runtime = Runtime(machine.scope(ProcessorKind.GPU, 2), RuntimeConfig.legate())
    with runtime_scope(runtime):
        yield runtime


def make_csr_stores(rt, mat: sps.csr_matrix, dtype=np.float64):
    mat = mat.tocsr()
    mat.sum_duplicates()
    n = mat.shape[0]
    indptr = mat.indptr.astype(np.int64)
    pos_data = np.stack([indptr[:-1], indptr[1:]], axis=1)
    pos = Store.create((n, 2), np.int64, data=pos_data, runtime=rt, name="pos")
    crd = Store.create(
        (mat.nnz,), np.int64, data=mat.indices.astype(np.int64), runtime=rt
    )
    vals = Store.create((mat.nnz,), dtype, data=mat.data.astype(dtype), runtime=rt)
    return pos, crd, vals


class TestIR:
    def test_key_canonicalization(self):
        i, j = IndexVar("i"), IndexVar("j")
        y, A, x = Tensor("y", 1), Tensor("A", 2), Tensor("x", 1)
        stmt = y[i] << A[i, j] * x[j]
        assert stmt.key() == "y(i)=A(i,j)*x(j)"

    def test_reduction_vars(self):
        i, j, k = IndexVar("i"), IndexVar("j"), IndexVar("k")
        Y, A, X = Tensor("Y", 2), Tensor("A", 2), Tensor("X", 2)
        stmt = Y[i, k] << A[i, j] * X[j, k]
        assert stmt.reduction_vars == [j]

    def test_order_mismatch_rejected(self):
        A = Tensor("A", 2)
        i = IndexVar("i")
        with pytest.raises(ValueError):
            A[i]

    def test_triple_product(self):
        i, j, k = IndexVar("i"), IndexVar("j"), IndexVar("k")
        R, B, C, D = (Tensor(n, 2) for n in "RBCD")
        stmt = R[i, j] << B[i, j] * C[i, k] * D[j, k]
        assert stmt.key() == "R(i,j)=B(i,j)*C(i,k)*D(j,k)"

    def test_library_covers_paper_statements(self):
        assert "y(i)=A(i,j)*x(j)" in STATEMENTS
        assert "R(i,j)=B(i,j)*C(i,k)*D(j,k)" in STATEMENTS


class TestCodegen:
    def test_source_is_retained(self):
        spec = get_registry().get(
            "y(i)=A(i,j)*x(j)", CSR, ProcessorKind.GPU
        )
        assert "def kernel" in spec.source
        assert "cumsum" in spec.source

    def test_unsupported_statement_raises(self):
        i = IndexVar("i")
        y, x = Tensor("y", 1), Tensor("x", 1)
        stmt = y[i] << x[i] * x[i]
        with pytest.raises(codegen.UnsupportedStatement):
            codegen.generate(stmt, CSR)

    def test_registry_caches(self):
        reg = get_registry()
        a = reg.get("y(i)=A(i,j)*x(j)", CSR, ProcessorKind.GPU)
        b = reg.get("y(i)=A(i,j)*x(j)", CSR, ProcessorKind.GPU)
        assert a is b

    def test_variants_per_processor_kind(self):
        reg = get_registry()
        a = reg.get("y(i)=A(i,j)*x(j)", CSR, ProcessorKind.GPU)
        b = reg.get("y(i)=A(i,j)*x(j)", CSR, ProcessorKind.CPU_SOCKET)
        assert a is not b


def random_csr(n, m, density=0.3, seed=0):
    rng = np.random.default_rng(seed)
    mat = sps.random(n, m, density=density, random_state=rng, format="csr")
    mat.sum_duplicates()
    return mat


class TestGeneratedKernels:
    def test_csr_spmv_matches_scipy(self, rt):
        mat = random_csr(50, 40, seed=1)
        pos, crd, vals = make_csr_stores(rt, mat)
        x = Store.create((40,), np.float64, data=np.random.default_rng(2).random(40), runtime=rt)
        y = Store.create((50,), np.float64, runtime=rt)
        spec = get_registry().get("y(i)=A(i,j)*x(j)", CSR, ProcessorKind.GPU)
        launch(spec, rt, {"y": y, "pos": pos, "crd": crd, "vals": vals, "x": x})
        np.testing.assert_allclose(y.data, mat @ x.data, rtol=1e-12)

    def test_csr_spmv_transpose_matches_scipy(self, rt):
        mat = random_csr(30, 45, seed=3)
        pos, crd, vals = make_csr_stores(rt, mat)
        x = Store.create((30,), np.float64, data=np.random.default_rng(4).random(30), runtime=rt)
        y = Store.create((45,), np.float64, runtime=rt)
        rt.fill(y.region, 0.0)
        spec = get_registry().get("y(j)=A(i,j)*x(i)", CSR, ProcessorKind.GPU)
        launch(spec, rt, {"y": y, "pos": pos, "crd": crd, "vals": vals, "x": x})
        np.testing.assert_allclose(y.data, mat.T @ x.data, rtol=1e-12)

    def test_csr_spmm_matches_scipy(self, rt):
        mat = random_csr(25, 30, seed=5)
        pos, crd, vals = make_csr_stores(rt, mat)
        Xd = np.random.default_rng(6).random((30, 4))
        X = Store.create((30, 4), np.float64, data=Xd, runtime=rt)
        Y = Store.create((25, 4), np.float64, runtime=rt)
        spec = get_registry().get("Y(i,k)=A(i,j)*X(j,k)", CSR, ProcessorKind.GPU)
        launch(spec, rt, {"Y": Y, "pos": pos, "crd": crd, "vals": vals, "X": X})
        np.testing.assert_allclose(Y.data, mat @ Xd, rtol=1e-12)

    def test_csr_spmm_transpose_matches_scipy(self, rt):
        mat = random_csr(25, 30, seed=7)
        pos, crd, vals = make_csr_stores(rt, mat)
        Xd = np.random.default_rng(8).random((25, 3))
        X = Store.create((25, 3), np.float64, data=Xd, runtime=rt)
        Y = Store.create((30, 3), np.float64, runtime=rt)
        rt.fill(Y.region, 0.0)
        spec = get_registry().get("Y(j,k)=A(i,j)*X(i,k)", CSR, ProcessorKind.GPU)
        launch(spec, rt, {"Y": Y, "pos": pos, "crd": crd, "vals": vals, "X": X})
        np.testing.assert_allclose(Y.data, mat.T @ Xd, rtol=1e-12)

    def test_csr_sddmm_matches_reference(self, rt):
        mat = random_csr(20, 22, seed=9)
        pos, crd, vals = make_csr_stores(rt, mat)
        rng = np.random.default_rng(10)
        Cd, Dd = rng.random((20, 5)), rng.random((22, 5))
        C = Store.create((20, 5), np.float64, data=Cd, runtime=rt)
        D = Store.create((22, 5), np.float64, data=Dd, runtime=rt)
        out = Store.create((mat.nnz,), np.float64, runtime=rt)
        spec = get_registry().get(
            "R(i,j)=B(i,j)*C(i,k)*D(j,k)", CSR, ProcessorKind.GPU
        )
        launch(
            spec,
            rt,
            {"out_vals": out, "pos": pos, "crd": crd, "vals": vals, "C": C, "D": D},
        )
        expected = mat.multiply(Cd @ Dd.T).tocsr()
        expected.sum_duplicates()
        ref = mat.copy()
        ref.data = out.data
        np.testing.assert_allclose(ref.toarray(), expected.toarray(), rtol=1e-12)

    def test_csr_row_sums(self, rt):
        mat = random_csr(40, 30, seed=11)
        pos, crd, vals = make_csr_stores(rt, mat)
        y = Store.create((40,), np.float64, runtime=rt)
        spec = get_registry().get("y(i)=A(i,j)", CSR, ProcessorKind.GPU)
        launch(spec, rt, {"y": y, "pos": pos, "vals": vals})
        np.testing.assert_allclose(y.data, np.asarray(mat.sum(axis=1)).ravel(), rtol=1e-12)

    def test_csr_col_sums(self, rt):
        mat = random_csr(40, 30, seed=12)
        pos, crd, vals = make_csr_stores(rt, mat)
        y = Store.create((30,), np.float64, runtime=rt)
        rt.fill(y.region, 0.0)
        spec = get_registry().get("y(j)=A(i,j)", CSR, ProcessorKind.GPU)
        launch(spec, rt, {"y": y, "pos": pos, "crd": crd, "vals": vals})
        np.testing.assert_allclose(y.data, np.asarray(mat.sum(axis=0)).ravel(), rtol=1e-12)

    def test_csr_diagonal(self, rt):
        mat = random_csr(30, 30, seed=13)
        pos, crd, vals = make_csr_stores(rt, mat)
        y = Store.create((30,), np.float64, runtime=rt)
        spec = get_registry().get("y(i)=A(i,i)", CSR, ProcessorKind.GPU)
        launch(spec, rt, {"y": y, "pos": pos, "crd": crd, "vals": vals})
        np.testing.assert_allclose(y.data, mat.diagonal(), rtol=1e-12)

    def test_coo_spmv(self, rt):
        mat = random_csr(35, 28, seed=14).tocoo()
        row = Store.create((mat.nnz,), np.int64, data=mat.row.astype(np.int64), runtime=rt)
        col = Store.create((mat.nnz,), np.int64, data=mat.col.astype(np.int64), runtime=rt)
        vals = Store.create((mat.nnz,), np.float64, data=mat.data, runtime=rt)
        xd = np.random.default_rng(15).random(28)
        x = Store.create((28,), np.float64, data=xd, runtime=rt)
        y = Store.create((35,), np.float64, runtime=rt)
        rt.fill(y.region, 0.0)
        spec = get_registry().get("y(i)=A(i,j)*x(j)", COO, ProcessorKind.GPU)
        launch(spec, rt, {"y": y, "row": row, "col": col, "vals": vals, "x": x})
        np.testing.assert_allclose(y.data, mat @ xd, rtol=1e-12)

    def test_dia_spmv(self, rt):
        n = 32
        diags = np.array([-2, 0, 3])
        rng = np.random.default_rng(16)
        data = rng.random((len(diags), n))
        mat = sps.dia_matrix((data, diags), shape=(n, n))
        # Our DIA layout stores data transposed: (n, ndiags), entry
        # data_t[i, d] multiplies x[i + offsets[d]].
        data_t = np.zeros((n, len(diags)))
        for d, off in enumerate(diags):
            for i in range(n):
                j = i + off
                if 0 <= j < n:
                    data_t[i, d] = data[d, j]
        data_s = Store.create((n, len(diags)), np.float64, data=data_t, runtime=rt)
        offs = Store.create((len(diags),), np.int64, data=diags.astype(np.int64), runtime=rt)
        xd = rng.random(n)
        x = Store.create((n,), np.float64, data=xd, runtime=rt)
        y = Store.create((n,), np.float64, runtime=rt)
        # Explicit shifted-tile partition of x.
        tiling = Tiling.create(y.region, rt.num_procs)
        lo_off, hi_off = int(diags.min()), int(diags.max())
        rects = []
        for c in range(tiling.color_count):
            r = tiling.rect(c)
            rects.append(
                Rect(
                    (max(0, r.lo[0] + lo_off),),
                    (min(n, r.hi[0] + hi_off),),
                )
            )
        xpart = ExplicitPartition(x.region, rects)
        spec = get_registry().get("y(i)=A(i,j)*x(j)", DIA, ProcessorKind.GPU)
        launch(
            spec,
            rt,
            {"y": y, "data": data_s, "offsets": offs, "x": x},
            explicit_partitions={"x": xpart},
        )
        np.testing.assert_allclose(y.data, mat @ xd, rtol=1e-12)

    def test_complex_spmv(self, rt):
        mat = random_csr(20, 20, seed=17)
        cvals = mat.data.astype(np.complex128) * (1 + 2j)
        cmat = sps.csr_matrix((cvals, mat.indices, mat.indptr), shape=mat.shape)
        pos, crd, vals = make_csr_stores(rt, cmat, dtype=np.complex128)
        xd = np.random.default_rng(18).random(20) + 1j
        x = Store.create((20,), np.complex128, data=xd, runtime=rt)
        y = Store.create((20,), np.complex128, runtime=rt)
        spec = get_registry().get("y(i)=A(i,j)*x(j)", CSR, ProcessorKind.GPU)
        launch(spec, rt, {"y": y, "pos": pos, "crd": crd, "vals": vals, "x": x})
        np.testing.assert_allclose(y.data, cmat @ xd, rtol=1e-12)

    def test_reshape_penalty_increases_cost(self, rt):
        mat = random_csr(64, 64, seed=19)
        pos, crd, vals = make_csr_stores(rt, mat)
        spec = get_registry().get("y(i)=A(i,j)*x(j)", CSR, ProcessorKind.GPU)

        class FakeCtx:
            arrays = {"vals": vals.data, "crd": crd.data}
            rects = {
                "crd": Rect((0,), (mat.nnz,)),
                "pos": Rect((0, 0), (64, 2)),
            }

            class config:
                local_reshape_penalty = True

        with_penalty = spec.cost(FakeCtx)[1]
        FakeCtx.config.local_reshape_penalty = False
        without = spec.cost(FakeCtx)[1]
        assert with_penalty > without


class TestCompileCache:
    """exec-compilation is memoized by (name, source) signature."""

    def _nest_plan(self):
        from types import SimpleNamespace

        from repro.analysis import depend
        from repro.legion import Pointwise, Privilege, Requirement

        def req(name, uid, priv):
            reg = SimpleNamespace(uid=uid, name="", data=np.zeros(4))
            return Requirement(name, reg, None, priv)

        mul = SimpleNamespace(
            name="multiply",
            pointwise=Pointwise(
                ("multiply",),
                expr=(("load", "a"), ("scalar", "c"), ("bin", "multiply")),
                out="out",
            ),
            requirements=[
                req("out", 11, Privilege.WRITE_DISCARD),
                req("a", 10, Privilege.READ),
            ],
        )
        add = SimpleNamespace(
            name="add",
            pointwise=Pointwise(
                ("add",),
                expr=(("load", "a"), ("load", "b"), ("bin", "add")),
                out="out",
            ),
            requirements=[
                req("out", 12, Privilege.WRITE_DISCARD),
                req("a", 11, Privilege.READ),
                req("b", 10, Privilege.READ),
            ],
        )
        return depend.build_nest_plan([mul, add], elide_uids=frozenset({11}))

    def test_generate_nest_hits_cache_on_repeat(self):
        codegen.clear_compile_cache()
        plan = self._nest_plan()
        first = codegen.generate_nest(plan)
        stats = codegen.compile_cache_stats()
        assert stats == {"hits": 0, "misses": 1}
        second = codegen.generate_nest(plan)
        stats = codegen.compile_cache_stats()
        assert stats == {"hits": 1, "misses": 1}
        assert first.source == second.source
        assert first.name == second.name

    def test_different_sources_do_not_collide(self):
        codegen.clear_compile_cache()
        plan = self._nest_plan()
        codegen.generate_nest(plan)
        other = self._nest_plan()
        # Same shape, same source -> hit even from a distinct plan object.
        codegen.generate_nest(other)
        assert codegen.compile_cache_stats()["hits"] == 1

    def test_generate_statement_kernels_memoized(self):
        from repro.distal.ir import IndexVar, Tensor

        codegen.clear_compile_cache()
        i, j = IndexVar("i"), IndexVar("j")
        y, A, x = Tensor("y", 1), Tensor("A", 2), Tensor("x", 1)
        stmt = y[i] << A[i, j] * x[j]
        codegen.generate(stmt, CSR, proc_kind=ProcessorKind.GPU)
        before = codegen.compile_cache_stats()
        codegen.generate(stmt, CSR, proc_kind=ProcessorKind.GPU)
        after = codegen.compile_cache_stats()
        assert after["hits"] == before["hits"] + 1
        assert after["misses"] == before["misses"]
