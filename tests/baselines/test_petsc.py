"""Tests for the PETSc-like explicitly-partitioned baseline."""

import numpy as np
import pytest
import scipy.sparse as sps

from repro.apps.poisson import poisson2d_scipy
from repro.baselines.petsc import KSP, MatMPIAIJ, MPISim, PetscVec
from repro.baselines.systems import petsc_sim
from repro.machine import ProcessorKind, summit


@pytest.fixture
def sim():
    machine = summit(nodes=2)
    return MPISim(machine.scope(ProcessorKind.GPU, 4))


def random_csr(n, m, density=0.2, seed=0):
    rng = np.random.default_rng(seed)
    return sps.random(n, m, density=density, random_state=rng, format="csr")


class TestMatSplit:
    def test_diag_offdiag_partition(self, sim):
        mat = random_csr(40, 40, seed=1)
        A = MatMPIAIJ(sim, mat)
        assert sum(A.diag_nnz) + sum(A.offdiag_nnz) == mat.nnz

    def test_single_rank_has_no_ghosts(self):
        machine = summit(nodes=1)
        solo = MPISim(machine.scope(ProcessorKind.GPU, 1))
        A = MatMPIAIJ(solo, random_csr(20, 20, seed=2))
        assert A.offdiag_nnz == [0]
        assert A.ghost_from == [{}]

    def test_banded_matrix_ghosts_are_band_sized(self, sim):
        n = 64
        mat = sps.diags(
            [np.ones(n), np.ones(n - 1), np.ones(n - 1)], [0, 1, -1]
        ).tocsr()
        A = MatMPIAIJ(sim, mat)
        for ghosts in A.ghost_from:
            assert sum(ghosts.values()) <= 2  # one element per side


class TestMult:
    def test_matches_scipy(self, sim):
        mat = random_csr(30, 30, seed=3)
        A = MatMPIAIJ(sim, mat)
        x = PetscVec(sim, np.random.default_rng(4).random(30))
        y = A.mult(x)
        np.testing.assert_allclose(y.data, mat @ x.data, rtol=1e-12)

    def test_ghost_exchange_advances_clocks(self, sim):
        mat = random_csr(32, 32, density=0.5, seed=5)
        A = MatMPIAIJ(sim, mat)
        x = PetscVec(sim, np.ones(32))
        before = sim.messages
        A.mult(x)
        assert sim.messages > before
        assert sim.elapsed() > 0


class TestVec:
    def test_axpy(self, sim):
        x = PetscVec(sim, np.arange(8.0))
        y = PetscVec(sim, np.ones(8))
        y.axpy(2.0, x)
        np.testing.assert_allclose(y.data, 1 + 2 * np.arange(8.0))

    def test_dot_allreduces(self, sim):
        x = PetscVec(sim, np.arange(8.0))
        before = sim.allreduces
        val = x.dot(x)
        assert val == pytest.approx(float(np.dot(x.data, x.data)))
        assert sim.allreduces == before + 1

    def test_norm(self, sim):
        x = PetscVec(sim, np.array([3.0, 4.0]))
        assert x.norm() == pytest.approx(5.0)


class TestKSP:
    def test_cg_solves_poisson(self, sim):
        mat = poisson2d_scipy(8)
        A = MatMPIAIJ(sim, mat)
        b = PetscVec(sim, np.ones(64))
        ksp = KSP(sim, A)
        x = ksp.solve_cg(b, rtol=1e-10, maxiter=500)
        np.testing.assert_allclose(mat @ x.data, b.data, atol=1e-7)
        assert ksp.iterations > 0

    def test_cg_iteration_count_matches_scipy(self, sim):
        import scipy.sparse.linalg as spla

        mat = poisson2d_scipy(10)
        A = MatMPIAIJ(sim, mat)
        b = PetscVec(sim, np.ones(100))
        ksp = KSP(sim, A)
        ksp.solve_cg(b, rtol=1e-8, maxiter=1000)
        count = []
        spla.cg(mat, np.ones(100), rtol=1e-8, callback=lambda _: count.append(1))
        assert abs(ksp.iterations - len(count)) <= 3

    def test_fixed_iteration_mode(self, sim):
        mat = poisson2d_scipy(6)
        ksp = KSP(sim, MatMPIAIJ(sim, mat))
        ksp.solve_cg(PetscVec(sim, np.ones(36)), rtol=0.0, maxiter=5)
        assert ksp.iterations == 5


class TestScaling:
    def test_data_scale_slows_compute(self):
        machine = summit(nodes=1)
        times = []
        for scale in (1.0, 100.0):
            sim = MPISim(machine.scope(ProcessorKind.GPU, 2), data_scale=scale)
            A = MatMPIAIJ(sim, random_csr(64, 64, seed=6))
            x = PetscVec(sim, np.ones(64))
            A.mult(x)
            times.append(sim.elapsed())
        assert times[1] > times[0]

    def test_comm_scale_independent(self):
        machine = summit(nodes=2)
        sims = []
        for comm in (1.0, 1000.0):
            sim = MPISim(
                machine.scope(ProcessorKind.GPU, 6), data_scale=1.0, comm_scale=comm
            )
            A = MatMPIAIJ(sim, random_csr(60, 60, density=0.4, seed=7))
            A.mult(PetscVec(sim, np.ones(60)))
            sims.append(sim.elapsed())
        assert sims[1] > sims[0]

    def test_petsc_sim_factory(self):
        machine = summit(nodes=1)
        sim = petsc_sim(machine, ProcessorKind.CPU_SOCKET, 2)
        assert sim.size == 2
