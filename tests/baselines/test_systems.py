"""The system factories configure the paper's compared systems."""

import numpy as np
import pytest

import repro.numeric as rnp
import repro.sparse as sp
from repro.baselines import (
    cupy_system,
    legate_cpu_system,
    legate_gpu_system,
    petsc_sim,
    scipy_system,
)
from repro.legion.runtime import runtime_scope
from repro.machine import ProcessorKind, summit


@pytest.fixture(scope="module")
def machine():
    return summit(nodes=2)


class TestFactories:
    def test_legate_gpu(self, machine):
        rt = legate_gpu_system(machine, gpus=6, data_scale=3.0)
        assert rt.num_procs == 6
        assert rt.scope.kind == ProcessorKind.GPU
        assert rt.config.name == "legate"
        assert rt.config.data_scale == 3.0

    def test_legate_gpu_per_node(self, machine):
        rt = legate_gpu_system(machine, gpus=8, per_node=4)
        by_node = {}
        for p in rt.scope.processors:
            by_node[p.node] = by_node.get(p.node, 0) + 1
        assert all(v == 4 for v in by_node.values())

    def test_legate_cpu(self, machine):
        rt = legate_cpu_system(machine, sockets=3)
        assert rt.num_procs == 3
        assert rt.scope.kind == ProcessorKind.CPU_SOCKET

    def test_scipy_single_core(self, machine):
        rt = scipy_system(machine)
        assert rt.num_procs == 1
        assert rt.scope.kind == ProcessorKind.CPU_CORE
        assert rt.config.launch_overhead < 1e-5

    def test_cupy_single_gpu(self, machine):
        rt = cupy_system(machine)
        assert rt.num_procs == 1
        assert rt.config.sddmm_inefficiency > 1.0
        assert rt.config.memory_pressure_slowdown > 1.0

    def test_petsc_sim(self, machine):
        sim = petsc_sim(machine, ProcessorKind.GPU, 4)
        assert sim.size == 4

    def test_systems_run_the_same_program(self, machine):
        """The drop-in premise: identical source, different systems."""
        results = []
        for factory in (
            lambda: legate_gpu_system(machine, 3),
            lambda: cupy_system(machine),
            lambda: scipy_system(machine),
            lambda: legate_cpu_system(machine, 2),
        ):
            rt = factory()
            with runtime_scope(rt):
                A = sp.eye(32, format="csr") * 2.0
                x = rnp.ones(32)
                for _ in range(3):
                    x = A @ x
                results.append(x.to_numpy())
        for got in results[1:]:
            np.testing.assert_allclose(got, results[0], rtol=1e-14)

    def test_relative_speeds_ordering(self, machine):
        """On a big enough kernel: GPU > socket > core, per config."""
        times = {}
        for name, factory in {
            "gpu": lambda: legate_gpu_system(machine, 1),
            "socket": lambda: legate_cpu_system(machine, 1),
            "core": lambda: scipy_system(machine),
        }.items():
            rt = factory()
            with runtime_scope(rt):
                a = rnp.ones(500_000)
                rt.barrier()
                t0 = rt.barrier()
                for _ in range(3):
                    a = a * 1.0001
                times[name] = rt.barrier() - t0
        assert times["gpu"] < times["socket"] < times["core"]
