"""Every example script runs end-to-end (small arguments)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"

CASES = [
    ("quickstart.py", ["--n", "256", "--iters", "20", "--procs", "2"]),
    ("quickstart.py", ["--n", "128", "--iters", "10", "--scipy"]),
    ("poisson_solvers.py", ["--k", "15", "--procs", "1", "2"]),
    ("rydberg_simulation.py", ["--atoms", "8", "--procs", "2", "--t-final", "0.5"]),
    (
        "matrix_factorization.py",
        ["--users", "200", "--items", "100", "--ratings", "4000",
         "--epochs", "2", "--batch", "1024"],
    ),
    ("custom_operation.py", []),
    ("pagerank.py", ["--nodes", "800", "--procs", "2"]),
    ("weak_scaling_demo.py", ["--figure", "fig8"]),
]


@pytest.mark.parametrize(
    "script,args", CASES, ids=[f"{c[0]}:{' '.join(c[1])[:24]}" for c in CASES]
)
def test_example_runs(script, args):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "examples must print their results"
