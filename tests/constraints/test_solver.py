"""Unit tests for the constraint solver (§4.1)."""

import numpy as np
import pytest

from repro.constraints import (
    Align,
    Broadcast,
    ConstraintError,
    Image,
    ImageKind,
    Store,
    solve_partitions,
)
from repro.legion import (
    ImageByCoordinate,
    ImageByRange,
    Replicate,
    Runtime,
    RuntimeConfig,
    Tiling,
)
from repro.legion.runtime import runtime_scope
from repro.machine import ProcessorKind, laptop


@pytest.fixture
def rt():
    machine = laptop()
    runtime = Runtime(machine.scope(ProcessorKind.GPU, 2), RuntimeConfig.legate())
    with runtime_scope(runtime):
        yield runtime


class TestAlignment:
    def test_aligned_stores_share_boundaries(self, rt):
        a = Store.create((10,), np.float64, runtime=rt)
        b = Store.create((10,), np.float64, runtime=rt)
        sol = solve_partitions([a, b], [Align(a, b)], colors=2)
        pa, pb = sol[a.region.uid], sol[b.region.uid]
        assert isinstance(pa, Tiling) and isinstance(pb, Tiling)
        assert pa.boundaries == pb.boundaries

    def test_key_partition_reused(self, rt):
        a = Store.create((10,), np.float64, runtime=rt)
        b = Store.create((10,), np.float64, runtime=rt)
        custom = Tiling(a.region, (0, 7, 10))
        a.set_key_partition(custom)
        sol = solve_partitions([a, b], [Align(a, b)], colors=2)
        assert sol[a.region.uid].boundaries == (0, 7, 10)
        assert sol[b.region.uid].boundaries == (0, 7, 10)

    def test_largest_store_wins(self, rt):
        small = Store.create((10,), np.float32, runtime=rt)
        big = Store.create((10,), np.float64, runtime=rt)
        small.set_key_partition(Tiling(small.region, (0, 1, 10)))
        big.set_key_partition(Tiling(big.region, (0, 9, 10)))
        sol = solve_partitions([small, big], [Align(small, big)], colors=2)
        assert sol[big.region.uid].boundaries == (0, 9, 10)

    def test_reuse_disabled_retiles(self, rt):
        a = Store.create((10,), np.float64, runtime=rt)
        a.set_key_partition(Tiling(a.region, (0, 1, 10)))
        sol = solve_partitions([a], [], colors=2, reuse_partitions=False)
        assert sol[a.region.uid].boundaries == (0, 5, 10)

    def test_stale_key_partition_ignored(self, rt):
        a = Store.create((10,), np.float64, runtime=rt)
        a.set_key_partition(Tiling.create(a.region, 4))  # wrong color count
        sol = solve_partitions([a], [], colors=2)
        assert sol[a.region.uid].color_count == 2

    def test_misaligned_lengths_rejected(self, rt):
        a = Store.create((10,), np.float64, runtime=rt)
        b = Store.create((11,), np.float64, runtime=rt)
        with pytest.raises(ConstraintError):
            solve_partitions([a, b], [Align(a, b)], colors=2)

    def test_transitive_alignment(self, rt):
        a = Store.create((12,), np.float64, runtime=rt)
        b = Store.create((12,), np.float64, runtime=rt)
        c = Store.create((12,), np.float64, runtime=rt)
        sol = solve_partitions([a, b, c], [Align(a, b), Align(b, c)], colors=2)
        assert (
            sol[a.region.uid].boundaries
            == sol[b.region.uid].boundaries
            == sol[c.region.uid].boundaries
        )


class TestBroadcast:
    def test_broadcast_replicates(self, rt):
        s = Store.create((5,), np.float64, runtime=rt)
        sol = solve_partitions([s], [Broadcast(s)], colors=2)
        assert isinstance(sol[s.region.uid], Replicate)

    def test_broadcast_and_align_conflict(self, rt):
        a = Store.create((5,), np.float64, runtime=rt)
        b = Store.create((5,), np.float64, runtime=rt)
        with pytest.raises(ConstraintError):
            solve_partitions(
                [a, b], [Broadcast(a), Align(a, b)], colors=2
            )


class TestImages:
    def make_csr_stores(self, rt):
        # 4x4 CSR with 2 nnz per row.
        pos = Store.create(
            (4, 2),
            np.int64,
            data=np.array([(0, 2), (2, 4), (4, 6), (6, 8)]),
            runtime=rt,
        )
        crd = Store.create(
            (8,), np.int64, data=np.array([0, 1, 1, 2, 2, 3, 0, 3]), runtime=rt
        )
        vals = Store.create((8,), np.float64, runtime=rt)
        x = Store.create((4,), np.float64, runtime=rt)
        y = Store.create((4,), np.float64, runtime=rt)
        return pos, crd, vals, x, y

    def test_spmv_constraint_chain(self, rt):
        """The Fig. 4 constraint set: equals + two images."""
        pos, crd, vals, x, y = self.make_csr_stores(rt)
        constraints = [
            Align(y, pos),
            Image(pos, crd, ImageKind.RANGE),
            Image(pos, vals, ImageKind.RANGE),
            Image(crd, x, ImageKind.COORDINATE),
        ]
        sol = solve_partitions([y, pos, crd, vals, x], constraints, colors=2)
        assert isinstance(sol[crd.region.uid], ImageByRange)
        assert isinstance(sol[vals.region.uid], ImageByRange)
        assert isinstance(sol[x.region.uid], ImageByCoordinate)
        # crd/vals images follow the pos rows exactly.
        assert sol[crd.region.uid].rect(0).lo == (0,)
        assert sol[crd.region.uid].rect(0).hi == (4,)
        assert sol[vals.region.uid].rect(1).lo == (4,)

    def test_image_dest_cannot_be_aligned(self, rt):
        pos, crd, vals, x, y = self.make_csr_stores(rt)
        with pytest.raises(ConstraintError):
            solve_partitions(
                [pos, crd, y],
                [Image(pos, crd, ImageKind.RANGE), Align(crd, y)],
                colors=2,
            )

    def test_dangling_image_source(self, rt):
        pos, crd, vals, x, y = self.make_csr_stores(rt)
        # Source never gets a partition: crd is a dest of a missing chain.
        with pytest.raises(ConstraintError):
            solve_partitions(
                [crd, x],
                [
                    Image(crd, x, ImageKind.COORDINATE),
                    Image(x, crd, ImageKind.COORDINATE),
                ],
                colors=2,
            )

    def test_chained_images(self, rt):
        pos, crd, vals, x, y = self.make_csr_stores(rt)
        constraints = [
            Image(pos, crd, ImageKind.RANGE),
            Image(crd, x, ImageKind.COORDINATE),
        ]
        sol = solve_partitions([pos, crd, x], constraints, colors=2)
        assert isinstance(sol[x.region.uid], ImageByCoordinate)


class TestDefaults:
    def test_unconstrained_store_gets_tiling(self, rt):
        s = Store.create((6,), np.float64, runtime=rt)
        sol = solve_partitions([s], [], colors=2)
        assert isinstance(sol[s.region.uid], Tiling)
        assert sol[s.region.uid].color_count == 2
