"""Chaos bench harness: acceptance bars hold on a reduced workload."""

from repro.harness import chaos_bench
from repro.harness.chaos_bench import _compare, _measure, _scenarios
from repro.legion.chaos import ChaosConfig, LossSchedule
from repro.machine import summit

GRID = 16
ITERS = 4


def _small(chaos):
    return _measure(summit(nodes=1), 2, chaos, grid=GRID, iters=ITERS)


def test_baseline_is_clean():
    base = _small(None)
    assert base["faults_injected"] == {}
    assert base["checker_violations"] == []
    assert base["modeled_time_s"] > 0


def test_transient_copy_scenario_matches_baseline():
    base = _small(None)
    run = _compare(base, _small(ChaosConfig(seed=7, copy_fault_rate=0.05)))
    assert run["faults_injected"].get("copy", 0) > 0
    assert run["bitwise_identical"]
    assert run["checker_clean"]
    assert run["overhead_ratio"] <= chaos_bench.MAX_OVERHEAD_RATIO


def test_gpu_loss_scenario_recovers():
    base = _small(None)
    t_mid = (base["t_solve_start"] + base["t_solve_end"]) / 2
    chaos = ChaosConfig(
        seed=7,
        checkpoint_every=16,
        losses=(LossSchedule("gpu", 1, t_mid),),
    )
    run = _compare(base, _small(chaos))
    assert run["faults_injected"].get("gpu-loss", 0) == 1
    assert run["checkpoints"] > 0
    assert run["tasks_reexecuted"] > 0
    assert run["bitwise_identical"]
    assert run["checker_clean"]


def test_scenarios_anchor_loss_to_solve_window():
    schedules = _scenarios((1.0, 3.0))
    loss = schedules["gpu_loss"].losses[0]
    assert loss.kind == "gpu" and loss.at_time == 2.0
    assert schedules["transient_copy"].copy_fault_rate > 0
    assert schedules["alloc_flaky"].alloc_fault_rate > 0
