"""Soak fuzzer harness: determinism, invariant judging, payload shape."""

import numpy as np

from repro.harness.soak_bench import (
    _FAMILIES,
    _judge,
    _measure,
    _pinned_scenario,
    _random_scenario,
    run_soak,
)
from repro.legion.chaos import ChaosConfig, LossSchedule

NODES = 2
PROCS = 4


def test_scenario_generation_is_seed_deterministic():
    window = (0.002, 0.008)
    a = [
        _random_scenario(np.random.default_rng(5), i, window, NODES, PROCS)
        for i in range(1, 6)
    ]
    b = [
        _random_scenario(np.random.default_rng(5), i, window, NODES, PROCS)
        for i in range(1, 6)
    ]
    assert [s["chaos"] for s in a] == [s["chaos"] for s in b]
    assert [s["name"] for s in a] == [s["name"] for s in b]


def test_random_scenarios_cover_schedule_families():
    window = (0.002, 0.008)
    rng = np.random.default_rng(0)
    fams = {
        _random_scenario(rng, i, window, NODES, PROCS)["family"]
        for i in range(1, 60)
    }
    assert fams == set(_FAMILIES)


def test_pinned_scenario_is_node0_loss_at_replicas_2():
    spec = _pinned_scenario((0.002, 0.008))
    chaos = spec["chaos"]
    assert chaos.ckpt_replicas == 2
    assert chaos.losses == (LossSchedule("node", 0, 0.005),)
    assert chaos.checkpoint_every > 0


def test_judge_survival_and_clean_fault_error():
    baseline = _measure(None, nodes=NODES, procs=PROCS)
    window = (baseline["t_solve_start"], baseline["t_solve_end"])
    # The pinned scenario must complete bitwise-identical.
    ok = _judge(baseline, _pinned_scenario(window), NODES, PROCS)
    assert ok["outcome"] == "completed"
    assert ok["bitwise_identical"] and ok["checker_clean"]
    assert ok["invariant_ok"] and not ok["silent_corruption"]
    assert ok["recoveries"] >= 1
    # An unreplicated store loss must be judged a *clean* fault-error.
    fatal = {
        "name": "store-loss",
        "family": "node_loss",
        "chaos": ChaosConfig(
            checkpoint_every=8,
            ckpt_replicas=1,
            losses=(LossSchedule("node", 0, sum(window) / 2),),
        ),
    }
    bad = _judge(baseline, fatal, NODES, PROCS)
    assert bad["outcome"] == "fault-error"
    assert bad["invariant_ok"]
    assert "checkpoint store" in bad["error"]


def test_run_soak_payload_shape_and_invariant():
    payload = run_soak(scenarios=3, seed=1)
    assert payload["summary"]["scenarios"] == 3
    assert len(payload["scenarios"]) == 3
    assert payload["scenarios"][0]["name"] == "s000-node0-replicas2"
    assert payload["summary"]["silent_corruptions"] == 0
    assert payload["summary"]["invariant_violations"] == 0
    assert payload["summary"]["node0_loss_replicated_survivals"] >= 1
    for rec in payload["scenarios"]:
        assert rec["invariant_ok"]
