"""Unit tests for the harness plumbing (no full experiment runs)."""

import numpy as np
import pytest

from repro.harness.config import (
    GPU_COLUMNS,
    SOCKET_COLUMNS,
    WEAK_SCALING_COLUMNS,
    column_label,
    nodes_needed,
    reduced_size,
)
from repro.harness.figures import FigureResult, Series
from repro.harness.plotting import ascii_plot
from repro.harness.report import shape_checks


class TestConfig:
    def test_paper_columns(self):
        assert WEAK_SCALING_COLUMNS[0] == (1, 1)
        assert WEAK_SCALING_COLUMNS[-1] == (64, 192)
        assert GPU_COLUMNS == [1, 3, 6, 12, 24, 48, 96, 192]
        assert SOCKET_COLUMNS == [1, 1, 2, 4, 8, 16, 32, 64]

    def test_socket_gpu_pairing(self):
        """Columns pair each socket with its three NVLink GPUs."""
        for sockets, gpus in WEAK_SCALING_COLUMNS[1:]:
            assert gpus == 3 * sockets

    def test_column_label(self):
        assert column_label((2, 6)) == "2/6"

    def test_nodes_needed(self):
        assert nodes_needed() == 32  # 64 sockets / 2 per node

    def test_reduced_size_caps_and_floors(self):
        assert reduced_size(10**9, procs=1) == 400_000
        assert reduced_size(10**9, procs=1000, per_proc_floor=512) == 512_000
        assert reduced_size(1000, procs=1) == 1000  # already small


class TestSeries:
    def test_add_and_lookup(self):
        s = Series("x")
        s.add(1, 10.0)
        s.add(3, None)
        s.add(6, 30.0)
        assert s.at(1) == 10.0
        assert s.at(3) is None
        assert s.at(99) is None
        assert s.first() == 10.0
        assert s.last() == 30.0


def make_result():
    fig = FigureResult(
        figure="Figure 8",
        title="t",
        xlabel="x",
        ylabel="y",
        columns=["1/1", "2/6"],
    )
    for name, vals in {
        "Legate-GPU": [300.0, 298.0],
        "CuPy (1 GPU)": [340.0, 340.0],
        "PETSc-GPU": [370.0, 369.0],
        "Legate-CPU": [17.0, 17.0],
        "SciPy": [2.0, 2.0],
        "PETSc-CPU": [20.0, 20.0],
    }.items():
        series = fig.series_for(name)
        for procs, v in zip([1, 6], vals):
            series.add(procs, v)
    return fig


class TestFigureResult:
    def test_table_renders_oom(self):
        fig = make_result()
        fig.series_for("Legate-GPU").points[-1] = (6, None)
        table = fig.format_table()
        assert "OOM" in table
        assert "Figure 8" in table

    def test_ratio(self):
        fig = make_result()
        assert fig.ratio("Legate-GPU", "PETSc-GPU", 1) == pytest.approx(300 / 370)
        assert fig.ratio("Legate-GPU", "missing", 1) is None

    def test_notes_in_table(self):
        fig = make_result()
        fig.add_note("hello note")
        assert "hello note" in fig.format_table()


class TestShapeChecks:
    def test_all_pass_on_paper_shaped_data(self):
        checks = shape_checks(make_result())
        assert checks
        assert all(c.startswith("PASS") for c in checks)

    def test_miss_detected(self):
        fig = make_result()
        # Make Legate-GPU faster than CuPy: violates the Fig. 8 shape.
        fig.series["Legate-GPU"].points[0] = (1, 400.0)
        checks = shape_checks(fig)
        assert any(c.startswith("MISS") for c in checks)


class TestPlotting:
    def test_ascii_plot_renders(self):
        art = ascii_plot(make_result(), width=30, height=8)
        assert "Figure 8" in art
        assert "Legate-GPU" in art
        # All six series glyphs appear in the legend.
        assert art.count("procs") >= 2

    def test_empty_series(self):
        fig = FigureResult("F", "t", "x", "y", ["a"])
        fig.series_for("empty").add(1, None)
        assert ascii_plot(fig) == "(no data)"
