"""Serve bench harness: load-gen determinism, scenario metrics, payload."""

import numpy as np
import scipy.sparse as sps

from repro.harness import serve_bench
from repro.harness.serve_bench import (
    SERVE_ITEMS,
    build_model_versions,
    generate_streams,
    run_scenario,
)
from repro.serve import TenantConfig


def _tiny_versions(n=2):
    return [
        sps.random(
            48, 48, density=0.2, random_state=s, format="csr",
            dtype=np.float64,
        )
        for s in range(n)
    ]


def test_load_generator_is_seed_deterministic():
    a = generate_streams(7, ["t0", "t1"], 8, n=16, dup_rate=0.3, dtype_mix=0.2)
    b = generate_streams(7, ["t0", "t1"], 8, n=16, dup_rate=0.3, dtype_mix=0.2)
    assert list(a) == list(b)
    for tenant in a:
        for (ta, xa), (tb, xb) in zip(a[tenant], b[tenant]):
            assert ta == tb
            assert xa.tobytes() == xb.tobytes()
    c = generate_streams(8, ["t0", "t1"], 8, n=16, dup_rate=0.3, dtype_mix=0.2)
    assert any(
        xa.tobytes() != xc.tobytes()
        for (_, xa), (_, xc) in zip(a["t0"], c["t0"])
    )


def test_load_generator_bursts_share_arrival_instants():
    streams = generate_streams(0, ["t"], 8, n=16)
    arrivals = [a for a, _ in streams["t"]]
    assert arrivals == sorted(arrivals)
    assert len(set(arrivals)) == 2  # 8 requests in bursts of 4
    assert arrivals[0] == 0.0 and arrivals[-1] > 0.0


def test_run_scenario_metrics_and_digest_stability():
    versions = _tiny_versions()
    tenants = [TenantConfig("t0"), TenantConfig("t1")]
    streams = generate_streams(1, ["t0", "t1"], 8, n=48)
    rec = run_scenario(versions, tenants, streams)
    assert rec["requests"] == 16
    assert rec["served"] == 16 and rec["failed"] == 0
    assert rec["throughput_rps"] > 0
    assert 0 < rec["p50_latency_s"] <= rec["p99_latency_s"]
    assert rec["batches"] >= 1
    assert set(rec["digests"]) == {f"t{i}:{j}" for i in range(2) for j in range(8)}
    # Same seed, fresh service: identical bits end to end.
    rec2 = run_scenario(versions, tenants, generate_streams(1, ["t0", "t1"], 8, n=48))
    assert rec2["digests"] == rec["digests"]


def test_batched_and_unbatched_scenarios_agree_bitwise():
    versions = _tiny_versions()
    tenants = [TenantConfig("t0"), TenantConfig("t1")]
    streams = generate_streams(2, ["t0", "t1"], 8, n=48)
    batched = run_scenario(versions, tenants, streams, max_batch=8, cache_capacity=0)
    unbatched = run_scenario(versions, tenants, streams, max_batch=1, cache_capacity=0)
    assert batched["digests"] == unbatched["digests"]
    assert batched["batches"] >= 1 and unbatched["batches"] == 0
    assert batched["launches"] < unbatched["launches"]
    assert batched["launch_overhead_s"] < unbatched["launch_overhead_s"]


def test_version_churn_scenario_pins_versions():
    versions = _tiny_versions()
    tenants = [TenantConfig("t0"), TenantConfig("t1")]
    streams = generate_streams(3, ["t0", "t1"], 8, n=48)
    rec = run_scenario(versions, tenants, streams, update_after=8)
    assert rec["served"] == 16 and rec["failed"] == 0
    # Requests admitted after the update computed against version 1:
    # digests differ from an update-free run for the later half.
    base = run_scenario(versions, tenants, streams)
    assert rec["digests"] != base["digests"]
    assert any(
        rec["digests"][k] == base["digests"][k] for k in rec["digests"]
    )


def test_model_versions_are_training_epochs():
    versions = build_model_versions(seed=0, n_versions=2)
    assert len(versions) == 2
    v0, v1 = versions
    assert v0.shape == v1.shape == (serve_bench.SERVE_USERS, SERVE_ITEMS)
    assert v0.nnz == v1.nnz  # same observed pattern, retrained values
    assert v0.data.tobytes() != v1.data.tobytes()
