"""Unit tests for the machine model."""

import pytest

from repro.machine import (
    Machine,
    MemoryKind,
    ProcessorKind,
    laptop,
    summit,
)
from repro.machine.model import MachineConfig


class TestSummitTopology:
    def test_node_contents(self):
        m = summit(nodes=2)
        assert len(m.procs(ProcessorKind.GPU)) == 12
        assert len(m.procs(ProcessorKind.CPU_SOCKET)) == 4
        assert len(m.procs(ProcessorKind.CPU_CORE)) == 2

    def test_memories(self):
        m = summit(nodes=1)
        sysmems = [x for x in m.memories if x.kind == MemoryKind.SYSMEM]
        fbs = [x for x in m.memories if x.kind == MemoryKind.FRAMEBUFFER]
        assert len(sysmems) == 1
        assert len(fbs) == 6
        assert fbs[0].capacity == 16 * 2**30

    def test_sockets_share_sysmem(self):
        m = summit(nodes=1)
        sockets = m.procs(ProcessorKind.CPU_SOCKET)
        assert sockets[0].memory.uid == sockets[1].memory.uid

    def test_gpus_have_private_framebuffers(self):
        m = summit(nodes=1)
        gpus = m.procs(ProcessorKind.GPU)
        assert len({g.memory.uid for g in gpus}) == 6


class TestScope:
    def test_scope_count(self):
        m = summit(nodes=2)
        scope = m.scope(ProcessorKind.GPU, 8)
        assert len(scope) == 8
        assert scope.kind == ProcessorKind.GPU

    def test_scope_per_node_limit(self):
        m = summit(nodes=4)
        scope = m.scope(ProcessorKind.GPU, 16, per_node=4)
        assert len(scope) == 16
        by_node = {}
        for p in scope.processors:
            by_node[p.node] = by_node.get(p.node, 0) + 1
        assert all(v == 4 for v in by_node.values())
        assert scope.nodes == 4

    def test_scope_too_large_raises(self):
        m = summit(nodes=1)
        with pytest.raises(ValueError):
            m.scope(ProcessorKind.GPU, 7)

    def test_memories_deduplicated_for_sockets(self):
        m = summit(nodes=1)
        scope = m.scope(ProcessorKind.CPU_SOCKET, 2)
        assert len(scope.memories()) == 1


class TestChannels:
    def test_same_node_uses_nvlink(self):
        m = summit(nodes=2)
        gpus = m.procs(ProcessorKind.GPU)
        same = [g for g in gpus if g.node == 0]
        chans = m.channels_between(same[0].memory, same[1].memory)
        assert len(chans) == 1
        assert chans[0].name.startswith("nvlink")

    def test_cross_node_uses_both_nics(self):
        m = summit(nodes=2)
        gpus = m.procs(ProcessorKind.GPU)
        a = next(g for g in gpus if g.node == 0)
        b = next(g for g in gpus if g.node == 1)
        chans = m.channels_between(a.memory, b.memory)
        assert len(chans) == 2
        assert all(c.name.startswith("nic") for c in chans)

    def test_same_memory_intra_channel(self):
        m = summit(nodes=1)
        mem = m.memories[0]
        chans = m.channels_between(mem, mem)
        assert len(chans) == 1
        assert chans[0].latency == 0.0

    def test_channel_occupancy_serializes(self):
        m = summit(nodes=2)
        nic = m._nic[0]
        s1, f1 = nic.transfer(10**6, ready=0.0)
        s2, f2 = nic.transfer(10**6, ready=0.0)
        assert s2 >= f1  # second transfer waits for the first
        m.reset_channels()
        assert nic.busy_until == 0.0

    def test_channel_identity_is_cached(self):
        m = summit(nodes=1)
        gpus = m.procs(ProcessorKind.GPU)
        c1 = m.channels_between(gpus[0].memory, gpus[1].memory)
        c2 = m.channels_between(gpus[1].memory, gpus[0].memory)
        assert c1[0] is c2[0]


class TestKernelTime:
    def test_roofline_compute_bound(self):
        m = summit(nodes=1)
        gpu = m.procs(ProcessorKind.GPU)[0]
        t = gpu.kernel_time(flops=7.0e12, bytes_moved=0)
        assert t == pytest.approx(1.0 + gpu.kernel_overhead)

    def test_roofline_bandwidth_bound(self):
        m = summit(nodes=1)
        gpu = m.procs(ProcessorKind.GPU)[0]
        t = gpu.kernel_time(flops=1.0, bytes_moved=820e9)
        assert t == pytest.approx(1.0 + gpu.kernel_overhead)

    def test_gpu_faster_than_socket_faster_than_core(self):
        m = summit(nodes=1)
        gpu = m.procs(ProcessorKind.GPU)[0]
        sock = m.procs(ProcessorKind.CPU_SOCKET)[0]
        core = m.procs(ProcessorKind.CPU_CORE)[0]
        work = (1e9, 1e9)
        assert gpu.kernel_time(*work) < sock.kernel_time(*work)
        assert sock.kernel_time(*work) < core.kernel_time(*work)


class TestLaptop:
    def test_is_small(self):
        m = laptop()
        assert len(m.procs(ProcessorKind.GPU)) == 2
        fb = m.procs(ProcessorKind.GPU)[0].memory
        assert fb.capacity == 64 * 2**20

    def test_custom_config(self):
        m = Machine(MachineConfig(nodes=3, gpus_per_node=1))
        assert len(m.procs(ProcessorKind.GPU)) == 3
        assert m.interconnect_latency(3) == m.config.nic_latency
        assert m.interconnect_latency(1) == m.config.nvlink_latency
