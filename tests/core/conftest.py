import numpy as np
import pytest
import scipy.sparse as sps

from repro.legion import Runtime, RuntimeConfig
from repro.legion.runtime import runtime_scope
from repro.machine import ProcessorKind, laptop


@pytest.fixture(params=[1, 2], ids=["p1", "p2"])
def rt(request):
    """Run every sparse test on 1 and 2 simulated GPUs."""
    machine = laptop()
    runtime = Runtime(
        machine.scope(ProcessorKind.GPU, request.param), RuntimeConfig.legate()
    )
    with runtime_scope(runtime):
        yield runtime


def random_scipy_csr(n, m, density=0.2, seed=0, dtype=np.float64):
    rng = np.random.default_rng(seed)
    mat = sps.random(n, m, density=density, random_state=rng, format="csr")
    mat.sum_duplicates()
    mat.sort_indices()
    if dtype == np.complex128:
        mat = mat.astype(np.complex128)
        mat.data = mat.data * (1 + 0.5j)
    return mat
