"""CSR matrices against SciPy semantics."""

import numpy as np
import pytest
import scipy.sparse as sps

import repro.numeric as rnp
import repro.sparse as sp

from tests.core.conftest import random_scipy_csr


class TestConstruction:
    def test_from_scipy(self, rt):
        ref = random_scipy_csr(20, 15, seed=1)
        A = sp.csr_matrix(ref)
        assert A.shape == (20, 15)
        assert A.nnz == ref.nnz
        np.testing.assert_allclose(A.toarray(), ref.toarray())

    def test_from_dense(self, rt):
        dense = np.array([[1.0, 0, 2], [0, 0, 3], [4, 5, 0]])
        A = sp.csr_matrix(dense)
        np.testing.assert_allclose(A.toarray(), dense)
        assert A.nnz == 5

    def test_from_coo_triple(self, rt):
        A = sp.csr_matrix(
            (np.array([1.0, 2.0, 3.0]), (np.array([0, 2, 0]), np.array([1, 2, 1]))),
            shape=(3, 3),
        )
        # Duplicate (0,1) entries are summed: 1.0 + 3.0.
        assert A.nnz == 2
        assert A.toarray()[0, 1] == 4.0

    def test_from_csr_arrays(self, rt):
        data = np.array([1.0, 2.0, 3.0])
        indices = np.array([0, 2, 1])
        indptr = np.array([0, 2, 2, 3])
        A = sp.csr_matrix((data, indices, indptr), shape=(3, 3))
        expected = np.array([[1.0, 0, 2], [0, 0, 0], [0, 3, 0]])
        np.testing.assert_allclose(A.toarray(), expected)

    def test_empty_shape(self, rt):
        A = sp.csr_matrix((4, 5))
        assert A.nnz == 0
        np.testing.assert_array_equal(A.toarray(), np.zeros((4, 5)))

    def test_pos_encoding(self, rt):
        """Fig. 3: pos stores {lo, hi} pairs, indptr is derived."""
        ref = random_scipy_csr(10, 10, seed=2)
        A = sp.csr_matrix(ref)
        np.testing.assert_array_equal(A.indptr, ref.indptr)
        np.testing.assert_array_equal(A.indices, ref.indices)
        pos = A.pos.data
        np.testing.assert_array_equal(pos[:, 0], ref.indptr[:-1])
        np.testing.assert_array_equal(pos[:, 1], ref.indptr[1:])

    def test_dtype_override(self, rt):
        ref = random_scipy_csr(5, 5, seed=3)
        A = sp.csr_matrix(ref, dtype=np.complex128)
        assert A.dtype == np.complex128

    def test_integer_data_promoted_to_float(self, rt):
        A = sp.csr_matrix(
            (np.array([1, 2]), (np.array([0, 1]), np.array([0, 1]))), shape=(2, 2)
        )
        assert A.dtype.kind == "f"


class TestProducts:
    @pytest.mark.parametrize("dtype", [np.float64, np.complex128])
    def test_matvec(self, rt, dtype):
        ref = random_scipy_csr(30, 24, seed=4, dtype=dtype)
        A = sp.csr_matrix(ref)
        xh = np.random.default_rng(5).random(24).astype(dtype)
        x = rnp.array(xh)
        np.testing.assert_allclose((A @ x).to_numpy(), ref @ xh, rtol=1e-12)

    def test_matvec_numpy_operand(self, rt):
        ref = random_scipy_csr(10, 10, seed=6)
        A = sp.csr_matrix(ref)
        xh = np.arange(10.0)
        np.testing.assert_allclose((A @ xh).to_numpy(), ref @ xh, rtol=1e-12)

    def test_star_is_matmul(self, rt):
        ref = random_scipy_csr(10, 10, seed=7)
        A = sp.csr_matrix(ref)
        x = rnp.array(np.arange(10.0))
        np.testing.assert_allclose((A * x).to_numpy(), ref @ np.arange(10.0), rtol=1e-12)

    def test_rmatvec(self, rt):
        ref = random_scipy_csr(12, 17, seed=8)
        A = sp.csr_matrix(ref)
        xh = np.random.default_rng(9).random(12)
        out = rnp.array(xh) @ A
        np.testing.assert_allclose(out.to_numpy(), ref.T @ xh, rtol=1e-12)

    def test_matmat_dense(self, rt):
        ref = random_scipy_csr(15, 10, seed=10)
        A = sp.csr_matrix(ref)
        Xh = np.random.default_rng(11).random((10, 3))
        np.testing.assert_allclose((A @ rnp.array(Xh)).to_numpy(), ref @ Xh, rtol=1e-12)

    def test_spgemm(self, rt):
        a = random_scipy_csr(12, 9, density=0.3, seed=12)
        b = random_scipy_csr(9, 14, density=0.3, seed=13)
        C = sp.csr_matrix(a) @ sp.csr_matrix(b)
        assert C.format == "csr"
        np.testing.assert_allclose(C.toarray(), (a @ b).toarray(), rtol=1e-12)

    def test_spgemm_chain_matches_scipy(self, rt):
        a = random_scipy_csr(8, 8, density=0.4, seed=14)
        A = sp.csr_matrix(a)
        C = A @ A @ A
        np.testing.assert_allclose(C.toarray(), (a @ a @ a).toarray(), rtol=1e-12)

    def test_sddmm(self, rt):
        ref = random_scipy_csr(10, 8, density=0.4, seed=15)
        A = sp.csr_matrix(ref)
        rng = np.random.default_rng(16)
        C, D = rng.random((10, 4)), rng.random((8, 4))
        R = A.sddmm(rnp.array(C), rnp.array(D))
        expected = ref.multiply(C @ D.T).toarray()
        np.testing.assert_allclose(R.toarray(), expected, rtol=1e-12)

    def test_dimension_mismatch(self, rt):
        A = sp.csr_matrix(random_scipy_csr(5, 5, seed=17))
        with pytest.raises(ValueError):
            A @ rnp.ones(6)


class TestReductions:
    def test_diagonal(self, rt):
        ref = random_scipy_csr(12, 12, seed=18)
        A = sp.csr_matrix(ref)
        np.testing.assert_allclose(A.diagonal().to_numpy(), ref.diagonal(), rtol=1e-12)

    def test_sum_all(self, rt):
        ref = random_scipy_csr(10, 10, seed=19)
        assert float(sp.csr_matrix(ref).sum()) == pytest.approx(ref.sum())

    def test_sum_axes(self, rt):
        ref = random_scipy_csr(10, 7, seed=20)
        A = sp.csr_matrix(ref)
        np.testing.assert_allclose(
            A.sum(axis=1).to_numpy(), np.asarray(ref.sum(axis=1)).ravel(), rtol=1e-12
        )
        np.testing.assert_allclose(
            A.sum(axis=0).to_numpy(), np.asarray(ref.sum(axis=0)).ravel(), rtol=1e-12
        )

    def test_mean(self, rt):
        ref = random_scipy_csr(6, 6, seed=21)
        assert float(sp.csr_matrix(ref).mean()) == pytest.approx(ref.mean())


class TestValueOps:
    def test_scale(self, rt):
        ref = random_scipy_csr(8, 8, seed=22)
        A = sp.csr_matrix(ref)
        np.testing.assert_allclose((2.5 * A).toarray(), 2.5 * ref.toarray())
        np.testing.assert_allclose((A * 2.5).toarray(), 2.5 * ref.toarray())
        np.testing.assert_allclose((A / 2.0).toarray(), ref.toarray() / 2.0)
        np.testing.assert_allclose((-A).toarray(), -ref.toarray())

    def test_scale_shares_structure(self, rt):
        A = sp.csr_matrix(random_scipy_csr(8, 8, seed=23))
        B = 3.0 * A
        assert B.pos is A.pos and B.crd is A.crd

    def test_copy_independent(self, rt):
        A = sp.csr_matrix(random_scipy_csr(8, 8, seed=24))
        B = A.copy()
        C = 0.0 * A  # does not touch B
        np.testing.assert_allclose(B.toarray(), A.toarray())

    @pytest.mark.filterwarnings("ignore::numpy.exceptions.ComplexWarning")
    def test_astype_and_conj(self, rt):
        ref = random_scipy_csr(6, 6, seed=25, dtype=np.complex128)
        A = sp.csr_matrix(ref)
        np.testing.assert_allclose(A.conj().toarray(), ref.conj().toarray())
        # Complex->real discards the imaginary part (NumPy warns, like SciPy).
        assert A.astype(np.float64).dtype == np.float64

    def test_power(self, rt):
        ref = random_scipy_csr(6, 6, seed=26)
        A = sp.csr_matrix(ref)
        np.testing.assert_allclose(A.power(2).toarray(), ref.power(2).toarray(), rtol=1e-12)

    def test_abs(self, rt):
        ref = random_scipy_csr(6, 6, seed=27)
        ref.data -= 0.5
        A = sp.csr_matrix(ref)
        np.testing.assert_allclose(abs(A).toarray(), abs(ref).toarray(), rtol=1e-12)

    def test_data_is_composable_with_numeric(self, rt):
        """The paper's interop claim: matrix values are numeric arrays."""
        A = sp.csr_matrix(random_scipy_csr(8, 8, seed=28))
        total = rnp.sum(A.data * 2.0)
        assert float(total) == pytest.approx(2 * A.toarray().sum())


class TestRowSlicing:
    def test_row_slice(self, rt):
        ref = random_scipy_csr(12, 9, seed=29)
        A = sp.csr_matrix(ref)
        sub = A[3:9]
        assert sub.shape == (6, 9)
        np.testing.assert_allclose(sub.toarray(), ref[3:9].toarray())

    def test_getrow(self, rt):
        ref = random_scipy_csr(6, 6, seed=30)
        A = sp.csr_matrix(ref)
        np.testing.assert_allclose(A.getrow(2).toarray(), ref.getrow(2).toarray())

    def test_slice_shares_value_region(self, rt):
        A = sp.csr_matrix(random_scipy_csr(12, 9, seed=31))
        sub = A[3:9]
        assert sub.vals is A.vals


class TestTranspose:
    def test_transpose_is_csc_and_free(self, rt):
        A = sp.csr_matrix(random_scipy_csr(7, 5, seed=32))
        At = A.T
        assert At.format == "csc"
        assert At.shape == (5, 7)
        assert At.vals is A.vals
        np.testing.assert_allclose(At.toarray(), A.toarray().T)

    def test_double_transpose_identity(self, rt):
        A = sp.csr_matrix(random_scipy_csr(7, 5, seed=33))
        np.testing.assert_allclose(A.T.T.toarray(), A.toarray())
