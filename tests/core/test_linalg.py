"""Iterative solvers and eigensolvers against SciPy results."""

import numpy as np
import pytest
import scipy.sparse as sps
import scipy.sparse.linalg as spla

import repro.numeric as rnp
import repro.sparse as sp
from repro.core.linalg import LinearOperator, aslinearoperator

from tests.core.conftest import random_scipy_csr


def spd_matrix(n, seed=0):
    """A well-conditioned SPD matrix (diagonally dominant)."""
    rng = np.random.default_rng(seed)
    a = sps.random(n, n, density=0.15, random_state=rng, format="csr")
    a = 0.5 * (a + a.T) + n * sps.eye(n)
    return a.tocsr()


def poisson1d(n):
    return sps.diags(
        [2 * np.ones(n), -np.ones(n - 1), -np.ones(n - 1)], [0, 1, -1]
    ).tocsr()


def nonsym_matrix(n, seed=1):
    rng = np.random.default_rng(seed)
    a = sps.random(n, n, density=0.2, random_state=rng, format="csr")
    return (a + n * sps.eye(n)).tocsr()


class TestCG:
    def test_converges_to_solution(self, rt):
        ref = spd_matrix(40, seed=2)
        b = np.random.default_rng(3).random(40)
        A = sp.csr_matrix(ref)
        x, info = sp.linalg.cg(A, rnp.array(b), rtol=1e-10)
        assert info == 0
        np.testing.assert_allclose(ref @ x.to_numpy(), b, atol=1e-7)

    def test_x0(self, rt):
        ref = spd_matrix(20, seed=4)
        b = np.ones(20)
        xs = spla.cg(ref, b, rtol=1e-12)[0]
        A = sp.csr_matrix(ref)
        x, info = sp.linalg.cg(A, rnp.array(b), x0=rnp.array(xs), rtol=1e-10)
        assert info == 0

    def test_maxiter_reports_nonconvergence(self, rt):
        ref = poisson1d(64)
        b = np.ones(64)
        x, info = sp.linalg.cg(sp.csr_matrix(ref), rnp.array(b), maxiter=2, rtol=1e-14)
        assert info == 2

    def test_preconditioned(self, rt):
        ref = spd_matrix(30, seed=5)
        b = np.random.default_rng(6).random(30)
        A = sp.csr_matrix(ref)
        dinv = rnp.array(1.0 / ref.diagonal())
        M = LinearOperator((30, 30), matvec=lambda r: r * dinv)
        x, info = sp.linalg.cg(A, rnp.array(b), M=M, rtol=1e-10)
        assert info == 0
        np.testing.assert_allclose(ref @ x.to_numpy(), b, atol=1e-7)

    def test_callback_called(self, rt):
        ref = spd_matrix(16, seed=7)
        hits = []
        sp.linalg.cg(
            sp.csr_matrix(ref),
            rnp.ones(16),
            rtol=1e-10,
            callback=lambda xk: hits.append(1),
        )
        assert len(hits) > 0

    def test_iteration_count_close_to_scipy(self, rt):
        """Same algorithm, same conditioning: similar iteration counts."""
        ref = poisson1d(128)
        b = np.ones(128)
        ours = []
        sp.linalg.cg(
            sp.csr_matrix(ref), rnp.array(b), rtol=1e-8,
            callback=lambda xk: ours.append(1),
        )
        theirs = []
        spla.cg(ref, b, rtol=1e-8, callback=lambda xk: theirs.append(1))
        assert abs(len(ours) - len(theirs)) <= 3


class TestOtherKrylov:
    @pytest.mark.parametrize("solver", ["cgs", "bicg", "bicgstab"])
    def test_nonsymmetric_solvers(self, rt, solver):
        ref = nonsym_matrix(30, seed=8)
        b = np.random.default_rng(9).random(30)
        fn = getattr(sp.linalg, solver)
        x, info = fn(sp.csr_matrix(ref), rnp.array(b), rtol=1e-10)
        assert info == 0
        np.testing.assert_allclose(ref @ x.to_numpy(), b, atol=1e-6)

    def test_gmres(self, rt):
        ref = nonsym_matrix(30, seed=10)
        b = np.random.default_rng(11).random(30)
        x, info = sp.linalg.gmres(sp.csr_matrix(ref), rnp.array(b), rtol=1e-10)
        assert info == 0
        np.testing.assert_allclose(ref @ x.to_numpy(), b, atol=1e-6)

    def test_gmres_with_restart(self, rt):
        ref = nonsym_matrix(40, seed=12)
        b = np.ones(40)
        x, info = sp.linalg.gmres(
            sp.csr_matrix(ref), rnp.array(b), restart=5, rtol=1e-8
        )
        assert info == 0
        np.testing.assert_allclose(ref @ x.to_numpy(), b, atol=1e-5)

    def test_bicgstab_complex(self, rt):
        ref = nonsym_matrix(20, seed=13).astype(np.complex128)
        ref = ref + 1j * sps.eye(20)
        b = np.random.default_rng(14).random(20) + 0.5j
        x, info = sp.linalg.bicgstab(
            sp.csr_matrix(ref.tocsr()), rnp.array(b), rtol=1e-10, maxiter=500
        )
        assert info == 0
        np.testing.assert_allclose(ref @ x.to_numpy(), b, atol=1e-6)


class TestEigen:
    def test_power_iteration(self, rt):
        ref = spd_matrix(30, seed=15)
        eig, vec = sp.linalg.power_iteration(sp.csr_matrix(ref), iters=100)
        expected = spla.eigsh(ref, k=1, which="LA")[0][0]
        assert float(eig) == pytest.approx(expected, rel=1e-4)

    def test_eigsh_largest(self, rt):
        ref = spd_matrix(40, seed=16)
        vals = sp.linalg.eigsh(sp.csr_matrix(ref), k=3, which="LA", maxiter=39)
        expected = np.sort(spla.eigsh(ref, k=3, which="LA")[0])
        np.testing.assert_allclose(vals, expected, rtol=1e-6)

    def test_eigsh_smallest(self, rt):
        ref = poisson1d(32)
        vals = sp.linalg.eigsh(sp.csr_matrix(ref), k=2, which="SA", maxiter=32)
        expected = np.sort(spla.eigsh(ref, k=2, which="SA")[0])
        np.testing.assert_allclose(vals, expected, rtol=1e-5, atol=1e-8)

    def test_eigsh_vectors(self, rt):
        ref = spd_matrix(24, seed=17)
        vals, vecs = sp.linalg.eigsh(
            sp.csr_matrix(ref), k=1, which="LA", return_eigenvectors=True, maxiter=23
        )
        v = vecs[0].to_numpy()
        residual = np.linalg.norm(ref @ v - vals[-1] * v) / np.linalg.norm(v)
        assert residual < 1e-5

    def test_eigsh_k_validation(self, rt):
        with pytest.raises(ValueError):
            sp.linalg.eigsh(sp.csr_matrix(poisson1d(5)), k=5)


class TestNorms:
    def test_fro(self, rt):
        ref = random_scipy_csr(8, 8, seed=18)
        assert float(sp.linalg.norm(sp.csr_matrix(ref))) == pytest.approx(
            spla.norm(ref)
        )

    def test_inf_norm(self, rt):
        ref = random_scipy_csr(8, 8, seed=19)
        assert float(sp.linalg.norm(sp.csr_matrix(ref), ord=np.inf)) == pytest.approx(
            spla.norm(ref, ord=np.inf)
        )

    def test_one_norm(self, rt):
        ref = random_scipy_csr(8, 8, seed=20)
        assert float(sp.linalg.norm(sp.csr_matrix(ref), ord=1)) == pytest.approx(
            spla.norm(ref, ord=1)
        )


class TestLinearOperator:
    def test_aslinearoperator_sparse(self, rt):
        ref = random_scipy_csr(10, 10, seed=21)
        op = aslinearoperator(sp.csr_matrix(ref))
        x = np.random.default_rng(22).random(10)
        np.testing.assert_allclose(op.matvec(rnp.array(x)).to_numpy(), ref @ x, rtol=1e-12)

    def test_transpose_operator(self, rt):
        ref = random_scipy_csr(8, 8, seed=23)
        op = aslinearoperator(sp.csr_matrix(ref)).T
        x = np.ones(8)
        np.testing.assert_allclose(op.matvec(rnp.array(x)).to_numpy(), ref.T @ x, rtol=1e-12)

    def test_matmul_syntax(self, rt):
        op = LinearOperator((3, 3), matvec=lambda v: v * 2.0)
        out = op @ rnp.ones(3)
        np.testing.assert_allclose(out.to_numpy(), 2 * np.ones(3))
