"""Runge-Kutta integrators against analytic solutions and SciPy."""

import numpy as np
import pytest
import scipy.sparse as sps

import repro.numeric as rnp
import repro.sparse as sp
from repro.integrate import solve_ivp


class TestRK45:
    def test_exponential_decay(self, rt):
        y0 = rnp.array(np.array([1.0, 2.0, 3.0]))
        res = solve_ivp(lambda t, y: y * -0.5, (0.0, 2.0), y0, method="RK45", rtol=1e-8, atol=1e-10)
        assert res.success
        expected = np.array([1.0, 2.0, 3.0]) * np.exp(-1.0)
        np.testing.assert_allclose(res.y.to_numpy(), expected, rtol=1e-6)

    def test_adapts_step(self, rt):
        y0 = rnp.ones(2)
        res = solve_ivp(lambda t, y: y * -1.0, (0.0, 1.0), y0, method="RK45", rtol=1e-10, atol=1e-12)
        loose = solve_ivp(lambda t, y: y * -1.0, (0.0, 1.0), y0, method="RK45", rtol=1e-3, atol=1e-4)
        assert res.nsteps > loose.nsteps

    def test_t_eval_records(self, rt):
        y0 = rnp.ones(2)
        res = solve_ivp(
            lambda t, y: y * -1.0,
            (0.0, 1.0),
            y0,
            method="RK45",
            t_eval=[0.5, 1.0],
            rtol=1e-8,
        )
        assert len(res.t_eval) == 2
        assert res.t_eval[0] >= 0.5

    def test_bad_span(self, rt):
        with pytest.raises(ValueError):
            solve_ivp(lambda t, y: y, (1.0, 0.0), rnp.ones(2))


class TestFixedStep:
    def test_rk4_order(self, rt):
        """Halving the step cuts the error by ~2^4."""
        y0 = rnp.array(np.array([1.0]))
        errs = []
        for h in (0.1, 0.05):
            res = solve_ivp(lambda t, y: y * -1.0, (0.0, 1.0), y0, method="RK4", step=h)
            errs.append(abs(res.y.to_numpy()[0] - np.exp(-1.0)))
        ratio = errs[0] / errs[1]
        assert 10 < ratio < 25

    def test_gbs8_high_accuracy(self, rt):
        y0 = rnp.array(np.array([1.0]))
        res = solve_ivp(lambda t, y: y * -1.0, (0.0, 1.0), y0, method="GBS8", step=0.25)
        assert abs(res.y.to_numpy()[0] - np.exp(-1.0)) < 1e-10

    def test_gbs8_order_exceeds_rk4(self, rt):
        y0 = rnp.array(np.array([1.0]))
        errs = []
        for h in (0.5, 0.25):
            res = solve_ivp(lambda t, y: y * -1.0, (0.0, 1.0), y0, method="GBS8", step=h)
            errs.append(abs(res.y.to_numpy()[0] - np.exp(-1.0)))
        # ~8th order: halving h should shrink error by ~2^8; allow slack.
        assert errs[0] / max(errs[1], 1e-16) > 50

    def test_fixed_step_requires_step(self, rt):
        with pytest.raises(ValueError):
            solve_ivp(lambda t, y: y, (0.0, 1.0), rnp.ones(2), method="RK4")

    def test_unknown_method(self, rt):
        with pytest.raises(ValueError):
            solve_ivp(lambda t, y: y, (0.0, 1.0), rnp.ones(2), method="EULER")


class TestSchrodinger:
    def test_unitary_evolution_preserves_norm(self, rt):
        """i dψ/dt = H ψ with Hermitian sparse H: norm is conserved."""
        rng = np.random.default_rng(0)
        n = 16
        h = sps.random(n, n, density=0.3, random_state=rng).toarray()
        H = sps.csr_matrix((h + h.T) / 2)
        Hd = sp.csr_matrix(H)
        psi0 = rng.random(n) + 1j * rng.random(n)
        psi0 /= np.linalg.norm(psi0)
        psi = rnp.array(psi0)
        res = solve_ivp(
            lambda t, y: (Hd @ y) * (-1j),
            (0.0, 1.0),
            psi,
            method="GBS8",
            step=0.1,
        )
        final = res.y.to_numpy()
        assert abs(np.linalg.norm(final) - 1.0) < 1e-8
        # Compare against dense matrix exponential.
        from scipy.linalg import expm

        expected = expm(-1j * H.toarray()) @ psi0
        np.testing.assert_allclose(final, expected, atol=1e-7)

    def test_energy_conserved(self, rt):
        rng = np.random.default_rng(1)
        n = 12
        h = rng.random((n, n))
        H = sps.csr_matrix((h + h.T) / 2)
        Hd = sp.csr_matrix(H)
        psi0 = rng.random(n) + 0j
        psi0 /= np.linalg.norm(psi0)
        e0 = np.vdot(psi0, H @ psi0).real
        res = solve_ivp(
            lambda t, y: (Hd @ y) * (-1j), (0.0, 0.5), rnp.array(psi0),
            method="GBS8", step=0.05,
        )
        final = res.y.to_numpy()
        e1 = np.vdot(final, H @ final).real
        assert abs(e1 - e0) < 1e-9
