"""Odds and ends of the SciPy-compatible surface."""

import numpy as np
import pytest

import repro.numeric as rnp
import repro.sparse as sp

from tests.core.conftest import random_scipy_csr


class TestMiscSurface:
    def test_repr(self, rt):
        A = sp.eye(4, format="csr")
        text = repr(A)
        assert "4x4" in text and "CSR" in text and "4 stored" in text

    def test_getnnz(self, rt):
        A = sp.csr_matrix(random_scipy_csr(6, 6, seed=1))
        assert A.getnnz() == A.nnz

    def test_hermitian_transpose(self, rt):
        ref = random_scipy_csr(5, 5, seed=2, dtype=np.complex128)
        A = sp.csr_matrix(ref)
        np.testing.assert_allclose(
            A.H.toarray(), ref.conj().T.toarray(), rtol=1e-12
        )

    def test_mean_axis(self, rt):
        ref = random_scipy_csr(6, 4, seed=3)
        A = sp.csr_matrix(ref)
        np.testing.assert_allclose(
            A.mean(axis=1).to_numpy(),
            np.asarray(ref.mean(axis=1)).ravel(),
            rtol=1e-12,
        )
        np.testing.assert_allclose(
            A.mean(axis=0).to_numpy(),
            np.asarray(ref.mean(axis=0)).ravel(),
            rtol=1e-12,
        )

    def test_ndim(self, rt):
        assert sp.eye(3).ndim == 2

    def test_dot_method(self, rt):
        ref = random_scipy_csr(5, 5, seed=4)
        A = sp.csr_matrix(ref)
        x = np.arange(5.0)
        np.testing.assert_allclose(A.dot(rnp.array(x)).to_numpy(), ref @ x, rtol=1e-12)

    def test_neg_and_div(self, rt):
        ref = random_scipy_csr(5, 5, seed=5)
        A = sp.csr_matrix(ref)
        np.testing.assert_allclose((-A).toarray(), -ref.toarray())
        np.testing.assert_allclose((A / 4.0).toarray(), ref.toarray() / 4.0)

    def test_scale_by_deferred_scalar(self, rt):
        """n * eye where n came out of a reduction (a Scalar)."""
        n = rnp.sum(rnp.ones(8))  # deferred 8.0
        A = sp.eye(8, format="csr") * n
        np.testing.assert_allclose(A.toarray(), 8 * np.eye(8))

    def test_asformat_identity(self, rt):
        A = sp.eye(3, format="csr")
        assert A.asformat("csr") is A

    def test_version_attribute(self):
        import repro

        assert repro.__version__

    def test_divide_by_deferred_scalar(self, rt):
        n = rnp.sum(rnp.ones(4))  # deferred 4.0
        A = sp.eye(4, format="csr") / n
        np.testing.assert_allclose(A.toarray(), np.eye(4) / 4.0)
