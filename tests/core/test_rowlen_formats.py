"""ELL / SELL-C-sigma / HYB: the row-length-sensitive formats.

These formats exist for the auto-format selector, so their contract is
strict: conversions are lossless in both directions (including empty
rows and all-empty matrices, via CSR and COO), and their SpMV kernels
reconstruct CSR's exact accumulation order — results are *bitwise*
identical, not merely close.
"""

import numpy as np
import pytest
import scipy.sparse as sps

import repro.sparse as sp
from repro.harness.skew import power_law_csr
from tests.core.conftest import random_scipy_csr

FORMATS = ["ell", "sell", "hyb"]


def _host(arr) -> np.ndarray:
    return np.asarray(arr.to_numpy() if hasattr(arr, "to_numpy") else arr)


def _skew(n=96, m=64, seed=3, dtype=np.float64):
    return power_law_csr(n, m, max_len=24, seed=seed, dtype=dtype)


def _with_empty_rows():
    """A matrix whose first, middle and last rows are empty."""
    mat = random_scipy_csr(11, 8, density=0.4, seed=7).tolil()
    for row in (0, 5, 10):
        mat.rows[row] = []
        mat.data[row] = []
    return sps.csr_matrix(mat)


class TestRoundTrip:
    @pytest.mark.parametrize("fmt", FORMATS)
    def test_lossless(self, rt, fmt):
        ref = _skew()
        A = sp.csr_matrix(ref).asformat(fmt)
        assert A.format == fmt
        assert A.shape == ref.shape
        assert A.nnz == ref.nnz
        np.testing.assert_array_equal(_host(A.toarray()), ref.toarray())
        back = A.tocsr()
        assert back.nnz == ref.nnz
        np.testing.assert_array_equal(_host(back.toarray()), ref.toarray())

    @pytest.mark.parametrize("fmt", FORMATS)
    def test_empty_rows_span_csr_and_coo(self, rt, fmt):
        """CSR -> fmt -> COO -> CSR -> fmt with empty rows throughout."""
        ref = _with_empty_rows()
        A = sp.csr_matrix(ref).asformat(fmt)
        assert A.nnz == ref.nnz
        np.testing.assert_array_equal(_host(A.toarray()), ref.toarray())
        via_coo = A.tocoo().tocsr().asformat(fmt)
        np.testing.assert_array_equal(_host(via_coo.toarray()), ref.toarray())
        back = sp.coo_matrix(ref.tocoo()).tocsr().asformat(fmt).tocsr()
        np.testing.assert_array_equal(_host(back.toarray()), ref.toarray())

    @pytest.mark.parametrize("fmt", FORMATS)
    def test_all_rows_empty(self, rt, fmt):
        ref = sps.csr_matrix((5, 7), dtype=np.float64)
        A = sp.csr_matrix(ref).asformat(fmt)
        assert A.nnz == 0
        np.testing.assert_array_equal(_host(A.toarray()), np.zeros((5, 7)))
        y = A @ np.ones(7)
        np.testing.assert_array_equal(_host(y), np.zeros(5))
        assert A.tocoo().nnz == 0
        assert A.tocsr().nnz == 0


class TestBitwiseMatvec:
    @pytest.mark.parametrize("fmt", FORMATS)
    @pytest.mark.parametrize("dtype", [np.float64, np.complex128])
    def test_matches_csr_bitwise(self, rt, fmt, dtype):
        ref = _skew(dtype=dtype)
        rng = np.random.default_rng(11)
        x = rng.standard_normal(ref.shape[1]).astype(dtype)
        if np.dtype(dtype).kind == "c":
            x = x + 1j * rng.standard_normal(ref.shape[1])
        A = sp.csr_matrix(ref)
        y_csr = _host(A @ x)
        y_fmt = _host(A.asformat(fmt) @ x)
        # Bitwise, not allclose: the kernels replay CSR's accumulation
        # order exactly (the autoformat hook depends on this).
        assert np.array_equal(y_csr, y_fmt)

    def test_sell_custom_c_sigma(self, rt):
        ref = _skew()
        x = np.arange(ref.shape[1], dtype=np.float64)
        y_csr = _host(sp.csr_matrix(ref) @ x)
        for c, sigma in ((4, 8), (8, 96), (3, 7)):
            B = sp.csr_matrix(ref).tosell(c=c, sigma=sigma)
            assert (B.c, B.sigma) == (c, sigma)
            assert np.array_equal(y_csr, _host(B @ x))

    def test_hyb_custom_quantile(self, rt):
        ref = _skew()
        x = np.arange(ref.shape[1], dtype=np.float64)
        y_csr = _host(sp.csr_matrix(ref) @ x)
        for quantile in (0.5, 0.99):
            B = sp.csr_matrix(ref).tohyb(quantile=quantile)
            assert np.array_equal(y_csr, _host(B @ x))
        wide = sp.csr_matrix(ref).tohyb(quantile=1.0)
        assert wide.spill_nnz == 0  # pure ELL part at the max quantile


class TestValueOps:
    @pytest.mark.parametrize("fmt", FORMATS)
    def test_scale_negate_copy(self, rt, fmt):
        ref = _skew(n=24, m=16)
        A = sp.csr_matrix(ref).asformat(fmt)
        np.testing.assert_array_equal(
            _host((A * 2.5).toarray()), (ref * 2.5).toarray()
        )
        np.testing.assert_array_equal(_host((-A).toarray()), (-ref).toarray())
        dup = A.copy()
        assert dup.format == fmt
        np.testing.assert_array_equal(_host(dup.toarray()), ref.toarray())

    @pytest.mark.parametrize("fmt", FORMATS)
    def test_astype_and_conj(self, rt, fmt):
        ref = _skew(n=24, m=16, dtype=np.complex128)
        A = sp.csr_matrix(ref).asformat(fmt)
        np.testing.assert_array_equal(
            _host(A.conj().toarray()), ref.conj().toarray()
        )
        widened = sp.csr_matrix(_skew(n=24, m=16)).asformat(fmt)
        widened = widened.astype(np.complex128)
        assert widened.dtype == np.complex128
