"""COO/CSC/DIA formats and conversions against SciPy."""

import numpy as np
import pytest
import scipy.sparse as sps

import repro.numeric as rnp
import repro.sparse as sp

from tests.core.conftest import random_scipy_csr


class TestCOO:
    def test_construction_and_roundtrip(self, rt):
        ref = random_scipy_csr(10, 8, seed=1).tocoo()
        A = sp.coo_matrix(ref)
        np.testing.assert_allclose(A.toarray(), ref.toarray())

    def test_duplicates_summed(self, rt):
        A = sp.coo_matrix(
            (np.array([1.0, 2.0]), (np.array([1, 1]), np.array([2, 2]))), shape=(3, 3)
        )
        assert A.nnz == 1
        assert A.toarray()[1, 2] == 3.0

    def test_matvec(self, rt):
        ref = random_scipy_csr(14, 11, seed=2).tocoo()
        A = sp.coo_matrix(ref)
        xh = np.random.default_rng(3).random(11)
        np.testing.assert_allclose((A @ rnp.array(xh)).to_numpy(), ref @ xh, rtol=1e-12)

    def test_transpose_is_free(self, rt):
        ref = random_scipy_csr(6, 9, seed=4).tocoo()
        A = sp.coo_matrix(ref)
        At = A.T
        assert At.shape == (9, 6)
        assert At.vals is A.vals
        np.testing.assert_allclose(At.toarray(), ref.T.toarray())

    def test_tocsr_shares_sorted_arrays(self, rt):
        ref = random_scipy_csr(8, 8, seed=5).tocoo()
        A = sp.coo_matrix(ref)
        B = A.tocsr()
        assert B.vals is A.vals  # canonical COO order == CSR order
        np.testing.assert_allclose(B.toarray(), ref.toarray())

    def test_tocsr_of_transpose_resorts(self, rt):
        ref = random_scipy_csr(8, 8, seed=6).tocoo()
        A = sp.coo_matrix(ref).T
        B = A.tocsr()
        np.testing.assert_allclose(B.toarray(), ref.T.toarray())

    def test_scale(self, rt):
        ref = random_scipy_csr(5, 5, seed=7).tocoo()
        A = sp.coo_matrix(ref)
        np.testing.assert_allclose((2.0 * A).toarray(), 2 * ref.toarray())


class TestCSC:
    def test_construction(self, rt):
        ref = random_scipy_csr(9, 7, seed=10).tocsc()
        A = sp.csc_matrix(ref)
        assert A.format == "csc"
        np.testing.assert_allclose(A.toarray(), ref.toarray())

    def test_indptr_indices_match_scipy(self, rt):
        ref = random_scipy_csr(9, 7, seed=11).tocsc()
        ref.sort_indices()
        A = sp.csc_matrix(ref)
        np.testing.assert_array_equal(A.indptr, ref.indptr)
        np.testing.assert_array_equal(A.indices, ref.indices)

    def test_matvec_scatter(self, rt):
        ref = random_scipy_csr(13, 9, seed=12)
        A = sp.csc_matrix(ref.tocsc())
        xh = np.random.default_rng(13).random(9)
        np.testing.assert_allclose((A @ rnp.array(xh)).to_numpy(), ref @ xh, rtol=1e-12)

    def test_rmatvec(self, rt):
        ref = random_scipy_csr(13, 9, seed=14)
        A = sp.csc_matrix(ref.tocsc())
        xh = np.random.default_rng(15).random(13)
        np.testing.assert_allclose((rnp.array(xh) @ A).to_numpy(), ref.T @ xh, rtol=1e-12)

    def test_csr_csc_roundtrip(self, rt):
        ref = random_scipy_csr(11, 11, seed=16)
        A = sp.csr_matrix(ref)
        back = A.tocsc().tocsr()
        np.testing.assert_allclose(back.toarray(), ref.toarray())
        np.testing.assert_array_equal(back.indptr, ref.indptr)

    def test_csc_sum_axes(self, rt):
        ref = random_scipy_csr(8, 6, seed=17).tocsc()
        A = sp.csc_matrix(ref)
        np.testing.assert_allclose(
            A.sum(axis=0).to_numpy(), np.asarray(ref.sum(axis=0)).ravel(), rtol=1e-12
        )
        np.testing.assert_allclose(
            A.sum(axis=1).to_numpy(), np.asarray(ref.sum(axis=1)).ravel(), rtol=1e-12
        )

    def test_matmat(self, rt):
        ref = random_scipy_csr(10, 7, seed=18).tocsc()
        A = sp.csc_matrix(ref)
        Xh = np.random.default_rng(19).random((7, 3))
        np.testing.assert_allclose((A @ rnp.array(Xh)).to_numpy(), ref @ Xh, rtol=1e-12)


class TestDIA:
    def make_ref(self, n=16, seed=20):
        rng = np.random.default_rng(seed)
        offsets = np.array([-3, -1, 0, 2])
        data = rng.random((len(offsets), n))
        return sps.dia_matrix((data, offsets), shape=(n, n))

    def test_construction(self, rt):
        ref = self.make_ref()
        A = sp.dia_matrix(ref)
        np.testing.assert_allclose(A.toarray(), ref.toarray())

    def test_from_data_offsets(self, rt):
        n = 8
        data = np.ones((2, n))
        A = sp.dia_matrix((data, [0, 1]), shape=(n, n))
        ref = sps.dia_matrix((data, [0, 1]), shape=(n, n))
        np.testing.assert_allclose(A.toarray(), ref.toarray())

    def test_matvec(self, rt):
        ref = self.make_ref(seed=21)
        A = sp.dia_matrix(ref)
        xh = np.random.default_rng(22).random(16)
        np.testing.assert_allclose((A @ rnp.array(xh)).to_numpy(), ref @ xh, rtol=1e-12)

    def test_rectangular_matvec(self, rt):
        data = np.ones((2, 10))
        ref = sps.dia_matrix((data, [0, 2]), shape=(8, 10))
        A = sp.dia_matrix(ref)
        xh = np.arange(10.0)
        np.testing.assert_allclose((A @ rnp.array(xh)).to_numpy(), ref @ xh, rtol=1e-12)

    def test_transpose(self, rt):
        ref = self.make_ref(seed=23)
        A = sp.dia_matrix(ref)
        np.testing.assert_allclose(A.T.toarray(), ref.T.toarray())

    def test_diagonal(self, rt):
        ref = self.make_ref(seed=24)
        A = sp.dia_matrix(ref)
        np.testing.assert_allclose(A.diagonal().to_numpy(), ref.diagonal(), rtol=1e-12)

    def test_tocsr(self, rt):
        ref = self.make_ref(seed=25)
        np.testing.assert_allclose(
            sp.dia_matrix(ref).tocsr().toarray(), ref.toarray()
        )

    def test_todia_roundtrip(self, rt):
        ref = self.make_ref(seed=26)
        A = sp.csr_matrix(ref.tocsr())
        np.testing.assert_allclose(A.todia().toarray(), ref.toarray())

    def test_scale(self, rt):
        ref = self.make_ref(seed=27)
        A = sp.dia_matrix(ref)
        np.testing.assert_allclose((0.5 * A).toarray(), 0.5 * ref.toarray())


class TestFormatDispatch:
    def test_asformat(self, rt):
        ref = random_scipy_csr(7, 7, seed=30)
        A = sp.csr_matrix(ref)
        for fmt in ("csr", "csc", "coo", "dia"):
            B = A.asformat(fmt)
            assert B.format == fmt
            np.testing.assert_allclose(B.toarray(), ref.toarray())

    def test_issparse(self, rt):
        assert sp.issparse(sp.eye(3))
        assert not sp.issparse(np.eye(3))

    def test_cross_format_construction(self, rt):
        ref = random_scipy_csr(6, 6, seed=31)
        A = sp.csr_matrix(ref)
        assert sp.coo_matrix(A).format == "coo"
        assert sp.csc_matrix(A).format == "csc"
        assert sp.dia_matrix(A).format == "dia"
        assert sp.csr_matrix(sp.coo_matrix(A)).format == "csr"
