"""Property-based tests: invariants of the sparse stack under random
matrices, shapes and processor counts (hypothesis)."""

import numpy as np
import pytest
import scipy.sparse as sps
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.numeric as rnp
import repro.sparse as sp
from repro.legion import Runtime, RuntimeConfig
from repro.legion.runtime import runtime_scope
from repro.machine import ProcessorKind, laptop

_SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def scipy_matrices(draw, square=False, max_n=24):
    n = draw(st.integers(min_value=1, max_value=max_n))
    m = n if square else draw(st.integers(min_value=1, max_value=max_n))
    density = draw(st.floats(min_value=0.0, max_value=0.6))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    rng = np.random.default_rng(seed)
    mat = sps.random(n, m, density=density, random_state=rng, format="csr")
    mat.sum_duplicates()
    mat.sort_indices()
    return mat


@st.composite
def runtimes(draw):
    procs = draw(st.integers(min_value=1, max_value=2))
    return Runtime(
        laptop().scope(ProcessorKind.GPU, procs), RuntimeConfig.legate()
    )


class TestCSRInvariants:
    @settings(**_SETTINGS)
    @given(mat=scipy_matrices(), rt=runtimes())
    def test_roundtrip_dense(self, mat, rt):
        with runtime_scope(rt):
            A = sp.csr_matrix(mat)
            np.testing.assert_allclose(A.toarray(), mat.toarray())

    @settings(**_SETTINGS)
    @given(mat=scipy_matrices(), rt=runtimes())
    def test_pos_is_monotone_and_covers_crd(self, mat, rt):
        with runtime_scope(rt):
            A = sp.csr_matrix(mat)
            pos = A.pos.data
            assert (pos[:, 1] >= pos[:, 0]).all()
            if len(pos) > 1:
                assert (pos[1:, 0] == pos[:-1, 1]).all()
            if len(pos):
                assert pos[0, 0] == 0
                assert pos[-1, 1] == A.nnz

    @settings(**_SETTINGS)
    @given(mat=scipy_matrices(), rt=runtimes())
    def test_indices_sorted_within_rows(self, mat, rt):
        with runtime_scope(rt):
            A = sp.csr_matrix(mat)
            pos, crd = A.pos.data, A.crd.data
            for lo, hi in pos:
                row = crd[lo:hi]
                assert (np.diff(row) > 0).all()

    @settings(**_SETTINGS)
    @given(mat=scipy_matrices(), rt=runtimes(), seed=st.integers(0, 999))
    def test_spmv_matches_scipy(self, mat, rt, seed):
        with runtime_scope(rt):
            A = sp.csr_matrix(mat)
            x = np.random.default_rng(seed).standard_normal(mat.shape[1])
            ours = (A @ rnp.array(x)).to_numpy()
            np.testing.assert_allclose(ours, mat @ x, rtol=1e-10, atol=1e-12)

    @settings(**_SETTINGS)
    @given(mat=scipy_matrices(), rt=runtimes())
    def test_transpose_involution(self, mat, rt):
        with runtime_scope(rt):
            A = sp.csr_matrix(mat)
            np.testing.assert_allclose(A.T.T.toarray(), mat.toarray())

    @settings(**_SETTINGS)
    @given(mat=scipy_matrices(), rt=runtimes())
    def test_conversion_cycle(self, mat, rt):
        with runtime_scope(rt):
            A = sp.csr_matrix(mat)
            back = A.tocoo().tocsr().tocsc().tocsr()
            np.testing.assert_allclose(back.toarray(), mat.toarray())
            np.testing.assert_array_equal(back.indptr, A.indptr)


class TestAlgebraProperties:
    @settings(**_SETTINGS)
    @given(
        n=st.integers(2, 16),
        d1=st.floats(0.0, 0.5),
        d2=st.floats(0.0, 0.5),
        seed=st.integers(0, 999),
        rt=runtimes(),
    )
    def test_add_commutes(self, n, d1, d2, seed, rt):
        rng = np.random.default_rng(seed)
        a = sps.random(n, n, density=d1, random_state=rng, format="csr")
        b = sps.random(n, n, density=d2, random_state=rng, format="csr")
        with runtime_scope(rt):
            A, B = sp.csr_matrix(a), sp.csr_matrix(b)
            np.testing.assert_allclose(
                (A + B).toarray(), (B + A).toarray(), rtol=1e-12
            )

    @settings(**_SETTINGS)
    @given(
        n=st.integers(2, 14),
        seed=st.integers(0, 999),
        alpha=st.floats(-3, 3, allow_nan=False),
        rt=runtimes(),
    )
    def test_scaling_distributes_over_matvec(self, n, seed, alpha, rt):
        rng = np.random.default_rng(seed)
        a = sps.random(n, n, density=0.4, random_state=rng, format="csr")
        x = rng.standard_normal(n)
        with runtime_scope(rt):
            A = sp.csr_matrix(a)
            xd = rnp.array(x)
            lhs = ((alpha * A) @ xd).to_numpy()
            rhs = ((A @ xd) * alpha).to_numpy()
            np.testing.assert_allclose(lhs, rhs, rtol=1e-10, atol=1e-12)

    @settings(**_SETTINGS)
    @given(
        n=st.integers(2, 12),
        seed=st.integers(0, 999),
        rt=runtimes(),
    )
    def test_sub_of_self_is_structurally_zero(self, n, seed, rt):
        rng = np.random.default_rng(seed)
        a = sps.random(n, n, density=0.4, random_state=rng, format="csr")
        with runtime_scope(rt):
            A = sp.csr_matrix(a)
            Z = A - A
            assert Z.nnz == A.nnz  # union keeps structure
            np.testing.assert_allclose(Z.toarray(), np.zeros((n, n)), atol=1e-14)

    @settings(**_SETTINGS)
    @given(
        n=st.integers(2, 10),
        k=st.integers(2, 10),
        m=st.integers(2, 10),
        seed=st.integers(0, 999),
        rt=runtimes(),
    )
    def test_spgemm_matches_scipy(self, n, k, m, seed, rt):
        rng = np.random.default_rng(seed)
        a = sps.random(n, k, density=0.4, random_state=rng, format="csr")
        b = sps.random(k, m, density=0.4, random_state=rng, format="csr")
        with runtime_scope(rt):
            C = sp.csr_matrix(a) @ sp.csr_matrix(b)
            np.testing.assert_allclose(
                C.toarray(), (a @ b).toarray(), rtol=1e-10, atol=1e-12
            )

    @settings(**_SETTINGS)
    @given(
        n=st.integers(2, 14),
        seed=st.integers(0, 999),
        rt=runtimes(),
    )
    def test_matvec_transpose_adjoint(self, n, seed, rt):
        """<A x, y> == <x, A^T y> (the adjoint identity)."""
        rng = np.random.default_rng(seed)
        a = sps.random(n, n, density=0.4, random_state=rng, format="csr")
        x, y = rng.standard_normal(n), rng.standard_normal(n)
        with runtime_scope(rt):
            A = sp.csr_matrix(a)
            xd, yd = rnp.array(x), rnp.array(y)
            lhs = float(rnp.dot(A @ xd, yd))
            rhs = float(rnp.dot(xd, yd @ A))
            assert lhs == pytest.approx(rhs, rel=1e-9, abs=1e-11)


class TestRuntimeInvariants:
    @settings(**_SETTINGS)
    @given(mat=scipy_matrices(square=True, max_n=20), rt=runtimes(), seed=st.integers(0, 99))
    def test_processor_count_does_not_change_results(self, mat, rt, seed):
        """Distribution is semantically transparent."""
        x = np.random.default_rng(seed).standard_normal(mat.shape[1])
        results = []
        for procs in (1, 2):
            runtime = Runtime(
                laptop().scope(ProcessorKind.GPU, procs), RuntimeConfig.legate()
            )
            with runtime_scope(runtime):
                A = sp.csr_matrix(mat)
                results.append((A @ rnp.array(x)).to_numpy())
        np.testing.assert_allclose(results[0], results[1], rtol=1e-12)

    @settings(**_SETTINGS)
    @given(mat=scipy_matrices(max_n=16), rt=runtimes())
    def test_simulated_time_monotone(self, mat, rt):
        with runtime_scope(rt):
            A = sp.csr_matrix(mat)
            x = rnp.ones(mat.shape[1])
            t0 = rt.elapsed()
            A @ x
            t1 = rt.elapsed()
            assert t1 >= t0
            A @ x
            assert rt.elapsed() >= t1
