"""Construction routines against scipy.sparse equivalents."""

import numpy as np
import pytest
import scipy.sparse as sps

import repro.sparse as sp


class TestEyeDiags:
    def test_eye_default_dia(self, rt):
        A = sp.eye(5)
        assert A.format == "dia"
        np.testing.assert_allclose(A.toarray(), np.eye(5))

    def test_eye_formats(self, rt):
        for fmt in ("csr", "csc", "coo"):
            A = sp.eye(4, format=fmt)
            assert A.format == fmt
            np.testing.assert_allclose(A.toarray(), np.eye(4))

    def test_eye_offset_and_rect(self, rt):
        np.testing.assert_allclose(
            sp.eye(4, 6, k=2).toarray(), sps.eye(4, 6, k=2).toarray()
        )
        np.testing.assert_allclose(
            sp.eye(5, 3, k=-1).toarray(), sps.eye(5, 3, k=-1).toarray()
        )

    def test_identity(self, rt):
        np.testing.assert_allclose(sp.identity(3).toarray(), np.eye(3))

    def test_diags_single(self, rt):
        d = np.arange(1.0, 5.0)
        np.testing.assert_allclose(
            sp.diags(d).toarray(), sps.diags(d).toarray()
        )

    def test_diags_multiple(self, rt):
        diagonals = [np.ones(4), 2 * np.ones(3), 3 * np.ones(3)]
        offsets = [0, 1, -1]
        np.testing.assert_allclose(
            sp.diags(diagonals, offsets).toarray(),
            sps.diags(diagonals, offsets).toarray(),
        )

    def test_diags_poisson_stencil(self, rt):
        n = 8
        ours = sp.diags(
            [2 * np.ones(n), -np.ones(n - 1), -np.ones(n - 1)], [0, 1, -1],
            format="csr",
        )
        ref = sps.diags(
            [2 * np.ones(n), -np.ones(n - 1), -np.ones(n - 1)], [0, 1, -1]
        )
        np.testing.assert_allclose(ours.toarray(), ref.toarray())

    def test_diags_mismatched_length_raises(self, rt):
        with pytest.raises(ValueError):
            sp.diags([np.ones(3)], [0], shape=(5, 5))


class TestRandom:
    def test_density_and_shape(self, rt):
        A = sp.random(40, 30, density=0.1, random_state=0)
        assert A.shape == (40, 30)
        assert A.nnz == int(round(0.1 * 40 * 30))

    def test_format(self, rt):
        assert sp.random(10, 10, format="csr", random_state=1).format == "csr"
        assert sp.rand(10, 10, 0.05, format="coo", random_state=1).format == "coo"

    def test_reproducible(self, rt):
        a = sp.random(12, 12, density=0.2, random_state=7).toarray()
        b = sp.random(12, 12, density=0.2, random_state=7).toarray()
        np.testing.assert_array_equal(a, b)

    def test_data_rvs(self, rt):
        A = sp.random(
            10, 10, density=0.2, random_state=3, data_rvs=lambda k: np.full(k, 5.0)
        )
        vals = A.data.to_numpy()
        assert (vals == 5.0).all()

    def test_bad_density(self, rt):
        with pytest.raises(ValueError):
            sp.random(5, 5, density=1.5)


class TestKronStack:
    def test_kron(self, rt):
        a = sps.random(4, 3, density=0.4, random_state=np.random.default_rng(0))
        b = sps.random(3, 2, density=0.5, random_state=np.random.default_rng(1))
        C = sp.kron(sp.csr_matrix(a.tocsr()), sp.csr_matrix(b.tocsr()))
        np.testing.assert_allclose(C.toarray(), sps.kron(a, b).toarray(), rtol=1e-12)

    def test_kron_identity_structure(self, rt):
        """The standard 2-D Poisson construction: kron(I, T) + kron(T, I)."""
        n = 4
        T = sp.diags([2 * np.ones(n), -np.ones(n - 1), -np.ones(n - 1)], [0, 1, -1])
        eye = sp.eye(n)
        A = (sp.kron(eye, T) + sp.kron(T, eye)).tocsr()
        Ts = sps.diags([2 * np.ones(n), -np.ones(n - 1), -np.ones(n - 1)], [0, 1, -1])
        ref = sps.kron(sps.eye(n), Ts) + sps.kron(Ts, sps.eye(n))
        np.testing.assert_allclose(A.toarray(), ref.toarray())

    def test_vstack(self, rt):
        a = sps.random(3, 4, density=0.5, random_state=np.random.default_rng(2))
        b = sps.random(2, 4, density=0.5, random_state=np.random.default_rng(3))
        C = sp.vstack([sp.csr_matrix(a.tocsr()), sp.csr_matrix(b.tocsr())])
        np.testing.assert_allclose(C.toarray(), sps.vstack([a, b]).toarray())

    def test_hstack(self, rt):
        a = sps.random(3, 4, density=0.5, random_state=np.random.default_rng(4))
        b = sps.random(3, 2, density=0.5, random_state=np.random.default_rng(5))
        C = sp.hstack([sp.csr_matrix(a.tocsr()), sp.csr_matrix(b.tocsr())])
        np.testing.assert_allclose(C.toarray(), sps.hstack([a, b]).toarray())

    def test_stack_shape_checks(self, rt):
        with pytest.raises(ValueError):
            sp.vstack([sp.eye(3), sp.eye(4)])
        with pytest.raises(ValueError):
            sp.hstack([sp.eye(3), sp.eye(4)])
