"""BSR matrices (the §5.4 planned format, implemented)."""

import numpy as np
import pytest
import scipy.sparse as sps

import repro.numeric as rnp
import repro.sparse as sp


def random_bsr(nb, mb, R=2, C=3, density=0.3, seed=0):
    rng = np.random.default_rng(seed)
    mask = sps.random(nb, mb, density=density, random_state=rng, format="csr")
    dense = np.zeros((nb * R, mb * C))
    for i, j in zip(*mask.nonzero()):
        dense[i * R : (i + 1) * R, j * C : (j + 1) * C] = rng.random((R, C))
    return sps.bsr_matrix(sps.csr_matrix(dense), blocksize=(R, C))


class TestConstruction:
    def test_from_scipy(self, rt):
        ref = random_bsr(6, 5, seed=1)
        A = sp.bsr_matrix(ref)
        assert A.format == "bsr"
        assert A.blocksize == (2, 3)
        np.testing.assert_allclose(A.toarray(), ref.toarray())

    def test_from_dense(self, rt):
        dense = random_bsr(4, 4, R=2, C=2, seed=2).toarray()
        A = sp.bsr_matrix(dense, blocksize=(2, 2))
        np.testing.assert_allclose(A.toarray(), dense)

    def test_from_arrays(self, rt):
        ref = random_bsr(5, 5, R=2, C=2, seed=3)
        A = sp.bsr_matrix(
            (ref.data, ref.indices, ref.indptr),
            shape=ref.shape,
        )
        np.testing.assert_allclose(A.toarray(), ref.toarray())

    def test_nnz_counts_block_entries(self, rt):
        ref = random_bsr(4, 4, R=2, C=2, seed=4)
        A = sp.bsr_matrix(ref)
        assert A.nnz == A.nblocks * 4

    def test_from_csr_roundtrip(self, rt):
        ref = random_bsr(4, 6, R=3, C=2, seed=5)
        A = sp.bsr_matrix(sp.csr_matrix(ref.tocsr()), blocksize=(3, 2))
        np.testing.assert_allclose(A.toarray(), ref.toarray())
        back = A.tocsr()
        assert back.format == "csr"
        np.testing.assert_allclose(back.toarray(), ref.toarray())


class TestMatvec:
    @pytest.mark.parametrize("blocks", [(2, 2), (2, 3), (4, 1)])
    def test_matches_scipy(self, rt, blocks):
        R, C = blocks
        ref = random_bsr(8, 6, R=R, C=C, seed=6)
        A = sp.bsr_matrix(ref)
        x = np.random.default_rng(7).random(ref.shape[1])
        out = A @ rnp.array(x)
        np.testing.assert_allclose(out.to_numpy(), ref @ x, rtol=1e-12)

    def test_uses_generated_kernel(self, rt):
        ref = random_bsr(6, 6, seed=8)
        A = sp.bsr_matrix(ref)
        A @ rnp.ones(ref.shape[1])
        launched = [k for k in rt.profiler.task_counts if "bsr" in k]
        assert launched, "BSR SpMV must dispatch through the DISTAL registry"

    def test_empty_block_rows(self, rt):
        dense = np.zeros((6, 6))
        dense[0:2, 2:4] = 1.0  # only the first block row is populated
        ref = sps.bsr_matrix(sps.csr_matrix(dense), blocksize=(2, 2))
        A = sp.bsr_matrix(ref)
        x = np.arange(6.0)
        np.testing.assert_allclose((A @ rnp.array(x)).to_numpy(), dense @ x)

    def test_complex(self, rt):
        ref = random_bsr(5, 5, R=2, C=2, seed=9)
        A = sp.bsr_matrix(ref)
        x = np.random.default_rng(10).random(10) + 1j
        out = A @ rnp.array(x)
        np.testing.assert_allclose(out.to_numpy(), ref @ x, rtol=1e-12)


class TestValueOps:
    def test_scale(self, rt):
        ref = random_bsr(4, 4, seed=11)
        A = sp.bsr_matrix(ref)
        np.testing.assert_allclose((2.0 * A).toarray(), 2 * ref.toarray())

    def test_copy_and_astype(self, rt):
        A = sp.bsr_matrix(random_bsr(4, 4, seed=12))
        assert A.copy().nnz == A.nnz
        assert A.astype(np.complex128).dtype == np.complex128

    def test_sum_and_diagonal_via_csr(self, rt):
        ref = random_bsr(4, 4, R=2, C=2, seed=13)
        A = sp.bsr_matrix(ref)
        assert float(A.sum()) == pytest.approx(ref.toarray().sum())
        np.testing.assert_allclose(
            A.diagonal().to_numpy(), ref.tocsr().diagonal(), rtol=1e-12
        )
