"""The §5 coverage claims, checked against the actual package surface."""

import numpy as np
import pytest

import repro.sparse as sp
from repro.core import coverage
from repro.distal import get_registry
from repro.distal.codegen import supported_statements
from repro.distal.formats import COO, CSR, DIA
from repro.legion import Runtime, RuntimeConfig
from repro.legion.runtime import runtime_scope
from repro.machine import ProcessorKind, laptop


@pytest.fixture
def rt():
    machine = laptop()
    runtime = Runtime(machine.scope(ProcessorKind.GPU, 2), RuntimeConfig.legate())
    with runtime_scope(runtime):
        yield runtime


class TestInventoryIsHonest:
    def test_namespace_functions_exist(self, rt):
        for name in [
            "csr_matrix", "csc_matrix", "coo_matrix", "dia_matrix",
            "eye", "identity", "diags", "random", "rand", "kron",
            "vstack", "hstack", "issparse",
        ]:
            assert hasattr(sp, name), name

    def test_linalg_functions_exist(self, rt):
        for name in [
            "cg", "cgs", "bicg", "bicgstab", "gmres", "eigsh",
            "power_iteration", "norm", "LinearOperator", "aslinearoperator",
        ]:
            assert hasattr(sp.linalg, name), name

    def test_matrix_methods_exist(self, rt):
        A = sp.eye(4, format="csr")
        for name in [
            "tocsr", "tocsc", "tocoo", "todia", "asformat", "toarray",
            "transpose", "diagonal", "sum", "mean", "copy", "astype",
            "conj", "multiply", "maximum", "minimum", "power", "getnnz",
        ]:
            assert hasattr(A, name), name

    def test_generated_statement_count(self):
        """The paper generates 14 functions with DISTAL; we generate one
        kernel per (statement, format) pair — 14 dispatch targets across
        8 statements and 7 sparse formats (csr, coo, dia, bsr, ell,
        sell, hyb)."""
        assert len(supported_statements()) == len(coverage.GENERATED)

    def test_kernels_actually_generate(self, rt):
        reg = get_registry()
        for key, fmt in [
            ("y(i)=A(i,j)*x(j)", CSR),
            ("y(j)=A(i,j)*x(i)", CSR),
            ("Y(i,k)=A(i,j)*X(j,k)", CSR),
            ("Y(j,k)=A(i,j)*X(i,k)", CSR),
            ("R(i,j)=B(i,j)*C(i,k)*D(j,k)", CSR),
            ("y(i)=A(i,j)", CSR),
            ("y(j)=A(i,j)", CSR),
            ("y(i)=A(i,i)", CSR),
            ("y(i)=A(i,j)*x(j)", DIA),
            ("y(i)=A(i,j)*x(j)", COO),
        ]:
            spec = reg.get(key, fmt, ProcessorKind.GPU)
            assert callable(spec.kernel)
            assert "def kernel" in spec.source

    def test_counts_are_substantial(self):
        """The reproduction's surface is comparable to the paper's 35%
        prototype in structure: dozens of ported operations on a small
        generated core plus a handful of hand-written kernels."""
        assert len(coverage.GENERATED) >= 10
        assert len(coverage.PORTED) >= 60
        assert len(coverage.HANDWRITTEN) >= 5
        assert coverage.implemented_count() >= 80

    def test_summary_renders(self):
        text = coverage.summary()
        assert "DISTAL-generated" in text

    def test_inventory_has_advisor_column(self):
        rows = coverage.inventory()
        assert len(rows) == coverage.implemented_count()
        for row in rows:
            assert set(row) == {"name", "strategy", "advisor", "formats"}
            assert row["strategy"] in {"generated", "ported", "handwritten"}
            assert isinstance(row["advisor"], bool)
            assert isinstance(row["formats"], list) and row["formats"]

    def test_inventory_formats_column(self):
        """The formats column reflects naming conventions, including
        the auto-format additions (ell / sell / hyb)."""
        by_name = {row["name"]: row["formats"] for row in coverage.inventory()}
        assert by_name["csr_matvec"] == ["csr"]
        assert by_name["ell_matvec"] == ["ell"]
        assert by_name["sell_matvec"] == ["sell"]
        assert by_name["hyb_matvec"] == ["hyb"]
        assert by_name["tosell"] == ["sell"]
        assert by_name["csr_to_csc_sort"] == ["csr", "csc"]
        assert by_name["linalg.cg"] == ["any"]
        for fmt in ("ell", "sell", "hyb"):
            assert by_name[f"{fmt}_matrix"] == [fmt]

    def test_every_generated_kernel_has_cost_model(self):
        """The advisor's model registry is total over GENERATED: every
        DISTAL-generated kernel can be costed statically."""
        from repro.analysis import costmodel

        for name in coverage.GENERATED:
            model = costmodel.get_model(name)
            assert model is not None, f"no advisor cost model for {name}"
            est = model.evaluate(rows=1000, cols=800, nnz=5000, k=4)
            for key in ("flops", "bytes", "out_nnz"):
                assert np.isfinite(est[key]), (name, key)
                assert est[key] >= 0, (name, key)

    def test_cost_model_statements_are_generatable(self):
        """Every model points at a real (statement, format) pair the
        DISTAL code generator supports."""
        from repro.analysis import costmodel

        pairs = set(supported_statements())
        for name in coverage.GENERATED:
            model = costmodel.get_model(name)
            assert (model.statement, model.fmt) in pairs, (
                model.statement, model.fmt,
            )
            assert costmodel.for_statement(model.statement, model.fmt) is model

    def test_task_name_resolution(self):
        """Runtime task names (fmt:statement:kind) resolve back to their
        models; non-DISTAL names do not."""
        from repro.analysis import costmodel

        model = costmodel.for_task_name("csr:y(i)=A(i,j)*x(j):gpu")
        assert model is not None and model.name == "csr_matvec"
        assert costmodel.for_task_name("fill") is None
        assert costmodel.for_task_name("axpy") is None

    def test_unimplemented_documented(self):
        assert "lil_matrix/dok_matrix" in coverage.UNIMPLEMENTED

    def test_bsr_is_implemented_not_planned(self):
        """The paper *plans* BSR (§5.4); this reproduction ships it."""
        assert "bsr_matrix" not in coverage.UNIMPLEMENTED
        assert "bsr_matvec" in coverage.GENERATED
