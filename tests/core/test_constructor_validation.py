"""Constructor-time validation: malformed host inputs raise ValueError
naming the offending field instead of failing later inside kernels."""

import numpy as np
import pytest

import repro.sparse as sp


# ----------------------------------------------------------------------
# CSR (data, indices, indptr)
# ----------------------------------------------------------------------
def test_csr_nnz_mismatch_names_indptr():
    with pytest.raises(ValueError, match="indptr"):
        sp.csr_matrix(
            (np.ones(3), np.array([0, 1, 2]), np.array([0, 2, 4])),
            shape=(2, 3),
        )


def test_csr_data_indices_length_mismatch():
    with pytest.raises(ValueError, match="data"):
        sp.csr_matrix(
            (np.ones(2), np.array([0, 1, 2]), np.array([0, 2, 3])),
            shape=(2, 3),
        )


def test_csr_indptr_wrong_length_for_shape():
    with pytest.raises(ValueError, match="indptr"):
        sp.csr_matrix(
            (np.ones(2), np.array([0, 1]), np.array([0, 1, 2])),
            shape=(5, 3),
        )


def test_csr_indptr_decreasing():
    with pytest.raises(ValueError, match="non-decreasing"):
        sp.csr_matrix(
            (np.ones(2), np.array([0, 1]), np.array([0, 2, 1, 2])),
            shape=(3, 3),
        )


def test_csr_indices_out_of_range():
    with pytest.raises(ValueError, match="indices"):
        sp.csr_matrix(
            (np.ones(2), np.array([0, 7]), np.array([0, 1, 2])),
            shape=(2, 3),
        )


def test_csr_float_indices_rejected():
    with pytest.raises(ValueError, match="indices"):
        sp.csr_matrix(
            (np.ones(2), np.array([0.5, 1.0]), np.array([0, 1, 2])),
            shape=(2, 3),
        )


def test_csr_coo_style_negative_row():
    with pytest.raises(ValueError, match="row"):
        sp.csr_matrix(
            (np.ones(2), (np.array([-1, 0]), np.array([0, 1]))),
            shape=(2, 2),
        )


def test_csr_coo_style_row_col_length_mismatch():
    with pytest.raises(ValueError, match="row"):
        sp.csr_matrix((np.ones(2), (np.array([0, 1]), np.array([0]))))


def test_csr_valid_construction_still_works():
    A = sp.csr_matrix(
        (np.array([1.0, 2.0]), np.array([0, 2]), np.array([0, 1, 2])),
        shape=(2, 3),
    )
    assert A.nnz == 2
    assert A.toarray()[1, 2] == 2.0


# ----------------------------------------------------------------------
# COO (data, (row, col))
# ----------------------------------------------------------------------
def test_coo_col_out_of_range():
    with pytest.raises(ValueError, match="col"):
        sp.coo_matrix(
            (np.ones(2), (np.array([0, 1]), np.array([0, 9]))), shape=(2, 3)
        )


def test_coo_negative_col_without_shape():
    with pytest.raises(ValueError, match="col"):
        sp.coo_matrix((np.ones(1), (np.array([0]), np.array([-2]))))


def test_coo_data_length_mismatch():
    with pytest.raises(ValueError, match="data"):
        sp.coo_matrix(
            (np.ones(3), (np.array([0, 1]), np.array([0, 1]))), shape=(2, 2)
        )


def test_coo_float_row_rejected():
    with pytest.raises(ValueError, match="row"):
        sp.coo_matrix(
            (np.ones(1), (np.array([0.25]), np.array([0]))), shape=(2, 2)
        )


def test_coo_valid_roundtrip():
    A = sp.coo_matrix(
        (np.array([3.0, 4.0]), (np.array([1, 0]), np.array([0, 1]))),
        shape=(2, 2),
    )
    assert A.toarray()[1, 0] == 3.0


# ----------------------------------------------------------------------
# DIA (data, offsets)
# ----------------------------------------------------------------------
def test_dia_requires_shape():
    with pytest.raises(ValueError, match="shape"):
        sp.dia_matrix((np.ones((1, 3)), np.array([0])))


def test_dia_offsets_data_row_mismatch():
    with pytest.raises(ValueError, match="offsets"):
        sp.dia_matrix((np.ones((2, 3)), np.array([0])), shape=(3, 3))


def test_dia_duplicate_offsets():
    with pytest.raises(ValueError, match="duplicate"):
        sp.dia_matrix((np.ones((2, 3)), np.array([0, 0])), shape=(3, 3))


def test_dia_valid_construction():
    A = sp.dia_matrix((np.ones((1, 3)), np.array([0])), shape=(3, 3))
    assert np.allclose(A.toarray(), np.eye(3))


# ----------------------------------------------------------------------
# BSR (data, indices, indptr)
# ----------------------------------------------------------------------
def test_bsr_shape_not_divisible_by_blocksize():
    data = np.ones((1, 2, 2))
    with pytest.raises(ValueError, match="blocksize"):
        sp.bsr_matrix(
            (data, np.array([0]), np.array([0, 1])), shape=(5, 4)
        )


def test_bsr_indices_block_count_mismatch():
    data = np.ones((2, 2, 2))
    with pytest.raises(ValueError, match="indices"):
        sp.bsr_matrix(
            (data, np.array([0]), np.array([0, 1])), shape=(4, 4)
        )


def test_bsr_valid_construction():
    data = np.ones((1, 2, 2))
    A = sp.bsr_matrix((data, np.array([0]), np.array([0, 1])), shape=(2, 2))
    assert A.nnz == 4
