"""Tests for the extended SciPy-Sparse surface (tril/triu/find/etc.)."""

import numpy as np
import pytest
import scipy.sparse as sps
import scipy.sparse.linalg as spla

import repro.numeric as rnp
import repro.sparse as sp

from tests.core.conftest import random_scipy_csr


class TestTriangles:
    @pytest.mark.parametrize("k", [-2, 0, 1])
    def test_tril_matches_scipy(self, rt, k):
        ref = random_scipy_csr(12, 10, density=0.4, seed=1)
        out = sp.tril(sp.csr_matrix(ref), k=k)
        np.testing.assert_allclose(out.toarray(), sps.tril(ref, k=k).toarray())

    @pytest.mark.parametrize("k", [-1, 0, 2])
    def test_triu_matches_scipy(self, rt, k):
        ref = random_scipy_csr(10, 12, density=0.4, seed=2)
        out = sp.triu(sp.csr_matrix(ref), k=k)
        np.testing.assert_allclose(out.toarray(), sps.triu(ref, k=k).toarray())

    def test_tril_plus_triu_reconstructs(self, rt):
        ref = random_scipy_csr(9, 9, density=0.5, seed=3)
        A = sp.csr_matrix(ref)
        lower = sp.tril(A, k=-1)
        upper = sp.triu(A, k=0)
        np.testing.assert_allclose((lower + upper).toarray(), ref.toarray())

    def test_format_argument(self, rt):
        A = sp.csr_matrix(random_scipy_csr(6, 6, seed=4))
        assert sp.tril(A, format="coo").format == "coo"


class TestFindCount:
    def test_find_matches_scipy(self, rt):
        ref = random_scipy_csr(8, 7, density=0.3, seed=5)
        r, c, v = sp.find(sp.csr_matrix(ref))
        rr, cc, vv = sps.find(ref)
        order = np.lexsort((c, r))
        order_ref = np.lexsort((cc, rr))
        np.testing.assert_array_equal(r[order], rr[order_ref])
        np.testing.assert_array_equal(c[order], cc[order_ref])
        np.testing.assert_allclose(v[order], vv[order_ref])

    def test_count_nonzero_excludes_explicit_zeros(self, rt):
        a = sps.csr_matrix(np.array([[1.0, 0.0], [0.0, 2.0]]))
        A = sp.csr_matrix(a)
        Z = A - A  # same structure, all-zero values
        assert sp.count_nonzero(A) == 2
        assert sp.count_nonzero(Z) == 0


class TestSetdiag:
    def test_replaces_diagonal(self, rt):
        ref = random_scipy_csr(8, 8, density=0.4, seed=6)
        A = sp.csr_matrix(ref)
        out = sp.setdiag(A, 9.0)
        expected = ref.toarray().copy()
        np.fill_diagonal(expected, 9.0)
        np.testing.assert_allclose(out.toarray(), expected)

    def test_vector_diagonal(self, rt):
        ref = random_scipy_csr(6, 6, density=0.4, seed=7)
        vals = np.arange(1.0, 7.0)
        out = sp.setdiag(sp.csr_matrix(ref), vals)
        np.testing.assert_allclose(np.diag(out.toarray()), vals)


class TestConstructors:
    def test_spdiags_matches_scipy(self, rt):
        data = np.arange(12.0).reshape(3, 4)
        offsets = [-1, 0, 1]
        ours = sp.spdiags(data, offsets, 4, 4)
        ref = sps.spdiags(data, offsets, 4, 4)
        np.testing.assert_allclose(ours.toarray(), ref.toarray())

    def test_block_diag(self, rt):
        a = random_scipy_csr(3, 4, seed=8)
        b = random_scipy_csr(2, 2, seed=9)
        ours = sp.block_diag([sp.csr_matrix(a), sp.csr_matrix(b)])
        ref = sps.block_diag([a, b])
        np.testing.assert_allclose(ours.toarray(), ref.toarray())
        assert ours.shape == (5, 6)


class TestExpmMultiply:
    def test_matches_scipy(self, rt):
        rng = np.random.default_rng(10)
        a = sps.random(24, 24, density=0.2, random_state=rng, format="csr")
        a = 0.1 * (a + a.T)
        v = rng.random(24)
        ours = sp.linalg.expm_multiply(sp.csr_matrix(a.tocsr()), rnp.array(v))
        ref = spla.expm_multiply(a.tocsr(), v)
        np.testing.assert_allclose(ours.to_numpy(), ref, rtol=1e-8)

    def test_scaled_time(self, rt):
        a = sps.eye(5).tocsr() * 0.5
        v = np.ones(5)
        ours = sp.linalg.expm_multiply(sp.csr_matrix(a), rnp.array(v), t=2.0)
        np.testing.assert_allclose(ours.to_numpy(), np.exp(1.0) * v, rtol=1e-10)

    def test_identity_action(self, rt):
        z = sp.csr_matrix((4, 4))
        v = rnp.array(np.arange(4.0))
        out = sp.linalg.expm_multiply(z, v)
        np.testing.assert_allclose(out.to_numpy(), np.arange(4.0))

    def test_shape_checks(self, rt):
        with pytest.raises(ValueError):
            sp.linalg.expm_multiply(sp.eye(3, 4, format="csr").tocsr(), rnp.ones(4))
