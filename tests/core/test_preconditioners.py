"""Preconditioner tests: Jacobi and SSOR accelerate CG."""

import numpy as np
import pytest
import scipy.sparse as sps

import repro.numeric as rnp
import repro.sparse as sp
from repro.apps.poisson import poisson2d_scipy


def badly_scaled_spd(n_side=10, seed=0):
    rng = np.random.default_rng(seed)
    d = 10.0 ** rng.uniform(-3, 3, size=n_side * n_side)
    ref = (sps.diags(d) @ poisson2d_scipy(n_side) @ sps.diags(d)).tocsr()
    ref = 0.5 * (ref + ref.T)
    row_sums = np.abs(ref).sum(axis=1).A.ravel()
    return (ref + sps.diags(row_sums * 0.01)).tocsr()


def cg_iterations(A, b, M=None, maxiter=3000):
    count = [0]
    x, info = sp.linalg.cg(
        A, b, rtol=1e-8, maxiter=maxiter, M=M,
        callback=lambda _: count.__setitem__(0, count[0] + 1),
    )
    return x, info, count[0]


class TestJacobi:
    def test_slashes_iterations_on_bad_scaling(self, rt):
        ref = badly_scaled_spd()
        A = sp.csr_matrix(ref)
        b = rnp.ones(100)
        _, _, plain = cg_iterations(A, b, maxiter=500)
        M = sp.linalg.preconditioners.jacobi(A)
        x, info, prec = cg_iterations(A, b, M=M)
        assert info == 0
        assert prec < plain / 4
        np.testing.assert_allclose(ref @ x.to_numpy(), np.ones(100), atol=1e-5)

    def test_requires_square(self, rt):
        with pytest.raises(ValueError):
            sp.linalg.preconditioners.jacobi(sp.eye(3, 4, format="csr").tocsr())


class TestSSOR:
    def test_converges_and_accelerates(self, rt):
        ref = badly_scaled_spd(seed=1)
        A = sp.csr_matrix(ref)
        b = rnp.ones(100)
        M = sp.linalg.preconditioners.ssor(A, omega=1.2)
        x, info, iters = cg_iterations(A, b, M=M)
        assert info == 0
        assert iters < 60
        np.testing.assert_allclose(ref @ x.to_numpy(), np.ones(100), atol=1e-5)

    def test_omega_validation(self, rt):
        A = sp.eye(4, format="csr").tocsr()
        with pytest.raises(ValueError):
            sp.linalg.preconditioners.ssor(A, omega=2.5)

    def test_identity_matrix_is_fixed_point(self, rt):
        A = sp.eye(8, format="csr").tocsr()
        M = sp.linalg.preconditioners.ssor(A, omega=1.0)
        r = rnp.array(np.arange(1.0, 9.0))
        out = M.matvec(r)
        np.testing.assert_allclose(out.to_numpy(), np.arange(1.0, 9.0), rtol=1e-12)
