"""LSQR and triangular solves against SciPy."""

import numpy as np
import pytest
import scipy.sparse as sps
import scipy.sparse.linalg as spla

import repro.numeric as rnp
import repro.sparse as sp


class TestLSQR:
    def test_consistent_square_system(self, rt):
        rng = np.random.default_rng(0)
        a = (sps.random(20, 20, density=0.3, random_state=rng) + 20 * sps.eye(20)).tocsr()
        x_true = rng.standard_normal(20)
        b = a @ x_true
        x, istop, itn, rnorm = sp.linalg.lsqr(
            sp.csr_matrix(a), rnp.array(b), atol=1e-12, btol=1e-12
        )
        assert istop in (1, 2)
        np.testing.assert_allclose(x.to_numpy(), x_true, rtol=1e-6, atol=1e-8)

    def test_overdetermined_least_squares(self, rt):
        rng = np.random.default_rng(1)
        a = sps.random(40, 10, density=0.5, random_state=rng, format="csr")
        b = rng.standard_normal(40)
        x, istop, itn, rnorm = sp.linalg.lsqr(
            sp.csr_matrix(a), rnp.array(b), iter_lim=400
        )
        ref = spla.lsqr(a, b)[0]
        np.testing.assert_allclose(x.to_numpy(), ref, rtol=1e-3, atol=1e-5)

    def test_residual_reported(self, rt):
        rng = np.random.default_rng(2)
        a = sps.random(25, 8, density=0.5, random_state=rng, format="csr")
        b = rng.standard_normal(25)
        x, istop, itn, rnorm = sp.linalg.lsqr(sp.csr_matrix(a), rnp.array(b))
        actual = np.linalg.norm(a @ x.to_numpy() - b)
        assert rnorm == pytest.approx(actual, rel=1e-3)

    def test_x0_warm_start(self, rt):
        rng = np.random.default_rng(3)
        a = (sps.random(16, 16, density=0.4, random_state=rng) + 16 * sps.eye(16)).tocsr()
        x_true = rng.standard_normal(16)
        b = a @ x_true
        x, istop, itn, _ = sp.linalg.lsqr(
            sp.csr_matrix(a), rnp.array(b), x0=rnp.array(x_true), atol=1e-12, btol=1e-12
        )
        assert itn <= 2  # already at the solution

    def test_iteration_limit(self, rt):
        rng = np.random.default_rng(4)
        a = sps.random(30, 30, density=0.2, random_state=rng, format="csr")
        a = a + sps.eye(30) * 0.01
        b = rng.standard_normal(30)
        x, istop, itn, _ = sp.linalg.lsqr(
            sp.csr_matrix(a), rnp.array(b), atol=0, btol=0, iter_lim=3
        )
        assert istop == 7
        assert itn == 3

    def test_shape_check(self, rt):
        with pytest.raises(ValueError):
            sp.linalg.lsqr(sp.eye(4, format="csr"), rnp.ones(5))

    def test_zero_rhs(self, rt):
        A = sp.eye(6, format="csr")
        x, istop, itn, rnorm = sp.linalg.lsqr(A, rnp.zeros(6))
        assert itn == 0
        np.testing.assert_allclose(x.to_numpy(), np.zeros(6))


def make_triangular(n, lower, seed=0, unit=False):
    rng = np.random.default_rng(seed)
    base = sps.random(n, n, density=0.4, random_state=rng)
    tri = sps.tril(base, k=-1) if lower else sps.triu(base, k=1)
    diag = sps.eye(n) if unit else sps.diags(rng.random(n) + 1.0)
    return (tri + diag).tocsr()


class TestTriangularSolve:
    @pytest.mark.parametrize("lower", [True, False])
    def test_matches_scipy(self, rt, lower):
        L = make_triangular(18, lower, seed=5)
        b = np.random.default_rng(6).random(18)
        x = sp.linalg.spsolve_triangular(sp.csr_matrix(L), rnp.array(b), lower=lower)
        ref = spla.spsolve_triangular(L, b, lower=lower)
        np.testing.assert_allclose(x.to_numpy(), ref, rtol=1e-10)

    def test_unit_diagonal(self, rt):
        L = make_triangular(12, True, seed=7, unit=True)
        # Zero out the stored unit diagonal to prove it is not read.
        b = np.random.default_rng(8).random(12)
        x = sp.linalg.spsolve_triangular(
            sp.csr_matrix(L), rnp.array(b), lower=True, unit_diagonal=True
        )
        ref = spla.spsolve_triangular(L, b, lower=True, unit_diagonal=True)
        np.testing.assert_allclose(x.to_numpy(), ref, rtol=1e-10)

    def test_singular_raises(self, rt):
        L = sps.csr_matrix(np.array([[1.0, 0.0], [3.0, 0.0]]))
        with pytest.raises(np.linalg.LinAlgError):
            sp.linalg.spsolve_triangular(sp.csr_matrix(L), rnp.ones(2))

    def test_rectangular_rejected(self, rt):
        with pytest.raises(ValueError):
            sp.linalg.spsolve_triangular(
                sp.eye(3, 4, format="csr").tocsr(), rnp.ones(3)
            )

    def test_solve_then_verify_distributed(self, rt):
        """The solution composes with distributed ops afterwards."""
        L = make_triangular(16, True, seed=9)
        b = np.ones(16)
        x = sp.linalg.spsolve_triangular(sp.csr_matrix(L), rnp.array(b))
        resid = float(rnp.linalg.norm(sp.csr_matrix(L) @ x - rnp.array(b)))
        assert resid < 1e-10
