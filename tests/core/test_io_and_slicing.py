"""Persistence (npz interchange with SciPy) and matrix slicing."""

import os

import numpy as np
import pytest
import scipy.sparse as sps

import repro.sparse as sp

from tests.core.conftest import random_scipy_csr


class TestNpz:
    @pytest.mark.parametrize("fmt", ["csr", "csc", "coo", "dia"])
    def test_roundtrip(self, rt, tmp_path, fmt):
        if fmt == "dia":
            ref = sps.diags(
                [np.arange(1.0, 9.0), np.ones(7)], [0, 1]
            ).todia()
            A = sp.dia_matrix(ref)
        else:
            ref = random_scipy_csr(9, 7, seed=1).asformat(fmt)
            A = getattr(sp, f"{fmt}_matrix")(ref)
        path = os.fspath(tmp_path / "m.npz")
        sp.save_npz(path, A)
        B = sp.load_npz(path)
        assert B.format == fmt
        np.testing.assert_allclose(B.toarray(), ref.toarray())

    def test_scipy_reads_our_files(self, rt, tmp_path):
        ref = random_scipy_csr(8, 8, seed=2)
        path = os.fspath(tmp_path / "m.npz")
        sp.save_npz(path, sp.csr_matrix(ref))
        loaded = sps.load_npz(path)
        np.testing.assert_allclose(loaded.toarray(), ref.toarray())

    def test_we_read_scipy_files(self, rt, tmp_path):
        ref = random_scipy_csr(8, 8, seed=3)
        path = os.fspath(tmp_path / "m.npz")
        sps.save_npz(path, ref)
        loaded = sp.load_npz(path)
        np.testing.assert_allclose(loaded.toarray(), ref.toarray())

    def test_uncompressed(self, rt, tmp_path):
        ref = random_scipy_csr(5, 5, seed=4)
        path = os.fspath(tmp_path / "m.npz")
        sp.save_npz(path, sp.csr_matrix(ref), compressed=False)
        np.testing.assert_allclose(sp.load_npz(path).toarray(), ref.toarray())

    def test_unsupported_format_raises(self, rt, tmp_path):
        A = sp.bsr_matrix(random_scipy_csr(4, 4, seed=5), blocksize=(2, 2))
        with pytest.raises(NotImplementedError):
            sp.save_npz(os.fspath(tmp_path / "m.npz"), A)


class TestSlicing:
    def test_element_access(self, rt):
        ref = random_scipy_csr(8, 6, density=0.4, seed=6)
        A = sp.csr_matrix(ref)
        for i in range(8):
            for j in range(6):
                assert A[i, j] == pytest.approx(ref[i, j])

    def test_element_out_of_range(self, rt):
        A = sp.eye(3, format="csr")
        with pytest.raises(IndexError):
            A[3, 0]

    def test_column_slice(self, rt):
        ref = random_scipy_csr(10, 12, density=0.3, seed=7)
        A = sp.csr_matrix(ref)
        out = A[:, 3:9]
        assert out.format == "csc"
        np.testing.assert_allclose(out.toarray(), ref[:, 3:9].toarray())

    def test_row_slice_tuple_form(self, rt):
        ref = random_scipy_csr(10, 5, seed=8)
        A = sp.csr_matrix(ref)
        np.testing.assert_allclose(
            A[2:7, :].toarray(), ref[2:7, :].toarray()
        )

    def test_csc_column_slice_shares_values(self, rt):
        ref = random_scipy_csr(8, 8, seed=9).tocsc()
        A = sp.csc_matrix(ref)
        sub = A[:, 1:5]
        assert sub.vals is A.vals
        np.testing.assert_allclose(sub.toarray(), ref[:, 1:5].toarray())

    def test_strided_rejected(self, rt):
        A = sp.csr_matrix(random_scipy_csr(8, 8, seed=10))
        with pytest.raises(NotImplementedError):
            A[::2]
        with pytest.raises(NotImplementedError):
            A[:, ::2]
