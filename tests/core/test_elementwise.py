"""Element-wise sparse algebra (two-pass union/intersection kernels)."""

import numpy as np
import pytest
import scipy.sparse as sps

import repro.numeric as rnp
import repro.sparse as sp

from tests.core.conftest import random_scipy_csr


class TestAdd:
    def test_add_matches_scipy(self, rt):
        a = random_scipy_csr(15, 12, density=0.25, seed=1)
        b = random_scipy_csr(15, 12, density=0.25, seed=2)
        C = sp.csr_matrix(a) + sp.csr_matrix(b)
        np.testing.assert_allclose(C.toarray(), (a + b).toarray(), rtol=1e-12)

    def test_result_is_canonical(self, rt):
        a = random_scipy_csr(10, 10, density=0.3, seed=3)
        b = random_scipy_csr(10, 10, density=0.3, seed=4)
        C = sp.csr_matrix(a) + sp.csr_matrix(b)
        ref = (a + b).tocsr()
        ref.sum_duplicates()
        np.testing.assert_array_equal(C.indptr, ref.indptr)
        np.testing.assert_array_equal(C.indices, ref.indices)

    def test_sub(self, rt):
        a = random_scipy_csr(10, 10, seed=5)
        b = random_scipy_csr(10, 10, seed=6)
        C = sp.csr_matrix(a) - sp.csr_matrix(b)
        np.testing.assert_allclose(C.toarray(), (a - b).toarray(), rtol=1e-12)

    def test_add_mixed_formats(self, rt):
        a = random_scipy_csr(8, 8, seed=7)
        A = sp.csr_matrix(a)
        E = sp.eye(8)  # DIA
        C = A + E
        np.testing.assert_allclose(C.toarray(), a.toarray() + np.eye(8), rtol=1e-12)

    def test_add_with_transpose(self, rt):
        """The Fig. 1 symmetrization: 0.5 * (A + A.T)."""
        a = random_scipy_csr(10, 10, seed=8)
        A = sp.csr_matrix(a)
        S = 0.5 * (A + A.T)
        np.testing.assert_allclose(
            S.toarray(), 0.5 * (a.toarray() + a.toarray().T), rtol=1e-12
        )
        np.testing.assert_allclose(S.toarray(), S.toarray().T)

    def test_add_zero_scalar_is_copy(self, rt):
        a = random_scipy_csr(5, 5, seed=9)
        A = sp.csr_matrix(a)
        np.testing.assert_allclose((A + 0).toarray(), a.toarray())

    def test_shape_mismatch(self, rt):
        with pytest.raises(ValueError):
            sp.eye(3, format="csr") + sp.eye(4, format="csr")

    def test_disjoint_structures(self, rt):
        a = sps.csr_matrix(np.diag([1.0, 2.0, 3.0]))
        b = sps.csr_matrix(np.array([[0, 1.0, 0], [0, 0, 1.0], [0, 0, 0]]))
        C = sp.csr_matrix(a) + sp.csr_matrix(b)
        assert C.nnz == 5
        np.testing.assert_allclose(C.toarray(), (a + b).toarray())

    def test_cancellation_keeps_explicit_zero(self, rt):
        """Like SciPy, structural union keeps entries that sum to zero."""
        a = sps.csr_matrix(np.array([[1.0, 0], [0, 0]]))
        b = sps.csr_matrix(np.array([[-1.0, 0], [0, 2.0]]))
        C = sp.csr_matrix(a) + sp.csr_matrix(b)
        assert C.nnz == (a + b).nnz + 1  # scipy prunes the explicit zero
        np.testing.assert_allclose(C.toarray(), (a + b).toarray())


class TestMultiply:
    def test_hadamard_matches_scipy(self, rt):
        a = random_scipy_csr(12, 10, density=0.35, seed=10)
        b = random_scipy_csr(12, 10, density=0.35, seed=11)
        C = sp.csr_matrix(a).multiply(sp.csr_matrix(b))
        np.testing.assert_allclose(C.toarray(), a.multiply(b).toarray(), rtol=1e-12)

    def test_hadamard_structure_is_intersection(self, rt):
        a = sps.csr_matrix(np.array([[1.0, 2.0], [0, 3.0]]))
        b = sps.csr_matrix(np.array([[4.0, 0], [5.0, 6.0]]))
        C = sp.csr_matrix(a).multiply(sp.csr_matrix(b))
        assert C.nnz == 2  # (0,0) and (1,1)

    def test_multiply_scalar(self, rt):
        a = random_scipy_csr(6, 6, seed=12)
        np.testing.assert_allclose(
            sp.csr_matrix(a).multiply(3.0).toarray(), (a * 3.0).toarray()
        )

    def test_multiply_dense_full(self, rt):
        a = random_scipy_csr(8, 6, seed=13)
        D = np.random.default_rng(14).random((8, 6))
        C = sp.csr_matrix(a).multiply(rnp.array(D))
        np.testing.assert_allclose(C.toarray(), a.multiply(D).toarray(), rtol=1e-12)

    def test_multiply_dense_row_vector(self, rt):
        a = random_scipy_csr(8, 6, seed=15)
        v = np.random.default_rng(16).random(6)
        C = sp.csr_matrix(a).multiply(rnp.array(v))
        np.testing.assert_allclose(C.toarray(), a.multiply(v).toarray(), rtol=1e-12)


class TestMaxMin:
    def test_maximum(self, rt):
        a = random_scipy_csr(9, 9, seed=17)
        b = random_scipy_csr(9, 9, seed=18)
        C = sp.csr_matrix(a).maximum(sp.csr_matrix(b))
        np.testing.assert_allclose(C.toarray(), a.maximum(b).toarray(), rtol=1e-12)

    def test_minimum(self, rt):
        a = -random_scipy_csr(9, 9, seed=19)
        b = -random_scipy_csr(9, 9, seed=20)
        C = sp.csr_matrix(a).minimum(sp.csr_matrix(b))
        np.testing.assert_allclose(C.toarray(), a.minimum(b).toarray(), rtol=1e-12)


class TestComplex:
    def test_complex_add(self, rt):
        a = random_scipy_csr(8, 8, seed=21, dtype=np.complex128)
        b = random_scipy_csr(8, 8, seed=22)
        C = sp.csr_matrix(a) + sp.csr_matrix(b)
        assert C.dtype == np.complex128
        np.testing.assert_allclose(C.toarray(), (a + b.astype(np.complex128)).toarray())

    def test_complex_hadamard(self, rt):
        a = random_scipy_csr(8, 8, seed=23, dtype=np.complex128)
        b = random_scipy_csr(8, 8, seed=24, dtype=np.complex128)
        C = sp.csr_matrix(a).multiply(sp.csr_matrix(b))
        np.testing.assert_allclose(C.toarray(), a.multiply(b).toarray(), rtol=1e-12)


class TestAddDense:
    def test_matches_scipy(self, rt):
        a = random_scipy_csr(9, 7, density=0.3, seed=30)
        D = np.random.default_rng(31).random((9, 7))
        out = sp.csr_matrix(a) + rnp.array(D)
        np.testing.assert_allclose(out.to_numpy(), (a + D), rtol=1e-12)

    def test_radd(self, rt):
        a = random_scipy_csr(6, 6, seed=32)
        D = np.random.default_rng(33).random((6, 6))
        out = rnp.array(D) + sp.csr_matrix(a)
        np.testing.assert_allclose(out.to_numpy(), a + D, rtol=1e-12)

    def test_numpy_operand(self, rt):
        a = random_scipy_csr(5, 5, seed=34)
        D = np.ones((5, 5))
        out = sp.csr_matrix(a) + D
        np.testing.assert_allclose(out.to_numpy(), a.toarray() + 1)

    def test_shape_mismatch(self, rt):
        with pytest.raises(ValueError):
            sp.eye(3, format="csr") + rnp.ones((4, 3))
