"""Unit and property tests for rects and rect sets (1-D and 2-D)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Rect, RectSet


class TestRect:
    def test_from_shape(self):
        r = Rect.from_shape((3, 4))
        assert r.lo == (0, 0) and r.hi == (3, 4)
        assert r.volume() == 12

    def test_dim_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Rect((0,), (1, 2))

    def test_empty_volume(self):
        assert Rect((0, 0), (0, 5)).volume() == 0
        assert Rect((3,), (3,)).is_empty()

    def test_shape(self):
        assert Rect((1, 2), (4, 8)).shape == (3, 6)

    def test_contains(self):
        big = Rect((0, 0), (10, 10))
        assert big.contains(Rect((2, 3), (5, 6)))
        assert not big.contains(Rect((2, 3), (5, 11)))
        assert big.contains(Rect((0, 0), (0, 0)))  # empty

    def test_contains_point(self):
        r = Rect((0, 0), (3, 3))
        assert r.contains_point((2, 2))
        assert not r.contains_point((3, 0))

    def test_intersect(self):
        a = Rect((0, 0), (5, 5))
        b = Rect((3, 3), (8, 8))
        assert a.intersect(b) == Rect((3, 3), (5, 5))

    def test_intersect_disjoint_is_empty(self):
        a = Rect((0,), (3,))
        b = Rect((5,), (9,))
        assert a.intersect(b).is_empty()

    def test_union_hull(self):
        a = Rect((0, 0), (2, 2))
        b = Rect((4, 4), (6, 6))
        assert a.union_hull(b) == Rect((0, 0), (6, 6))

    def test_subtract_center_2d(self):
        outer = Rect((0, 0), (10, 10))
        inner = Rect((3, 3), (7, 7))
        pieces = outer.subtract(inner)
        assert sum(p.volume() for p in pieces) == 100 - 16
        for i, a in enumerate(pieces):
            for b in pieces[i + 1 :]:
                assert not a.overlaps(b)

    def test_subtract_no_overlap(self):
        a = Rect((0,), (5,))
        assert a.subtract(Rect((7,), (9,))) == [a]

    def test_subtract_covering(self):
        assert Rect((2,), (4,)).subtract(Rect((0,), (10,))) == []

    def test_slices(self):
        import numpy as np

        arr = np.arange(20).reshape(4, 5)
        r = Rect((1, 2), (3, 5))
        assert arr[r.slices()].shape == (2, 3)

    def test_shift(self):
        assert Rect((1, 1), (2, 2)).shift((10, 0)) == Rect((11, 1), (12, 2))


class TestRectSet:
    def test_add_disjointness(self):
        s = RectSet([Rect((0,), (5,)), Rect((3,), (8,))])
        assert s.volume() == 8
        rects = s.rects()
        for i, a in enumerate(rects):
            for b in rects[i + 1 :]:
                assert not a.overlaps(b)

    def test_subtract(self):
        s = RectSet.of(Rect((0,), (10,))).subtract(RectSet.of(Rect((2,), (4,))))
        assert s.volume() == 8

    def test_covers(self):
        s = RectSet([Rect((0,), (5,)), Rect((5,), (10,))])
        assert s.covers(RectSet.of(Rect((0,), (10,))))
        assert not s.covers(RectSet.of(Rect((0,), (11,))))

    def test_extensional_equality(self):
        a = RectSet([Rect((0,), (3,)), Rect((3,), (6,))])
        b = RectSet([Rect((0,), (6,))])
        assert a == b

    def test_hull(self):
        s = RectSet([Rect((0, 0), (1, 1)), Rect((5, 5), (6, 6))])
        assert s.hull() == Rect((0, 0), (6, 6))


_coords = st.integers(min_value=0, max_value=12)


@st.composite
def _rects2d(draw):
    x0, x1 = sorted((draw(_coords), draw(_coords)))
    y0, y1 = sorted((draw(_coords), draw(_coords)))
    return Rect((x0, y0), (x1, y1))


def _points(s) -> set:
    pts = set()
    for rect in s:
        for x in range(rect.lo[0], rect.hi[0]):
            for y in range(rect.lo[1], rect.hi[1]):
                pts.add((x, y))
    return pts


class TestRectSetProperties:
    @given(st.lists(_rects2d(), max_size=6))
    def test_union_matches_pointwise(self, rects):
        s = RectSet(rects)
        assert _points(s) == _points(rects)
        assert s.volume() == len(_points(rects))

    @given(st.lists(_rects2d(), max_size=5), st.lists(_rects2d(), max_size=5))
    def test_subtract_matches_pointwise(self, xs, ys):
        a, b = RectSet(xs), RectSet(ys)
        assert _points(a.subtract(b)) == _points(a) - _points(b)

    @given(st.lists(_rects2d(), max_size=5), st.lists(_rects2d(), max_size=5))
    def test_intersect_matches_pointwise(self, xs, ys):
        a, b = RectSet(xs), RectSet(ys)
        assert _points(a.intersect(b)) == _points(a) & _points(b)

    @given(_rects2d(), _rects2d())
    def test_rect_subtract_partition(self, a, b):
        """a ∩ b and a - b partition a."""
        pieces = a.subtract(b)
        total = sum(p.volume() for p in pieces) + a.intersect(b).volume()
        assert total == a.volume()
        for i, p in enumerate(pieces):
            assert not p.overlaps(b)
            for q in pieces[i + 1 :]:
                assert not p.overlaps(q)
