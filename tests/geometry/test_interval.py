"""Unit tests for half-open intervals and interval sets."""

from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Interval, IntervalSet


class TestInterval:
    def test_length_and_empty(self):
        assert len(Interval(2, 5)) == 3
        assert Interval(5, 5).is_empty()
        assert Interval(6, 5).is_empty()
        assert len(Interval(6, 5)) == 0

    def test_contains(self):
        ival = Interval(2, 5)
        assert ival.contains(2)
        assert ival.contains(4)
        assert not ival.contains(5)
        assert not ival.contains(1)

    def test_contains_interval(self):
        assert Interval(0, 10).contains_interval(Interval(3, 7))
        assert Interval(0, 10).contains_interval(Interval(0, 10))
        assert not Interval(0, 10).contains_interval(Interval(3, 11))
        # Empty intervals are contained everywhere.
        assert Interval(4, 4).contains_interval(Interval(9, 9))
        assert Interval(0, 1).contains_interval(Interval(5, 5))

    def test_overlaps(self):
        assert Interval(0, 5).overlaps(Interval(4, 10))
        assert not Interval(0, 5).overlaps(Interval(5, 10))  # half-open
        assert not Interval(0, 5).overlaps(Interval(7, 10))

    def test_intersect(self):
        assert Interval(0, 5).intersect(Interval(3, 10)) == Interval(3, 5)
        assert Interval(0, 5).intersect(Interval(7, 10)).is_empty()

    def test_union_hull(self):
        assert Interval(0, 2).union_hull(Interval(5, 7)) == Interval(0, 7)
        assert Interval(3, 3).union_hull(Interval(5, 7)) == Interval(5, 7)

    def test_subtract_middle(self):
        pieces = Interval(0, 10).subtract(Interval(3, 7))
        assert pieces == [Interval(0, 3), Interval(7, 10)]

    def test_subtract_disjoint(self):
        assert Interval(0, 5).subtract(Interval(7, 9)) == [Interval(0, 5)]

    def test_subtract_covering(self):
        assert Interval(3, 5).subtract(Interval(0, 10)) == []

    def test_subtract_left_edge(self):
        assert Interval(0, 10).subtract(Interval(0, 4)) == [Interval(4, 10)]

    def test_shift(self):
        assert Interval(1, 3).shift(10) == Interval(11, 13)


class TestIntervalSet:
    def test_add_merges_adjacent(self):
        s = IntervalSet([Interval(0, 3), Interval(3, 5)])
        assert s.intervals() == [Interval(0, 5)]

    def test_add_merges_overlapping(self):
        s = IntervalSet([Interval(0, 4), Interval(2, 8)])
        assert s.intervals() == [Interval(0, 8)]

    def test_add_keeps_disjoint(self):
        s = IntervalSet([Interval(0, 2), Interval(5, 7)])
        assert s.intervals() == [Interval(0, 2), Interval(5, 7)]

    def test_add_out_of_order(self):
        s = IntervalSet([Interval(5, 7), Interval(0, 2)])
        assert s.intervals() == [Interval(0, 2), Interval(5, 7)]

    def test_total_extent(self):
        s = IntervalSet([Interval(0, 2), Interval(5, 8)])
        assert s.total_extent() == 5

    def test_subtract(self):
        s = IntervalSet.of(0, 10).subtract(IntervalSet.of(3, 7))
        assert s.intervals() == [Interval(0, 3), Interval(7, 10)]

    def test_intersect(self):
        a = IntervalSet([Interval(0, 5), Interval(8, 12)])
        b = IntervalSet.of(3, 10)
        assert a.intersect(b).intervals() == [Interval(3, 5), Interval(8, 10)]

    def test_contains_interval(self):
        s = IntervalSet([Interval(0, 5), Interval(5, 10)])
        assert s.contains_interval(Interval(2, 8))
        assert not s.contains_interval(Interval(2, 11))

    def test_hull(self):
        s = IntervalSet([Interval(2, 4), Interval(9, 11)])
        assert s.hull() == Interval(2, 11)

    def test_equality_is_canonical(self):
        a = IntervalSet([Interval(0, 3), Interval(3, 6)])
        b = IntervalSet([Interval(0, 6)])
        assert a == b


_intervals = st.tuples(
    st.integers(min_value=0, max_value=60),
    st.integers(min_value=0, max_value=60),
).map(lambda t: Interval(min(t), max(t)))


def _members(s: IntervalSet, lo: int = 0, hi: int = 61) -> set:
    return {p for p in range(lo, hi) for i in s if i.contains(p)}


class TestIntervalSetProperties:
    @given(st.lists(_intervals, max_size=8))
    def test_union_matches_pointwise(self, ivals):
        s = IntervalSet(ivals)
        expected = {p for i in ivals for p in range(i.lo, i.hi)}
        assert _members(s) == expected

    @given(st.lists(_intervals, max_size=6), st.lists(_intervals, max_size=6))
    def test_subtract_matches_pointwise(self, xs, ys):
        a, b = IntervalSet(xs), IntervalSet(ys)
        assert _members(a.subtract(b)) == _members(a) - _members(b)

    @given(st.lists(_intervals, max_size=6), st.lists(_intervals, max_size=6))
    def test_intersect_matches_pointwise(self, xs, ys):
        a, b = IntervalSet(xs), IntervalSet(ys)
        assert _members(a.intersect(b)) == _members(a) & _members(b)

    @given(st.lists(_intervals, max_size=8))
    def test_canonical_form(self, ivals):
        s = IntervalSet(ivals)
        members = s.intervals()
        assert all(not i.is_empty() for i in members)
        # Sorted, disjoint, non-adjacent.
        for a, b in zip(members, members[1:]):
            assert a.hi < b.lo
