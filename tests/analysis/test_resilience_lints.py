"""Advisor resilience pass: checkpoint-cost prediction and fault lints."""

from repro.analysis import advise
from repro.legion import RuntimeConfig
from repro.legion.chaos import ChaosConfig, LossSchedule
from repro.machine import summit


def _workload():
    import repro.numeric as rnp

    x = rnp.ones(512)
    y = x * 2.0
    return y + x


def _advise(chaos, nodes=2, procs=2):
    return advise(
        _workload,
        machine=summit(nodes=nodes),
        procs=procs,
        config=RuntimeConfig.legate(chaos=chaos),
    )


def _findings(advice, rule):
    return [f for f in advice.findings if f.rule == rule]


def test_no_chaos_no_resilience_findings():
    advice = advise(_workload, machine=summit(nodes=2), procs=2)
    for rule in ("unprotected-run", "under-replicated", "resilience"):
        assert not _findings(advice, rule)


def test_unprotected_run_warns_on_losses_without_checkpoints():
    chaos = ChaosConfig(
        checkpoint_every=0, losses=(LossSchedule("gpu", 0, 1.0),)
    )
    advice = _advise(chaos)
    warns = _findings(advice, "unprotected-run")
    assert warns and all(f.severity == "warning" for f in warns)
    assert any("checkpoint_every=0" in f.message for f in warns)


def test_under_replicated_warns_on_node_losses_with_single_store():
    chaos = ChaosConfig(
        checkpoint_every=8,
        ckpt_replicas=1,
        losses=(LossSchedule("node", 0, 1.0),),
    )
    warns = _findings(_advise(chaos), "under-replicated")
    assert warns and all(f.severity == "warning" for f in warns)
    assert any("single point of failure" in f.message for f in warns)


def test_under_replicated_warns_when_replicas_exceed_domains():
    chaos = ChaosConfig(checkpoint_every=8, ckpt_replicas=4)
    warns = _findings(_advise(chaos, nodes=2), "under-replicated")
    assert any("fault domain" in f.message for f in warns)


def test_replicated_protected_run_gets_cost_note_only():
    chaos = ChaosConfig(
        checkpoint_every=8,
        ckpt_replicas=2,
        heartbeat_period=1e-4,
        detection_timeout=1e-4,
        losses=(LossSchedule("node", 0, 1.0),),
    )
    advice = _advise(chaos)
    assert not _findings(advice, "unprotected-run")
    assert not _findings(advice, "under-replicated")
    notes = _findings(advice, "resilience")
    assert notes and all(f.severity == "note" for f in notes)
    assert any("worst-case recovery" in f.message for f in notes)
