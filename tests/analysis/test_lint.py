"""DISTAL lint: statement, schedule and generated-source legality."""

import pytest

from repro.analysis.lint import (
    DistalLintError,
    lint_kernel_spec,
    lint_schedule,
    lint_statement,
)
from repro.distal import codegen
from repro.distal.codegen import KernelSpec
from repro.distal.formats import BSR, COO, CSR, DIA, ELL, HYB, SELL
from repro.distal.ir import IndexVar, Tensor
from repro.distal.library import STATEMENTS, row_distributed_schedule
from repro.distal.schedule import Schedule
from repro.machine import ProcessorKind

i, j, k = IndexVar("i"), IndexVar("j"), IndexVar("k")
io, ii = IndexVar("io"), IndexVar("ii")
y = Tensor("y", 1)
x = Tensor("x", 1)
A = Tensor("A", 2)
SPMV = y[i] << A[i, j] * x[j]


def _codes(issues):
    return [issue.code for issue in issues]


class TestStatementLint:
    def test_spmv_is_clean(self):
        assert lint_statement(SPMV) == []

    def test_unbound_output_index(self):
        stmt = y[i] << A[j, k] * x[k]
        assert "unbound-output-index" in _codes(lint_statement(stmt))

    def test_validate_method_raises(self):
        stmt = y[i] << A[j, k] * x[k]
        with pytest.raises(DistalLintError, match="unbound-output-index"):
            stmt.validate()
        SPMV.validate()  # clean statement passes


class TestScheduleLint:
    def test_row_distributed_is_legal(self):
        sched = row_distributed_schedule(ProcessorKind.GPU, SPMV)
        assert lint_schedule(SPMV, sched) == []
        sched.check(SPMV)

    def test_divide_unknown_var(self):
        """Seeded violation: an ill-scheduled DISTAL expression."""
        sched = Schedule().divide(IndexVar("z"), io, ii).distribute(io)
        with pytest.raises(DistalLintError, match="divide-unknown-var"):
            sched.check(SPMV)

    def test_divide_shadowing_statement_var(self):
        sched = Schedule().divide(i, j, ii)  # outer j already in SPMV
        assert "divide-shadows-var" in _codes(lint_schedule(SPMV, sched))

    def test_distribute_requires_divide(self):
        sched = Schedule()
        sched.distributed = io  # bypass the builder guard
        assert "distribute-before-divide" in _codes(lint_schedule(SPMV, sched))

    def test_communicate_unknown_tensor(self):
        B = Tensor("B", 2)
        sched = row_distributed_schedule(ProcessorKind.GPU, SPMV)
        sched.communicated = [B]
        assert "communicate-unknown-tensor" in _codes(lint_schedule(SPMV, sched))


def _spec(source, args, constraints, scalar_names=()):
    return KernelSpec(
        name="test-kernel",
        kernel=None,
        cost=None,
        source=source,
        args=args,
        constraints=constraints,
        scalar_names=list(scalar_names),
    )


class TestKernelSpecLint:
    def test_undeclared_region_reference(self):
        """Seeded violation: generated source touching ctx.arrays['oops']."""
        spec = _spec(
            'def kernel(ctx):\n    return ctx.arrays["oops"].sum()\n',
            [("y", "out")],
            [("explicit", "y")],
        )
        issues = lint_kernel_spec(spec)
        assert "undeclared-region" in _codes(issues)
        assert "oops" in str(issues[0])

    def test_undeclared_view_call(self):
        spec = _spec(
            'def kernel(ctx):\n    ctx.view("ghost")[...] = 0\n',
            [("y", "out")],
            [("explicit", "y")],
        )
        assert "undeclared-region" in _codes(lint_kernel_spec(spec))

    def test_undeclared_scalar(self):
        spec = _spec(
            'def kernel(ctx):\n    return ctx.scalar("alpha")\n',
            [("y", "out")],
            [("explicit", "y")],
        )
        assert "undeclared-scalar" in _codes(lint_kernel_spec(spec))
        ok = _spec(
            'def kernel(ctx):\n    return ctx.scalar("alpha")\n',
            [("y", "out")],
            [("explicit", "y")],
            scalar_names=["alpha"],
        )
        assert lint_kernel_spec(ok) == []

    def test_unconstrained_argument(self):
        spec = _spec(
            'def kernel(ctx):\n    ctx.view("y")[...] = 0\n',
            [("y", "out"), ("x", "in")],
            [("explicit", "y")],  # nothing places x
        )
        issues = lint_kernel_spec(spec)
        assert _codes(issues) == ["unconstrained-arg"]
        assert "'x'" in str(issues[0])


class TestRegistryKernelsClean:
    FORMATS = {
        "csr": CSR, "dia": DIA, "coo": COO, "bsr": BSR,
        "ell": ELL, "sell": SELL, "hyb": HYB,
    }

    @pytest.mark.parametrize("key,fmt_name", codegen.supported_statements())
    def test_template_passes_lint(self, key, fmt_name):
        """Every shipped template survives check=True generation."""
        statement = STATEMENTS[key]
        schedule = row_distributed_schedule(ProcessorKind.GPU, statement)
        spec = codegen.generate(
            statement, self.FORMATS[fmt_name], schedule,
            ProcessorKind.GPU, check=True,
        )
        assert spec.kernel is not None and spec.cost is not None
