"""Auto-format selector tests: layout invariants, cost-model
monotonicity, selector determinism, advisor/runtime agreement, and the
CLI exit-code contract under ``--autoformat``."""

import math
from pathlib import Path

import numpy as np
import pytest

from repro.analysis import advise_formats, profile_matrix, select_format
from repro.analysis.advisor import AdvisorConfig, analyze, trace
from repro.analysis.costmodel import (
    csr_spmv_shard_cost,
    ell_spmv_shard_cost,
    hyb_spmv_shard_cost,
    sell_spmv_shard_cost,
)
from repro.analysis.formatsel import (
    CANDIDATE_FORMATS,
    hyb_ell_width,
    sell_layout,
    tile_boundaries,
)
from repro.harness.format_bench import SKEW_M, SKEW_N, SKEW_SEED, bench_spmv
from repro.harness.skew import power_law_csr, power_law_row_lengths
from repro.legion.runtime import Runtime, RuntimeConfig, runtime_scope
from repro.machine import ProcessorKind, laptop, summit

REPO = Path(__file__).resolve().parents[2]
DEMO = str(REPO / "examples" / "format_advisor_demo.py")


def skew_lengths(n=512, seed=5):
    return power_law_row_lengths(n, seed=seed)


# ----------------------------------------------------------------------
# SELL-C-sigma layout invariants
# ----------------------------------------------------------------------
class TestSellLayout:
    def test_perm_is_per_tile_permutation(self):
        rl = skew_lengths()
        bounds = tile_boundaries(len(rl), 3)
        layout = sell_layout(rl, bounds, c=8, sigma=64)
        for lo, hi in zip(bounds, bounds[1:]):
            # Each tile permutes onto itself: sigma windows never
            # cross the runtime's row-tile boundaries.
            assert sorted(layout.perm[lo:hi]) == list(range(lo, hi))
        np.testing.assert_array_equal(layout.rowlen, rl[layout.perm])

    def test_total_matches_slice_extents(self):
        rl = skew_lengths()
        layout = sell_layout(rl, tile_boundaries(len(rl), 2), c=16, sigma=256)
        extents = layout.slice_pos[:, 1] - layout.slice_pos[:, 0]
        assert layout.total == int(extents.sum())
        assert layout.total >= int(rl.sum())
        lo, hi = layout.tile_ranges[-1]
        assert hi == layout.total

    def test_sigma_sorts_within_window(self):
        rl = np.array([1, 9, 2, 8, 3, 7, 4, 6], dtype=np.int64)
        layout = sell_layout(rl, [0, 8], c=4, sigma=8)
        # One full-tile window: slot lengths are non-increasing.
        assert list(layout.rowlen) == sorted(rl, reverse=True)

    def test_degenerate_sizes(self):
        empty = sell_layout([], [0], c=4, sigma=4)
        assert empty.total == 0 and empty.nslices == 0
        single = sell_layout([3], [0, 1], c=16, sigma=16)
        assert single.total == 3
        with pytest.raises(ValueError):
            sell_layout([1], [0, 1], c=0, sigma=4)


# ----------------------------------------------------------------------
# Profiles
# ----------------------------------------------------------------------
class TestProfile:
    def test_fields(self):
        rl = [1, 1, 1, 5]
        p = profile_matrix(rl, cols=8, itemsize=8, num_procs=2)
        assert (p.rows, p.cols, p.nnz) == (4, 8, 8)
        assert p.row_max == 5 and p.ell_width == 5
        assert p.ell_padded == 20
        assert p.ell_padding_ratio == pytest.approx(12 / 20)
        assert p.hyb_spill == max(0, 5 - p.hyb_width)
        assert p.sell_padded >= p.nnz

    def test_hyb_width_guards_empty(self):
        assert hyb_ell_width(np.array([], dtype=np.int64)) == 1
        assert hyb_ell_width(np.zeros(4, dtype=np.int64)) == 1
        assert hyb_ell_width(np.array([2, 2, 2, 40]), 0.5) == 2

    def test_smaller_sigma_wastes_more(self):
        """Narrow sort windows strand heavy rows in their own slices."""
        rl = power_law_row_lengths(8192, seed=SKEW_SEED)
        wide = profile_matrix(rl, 4096, 8, num_procs=2, sigma=4096)
        narrow = profile_matrix(rl, 4096, 8, num_procs=2, sigma=32)
        assert narrow.sell_padded > wide.sell_padded
        assert narrow.sell_imbalance > wide.sell_imbalance


# ----------------------------------------------------------------------
# Cost-model monotonicity (satellite: padding up => cost up)
# ----------------------------------------------------------------------
class TestCostMonotonicity:
    def test_ell_padding_increases_cost(self):
        base_f, base_b = ell_spmv_shard_cost(100, 500, padded=600, isz=8)
        more_f, more_b = ell_spmv_shard_cost(100, 500, padded=1200, isz=8)
        assert more_f > base_f and more_b > base_b

    def test_sell_imbalance_increases_cost(self):
        base = sell_spmv_shard_cost(100, 500, padded=520, slices=7, isz=8)
        worse = sell_spmv_shard_cost(100, 500, padded=900, slices=7, isz=8)
        assert worse[0] > base[0] and worse[1] > base[1]
        # More slices means more slice metadata traffic, flops equal.
        frag = sell_spmv_shard_cost(100, 500, padded=520, slices=25, isz=8)
        assert frag[1] > base[1] and frag[0] == base[0]

    def test_hyb_spill_increases_cost(self):
        base = hyb_spmv_shard_cost(100, 500, ell_padded=400, spill=100, isz=8)
        worse = hyb_spmv_shard_cost(100, 500, ell_padded=400, spill=300, isz=8)
        assert worse[0] > base[0] and worse[1] > base[1]

    def test_perfect_ell_beats_csr_bytes(self):
        """With zero padding, ELL's 32-bit local indices undercut
        global CSR's 64-bit coordinates plus the reshape penalty."""
        rows, nnz = 1000, 8000
        _, csr_b = csr_spmv_shard_cost(rows, nnz, isz=8, reshape_penalty=True)
        _, ell_b = ell_spmv_shard_cost(rows, nnz, padded=nnz, isz=8)
        assert ell_b < csr_b

    def test_selector_sees_padding(self):
        """Same nnz, one heavy row: modeled ELL time strictly rises."""
        scope = laptop().scope(ProcessorKind.GPU, 2)
        config = RuntimeConfig.legate(data_scale=1e4)
        uniform = profile_matrix([4] * 64, 64, 8, num_procs=2)
        skewed = profile_matrix([1] * 63 + [193], 64, 8, num_procs=2)
        assert uniform.nnz == skewed.nnz
        t_uniform = select_format(uniform, scope, config).candidate("ell")
        t_skewed = select_format(skewed, scope, config).candidate("ell")
        assert t_skewed.op_seconds > t_uniform.op_seconds


# ----------------------------------------------------------------------
# Selection
# ----------------------------------------------------------------------
class TestSelectFormat:
    def setup_method(self):
        self.scope = summit(nodes=1).scope(ProcessorKind.GPU, 2)
        self.config = RuntimeConfig.legate()
        rl = np.diff(power_law_csr(SKEW_N, SKEW_M, seed=SKEW_SEED).indptr)
        self.profile = profile_matrix(rl, SKEW_M, 8, num_procs=2)

    def test_skew_matrix_recommends_non_csr(self):
        decision = select_format(self.profile, self.scope, self.config)
        assert decision.best.fmt != "csr"
        assert decision.best.bitwise_safe
        assert decision.best.op_seconds < decision.csr_seconds
        assert math.isfinite(decision.best.break_even_ops)
        assert decision.best.break_even_ops > 0

    def test_deterministic(self):
        one = select_format(self.profile, self.scope, self.config)
        two = select_format(self.profile, self.scope, self.config)
        assert one.best.fmt == two.best.fmt
        assert [c.fmt for c in one.candidates] == [
            c.fmt for c in two.candidates
        ]
        assert one.best.op_seconds == two.best.op_seconds

    def test_coo_is_never_chosen(self):
        """COO's scatter-add reorders accumulation, so it stays
        advice-only regardless of its modeled time."""
        assert CANDIDATE_FORMATS["coo"] is False
        decision = select_format(self.profile, self.scope, self.config)
        coo = decision.candidate("coo")
        assert coo is not None and not coo.bitwise_safe
        assert decision.best.fmt != "coo"

    def test_csr_break_even_zero(self):
        decision = select_format(self.profile, self.scope, self.config)
        csr = decision.candidate("csr")
        assert csr.break_even_ops == 0.0
        assert csr.convert_seconds == 0.0


# ----------------------------------------------------------------------
# Predicted vs runtime agreement
# ----------------------------------------------------------------------
class TestAgreement:
    def test_profiler_matches_csr_candidate_exactly(self):
        """One SpMV's profiler kernel_seconds delta equals the csr
        candidate's summed shard seconds — the selector and the runtime
        share one cost model, to the ulp."""
        mat = power_law_csr(512, 256, seed=5)
        scope = laptop().scope(ProcessorKind.GPU, 2)
        config = RuntimeConfig.legate()
        rt = Runtime(scope, config)
        with runtime_scope(rt):
            import repro.numeric as rnp
            import repro.sparse as sp

            A = sp.csr_matrix(mat)
            x = rnp.ones(256)
            A @ x  # warm-up: staging outside the measured window
            rt.barrier()
            snap = rt.profiler.snapshot()
            A @ x
            rt.barrier()
            delta = rt.profiler.since(snap)
        profile = profile_matrix(np.diff(mat.indptr), 256, 8, num_procs=2)
        decision = select_format(profile, scope, config)
        csr = decision.candidate("csr")
        assert delta.kernel_seconds == pytest.approx(
            csr.total_seconds, rel=1e-12
        )

    def test_advisor_pass_matches_runtime_conversion(self):
        """The static plan-walk and RuntimeConfig.autoformat pick the
        same format for the same operand."""

        def workload():
            import repro.numeric as rnp
            import repro.sparse as sp

            A = sp.csr_matrix(power_law_csr(SKEW_N, SKEW_M, seed=SKEW_SEED))
            x = rnp.ones(SKEW_M)
            y = None
            for _ in range(3):
                y = A @ x
            return y

        plan = trace(workload, machine=summit(nodes=1), procs=2)
        advice, _lints = advise_formats(plan, plan.scope, plan.config)
        assert len(advice) == 1
        entry = advice[0]
        assert entry.current_fmt == "csr"
        assert entry.ops_observed == 3
        assert entry.recommended_fmt != "csr"

        run = bench_spmv(procs=2, iters=3, autoformat=True)
        assert len(run["conversions"]) == 1
        conv = run["conversions"][0]
        assert conv["dst_fmt"] == entry.recommended_fmt
        assert conv["rows"] == entry.rows
        assert conv["nnz"] == entry.nnz

    def test_unamortized_escalates_under_autoformat(self):
        def workload():
            import repro.numeric as rnp
            import repro.sparse as sp

            A = sp.csr_matrix(power_law_csr(SKEW_N, SKEW_M, seed=SKEW_SEED))
            return A @ rnp.ones(SKEW_M)

        plan = trace(workload, machine=summit(nodes=1), procs=2)
        _, soft = advise_formats(plan, plan.scope, plan.config)
        _, hard = advise_formats(
            plan, plan.scope, plan.config, autoformat_on=True
        )
        rule = "format-convert-unamortized"
        assert ("warning", rule) in [(s, r) for s, r, _ in soft]
        assert ("error", rule) in [(s, r) for s, r, _ in hard]


# ----------------------------------------------------------------------
# Advisor integration + CLI exit codes
# ----------------------------------------------------------------------
class TestAdvisorIntegration:
    def test_analyze_default_skips_format_pass(self):
        def workload():
            import repro.numeric as rnp
            import repro.sparse as sp

            A = sp.csr_matrix(power_law_csr(256, 128, seed=1))
            return A @ rnp.ones(128)

        plan = trace(workload, machine=laptop(), procs=2)
        plain = analyze(plan)
        assert plain.format_advice == []
        on = analyze(plan, options=AdvisorConfig(autoformat=True))
        assert len(on.format_advice) == 1
        assert "format_advice" in on.to_dict()

    def test_cli_amortized_exits_zero(self, capsys):
        from repro.analysis.cli import main

        code = main(["advise", DEMO, "--autoformat"])
        out = capsys.readouterr().out
        assert code == 0
        assert "<- recommended" in out
        assert "format-skew" in out

    def test_cli_unamortized_exits_one(self, capsys):
        """Regression: error-severity lints gate the exit code."""
        from repro.analysis.cli import main

        code = main(
            ["advise", DEMO, "--autoformat", "--", "--iters", "2"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "format-convert-unamortized" in out

    def test_cli_json_carries_format_advice(self, capsys):
        import json

        from repro.analysis.cli import main

        code = main(["advise", DEMO, "--autoformat", "--json"])
        out = capsys.readouterr().out
        assert code == 0
        payload = json.loads(out[out.index("{"):])
        advice = payload["format_advice"]
        assert len(advice) == 1
        assert advice[0]["recommended_format"] != "csr"
        assert advice[0]["bitwise_safe"] is True
