"""Advisor lints for kernel-merge verdicts, including the CLI surface."""

import json
from pathlib import Path

import repro.sparse as sp
from repro.analysis import advise
from repro.machine import laptop

REPO = Path(__file__).resolve().parents[2]


def _findings(advice, rule):
    return [f for f in advice.findings if f.rule == rule]


def test_merge_applied_note_reports_modeled_savings():
    def workload():
        import repro.numeric as rnp

        x = rnp.ones(512)
        t = x * 2.0
        return t + x

    advice = advise(workload, machine=laptop(), procs=2)
    applied = _findings(advice, "kernel-merge-applied")
    assert applied
    assert all(f.severity == "note" for f in applied)
    assert any("modeled compute saved" in f.message for f in applied)
    assert any(v == "merged" for _, _, v in advice.fusion_groups)


def test_merge_blocked_warning_names_reason():
    def workload():
        import repro.numeric as rnp

        x = rnp.ones(512)
        y = x * 2.0
        z = rnp.clip(y, -1.0, 1.0)  # opaque body IR
        return z + y

    advice = advise(workload, machine=laptop(), procs=2)
    blocked = _findings(advice, "kernel-merge-blocked")
    assert blocked
    assert all(f.severity == "warning" for f in blocked)
    assert any("[opaque-kernel]" in f.message for f in blocked)
    assert any(
        v == "replay:opaque-kernel" for _, _, v in advice.fusion_groups
    )


def test_no_merge_lints_when_kernel_fusion_off():
    from repro.legion import RuntimeConfig

    def workload():
        import repro.numeric as rnp

        x = rnp.ones(512)
        t = x * 2.0
        return t + x

    advice = advise(
        workload,
        machine=laptop(),
        procs=2,
        config=RuntimeConfig.legate(kernel_fusion=False),
    )
    assert not _findings(advice, "kernel-merge-applied")
    assert not _findings(advice, "kernel-merge-blocked")
    fused = [v for names, _, v in advice.fusion_groups if len(names) > 1]
    assert fused and all(v == "replay:disabled" for v in fused)


def test_cli_json_carries_merge_findings_and_verdicts(capsys):
    from repro.analysis.cli import main

    code = main(
        ["advise", str(REPO / "examples" / "advisor_demo.py"), "--json",
         "--", "--maxiter", "2"]
    )
    out = capsys.readouterr().out
    assert code == 0
    payload = json.loads(out[out.index("{"):])
    rules = {f["rule"] for f in payload["findings"]}
    assert "kernel-merge-applied" in rules
    groups = payload["fusion_groups"]
    assert groups and all("verdict" in g for g in groups)
    assert any(g["verdict"] == "merged" for g in groups)


def test_cli_text_mentions_merge_verdicts(capsys):
    from repro.analysis.cli import main

    code = main(
        ["advise", str(REPO / "examples" / "advisor_demo.py"),
         "--", "--maxiter", "2"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "kernel-merge-applied" in out
    assert "merge into a single loop nest" in out


def test_cli_blocked_warning_surfaces_reason(tmp_path, capsys):
    """Warnings don't flip the exit code (errors do), but the blocked
    verdict and its machine-readable reason must reach the report."""
    from repro.analysis.cli import main

    script = tmp_path / "blocked.py"
    script.write_text(
        "import repro.numeric as rnp\n"
        "x = rnp.ones(512)\n"
        "y = x * 2.0\n"
        "z = rnp.clip(y, -1.0, 1.0)\n"
        "w = z + y\n"
    )
    code = main(["advise", str(script), "--json"])
    out = capsys.readouterr().out
    assert code == 0
    payload = json.loads(out[out.index("{"):])
    blocked = [
        f for f in payload["findings"]
        if f["rule"] == "kernel-merge-blocked"
    ]
    assert blocked and all(f["severity"] == "warning" for f in blocked)
    assert any("[opaque-kernel]" in f["message"] for f in blocked)
    assert any(
        g["verdict"] == "replay:opaque-kernel"
        for g in payload["fusion_groups"]
    )
