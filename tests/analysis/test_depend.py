"""Unit tests for the kernel-fusion legality analyzer.

Each replay-only reason in ``repro.analysis.depend.REASONS`` is driven
by a hand-built window that actually produces it, and the merge-safe
path is checked for its def-use facts (WAR/WAW allowed, RAW only
through elided temporaries) and its nest-plan lowering.
"""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.analysis import depend
from repro.distal.ir import IndexVar, Tensor
from repro.legion import Pointwise, Privilege, Requirement, fusion


def region(uid, name=""):
    return SimpleNamespace(uid=uid, name=name)


def acc(uid, kind="tile", priv=Privilege.READ, boundaries=(0, 4, 8), name=""):
    return fusion.Access(
        region(uid), kind, boundaries if kind == "tile" else None, priv, name
    )


def summ(name, *accesses, colors=2, fusible=True, pointwise=None):
    return fusion.LaunchSummary(name, colors, fusible, tuple(accesses), pointwise)


def pw_fill():
    return Pointwise(("fill",), expr=(("scalar", "value"),), out="out")


def pw_binary(op="multiply", a_load=True, b_load=False):
    expr = (
        ("load" if a_load else "scalar", "a"),
        ("load" if b_load else "scalar", "b"),
        ("bin", op),
    )
    return Pointwise((op,), expr=expr, out="out")


def classify(window, plans=None):
    ids = fusion.local_ids(window)
    plans = plans if plans is not None else fusion.plan_window(window)
    return [depend.classify(window, ids, p) for p in plans], plans


class TestMergeSafe:
    def test_fill_then_scale_merges(self):
        window = [
            summ("fill", acc(1, priv=Privilege.WRITE_DISCARD, name="out"),
                 pointwise=pw_fill()),
            summ("multiply",
                 acc(2, priv=Privilege.WRITE_DISCARD, name="out"),
                 acc(1, name="a"),
                 pointwise=pw_binary()),
        ]
        (verdict,), (plan,) = classify(window)
        assert plan.fused
        assert verdict.merge_safe
        assert verdict.reason is None
        assert depend.verdict_label(plan, verdict, True) == "merged"
        assert depend.verdict_label(plan, verdict, False) == "replay:disabled"

    def test_raw_through_elided_temp_is_the_safe_case(self):
        # t = fill; y = t * s: t is produced and consumed in-group and
        # elided — the RAW edge flows through a nest value.
        window = [
            summ("fill", acc(5, priv=Privilege.WRITE_DISCARD, name="out"),
                 pointwise=pw_fill()),
            summ("multiply",
                 acc(6, priv=Privilege.WRITE_DISCARD, name="out"),
                 acc(5, name="a"),
                 pointwise=pw_binary()),
        ]
        (verdict,), (plan,) = classify(window)
        assert plan.elide  # the planner elided t
        assert verdict.merge_safe
        raw = [e for e in verdict.edges if e.kind == "raw"]
        assert raw and all(e.elided for e in raw)

    def test_war_and_waw_do_not_block(self):
        # y = x * s; then x is overwritten: WAR on x, issue order keeps
        # the nest bitwise-identical.
        window = [
            summ("multiply",
                 acc(2, priv=Privilege.WRITE_DISCARD, name="out"),
                 acc(1, name="a"),
                 pointwise=pw_binary()),
            summ("fill", acc(1, priv=Privilege.WRITE_DISCARD, name="out"),
                 pointwise=pw_fill()),
        ]
        (verdict,), _plans = classify(window)
        assert verdict.merge_safe
        kinds = {e.kind for e in verdict.edges}
        assert "war" in kinds
        assert "raw" not in kinds

    def test_single_launch_group_is_not_merged(self):
        window = [
            summ("fill", acc(1, priv=Privilege.WRITE_DISCARD, name="out"),
                 pointwise=pw_fill()),
        ]
        (verdict,), (plan,) = classify(window)
        assert not plan.fused
        assert not verdict.merge_safe
        assert verdict.reason is None  # nothing blocked; nothing to merge
        assert not verdict.blocked
        assert depend.verdict_label(plan, verdict, True) == "single"


class TestReplayOnlyReasons:
    def test_opaque_no_pointwise(self):
        window = [
            summ("a", acc(1, priv=Privilege.WRITE_DISCARD, name="out"),
                 pointwise=pw_fill()),
            summ("mystery", acc(2, priv=Privilege.WRITE_DISCARD, name="out"),
                 pointwise=None),
        ]
        (verdict,), (plan,) = classify(window)
        assert plan.fused
        assert verdict.reason == "opaque-kernel"
        assert depend.verdict_label(plan, verdict, True) == (
            "replay:opaque-kernel"
        )

    def test_opaque_no_body_ir(self):
        # clip/astype/where-style kernels mark ops but expose no expr.
        opaque = Pointwise(("clip",))
        window = [
            summ("fill", acc(1, priv=Privilege.WRITE_DISCARD, name="out"),
                 pointwise=pw_fill()),
            summ("clip", acc(2, priv=Privilege.WRITE_DISCARD, name="out"),
                 acc(1, name="a"), pointwise=opaque),
        ]
        (verdict,), _ = classify(window)
        assert verdict.reason == "opaque-kernel"
        assert "clip" in verdict.detail

    @pytest.mark.parametrize(
        "expr,out,problem",
        [
            (atuple, out, problem)
            for atuple, out, problem in [
                (((("load", "nope"),) ), "out", "unknown"),  # unknown load
                ((("load", "a"), ("bin", "multiply")), "out", "misplaced"),
                ((("load", "a"), ("un", "frobnicate")), "out", "unknown or misplaced"),
                ((("load", "a"), ("load", "a")), "out", "stack"),
                ((("load", "a"),), "a", "not a"),  # out is a read-only arg
            ]
        ],
    )
    def test_opaque_malformed_programs(self, expr, out, problem):
        bad = Pointwise(("multiply",), expr=tuple(expr), out=out)
        window = [
            summ("fill", acc(1, priv=Privilege.WRITE_DISCARD, name="out"),
                 pointwise=pw_fill()),
            summ("multiply", acc(2, priv=Privilege.WRITE_DISCARD, name="out"),
                 acc(1, name="a"), pointwise=bad),
        ]
        (verdict,), _ = classify(window)
        assert verdict.reason == "opaque-kernel"
        assert problem in verdict.detail

    def test_reduction_statement_replays(self):
        i, j = IndexVar("i"), IndexVar("j")
        y, A, x = Tensor("y", 1), Tensor("A", 2), Tensor("x", 1)
        stmt = y[i] << A[i, j] * x[j]
        assert depend.classify_statement(stmt) == "reduction-reorder"
        carrying = Pointwise(
            ("spmv",), expr=(("load", "a"), ("un", "copy")), out="out",
            statement=stmt,
        )
        window = [
            summ("fill", acc(1, priv=Privilege.WRITE_DISCARD, name="out"),
                 pointwise=pw_fill()),
            summ("spmv", acc(2, priv=Privilege.WRITE_DISCARD, name="out"),
                 acc(1, name="a"), pointwise=carrying),
        ]
        (verdict,), _ = classify(window)
        assert verdict.reason == "reduction-reorder"
        assert "y(i)=A(i,j)*x(j)" in verdict.detail

    def test_elementwise_statement_imposes_nothing(self):
        i = IndexVar("i")
        y, a, b = Tensor("y", 1), Tensor("a", 1), Tensor("b", 1)
        assert depend.classify_statement(y[i] << a[i] * b[i]) is None
        assert depend.classify_statement(None) is None

    def test_replicated_operand_replays(self):
        # Rep reads of never-written regions fuse at the task level but
        # cannot become a tile-shaped nest variable.
        window = [
            summ("multiply",
                 acc(1, priv=Privilege.WRITE_DISCARD, name="out"),
                 acc(9, kind="rep", name="a"),
                 pointwise=pw_binary()),
            summ("multiply",
                 acc(2, priv=Privilege.WRITE_DISCARD, name="out"),
                 acc(9, kind="rep", name="a"),
                 pointwise=pw_binary()),
        ]
        (verdict,), (plan,) = classify(window)
        assert plan.fused
        assert verdict.reason == "replicated-operand"

    def test_iteration_space_mismatch_on_hand_built_group(self):
        # The window planner never groups these; classify() is exposed
        # directly, so a hand-built plan must still be rejected.
        window = [
            summ("a", acc(1, priv=Privilege.WRITE_DISCARD, name="out"),
                 pointwise=pw_fill()),
            summ("b",
                 acc(2, priv=Privilege.WRITE_DISCARD, boundaries=(0, 3, 8),
                     name="out"),
                 pointwise=pw_fill()),
        ]
        ids = fusion.local_ids(window)
        plan = fusion.GroupPlan(indices=(0, 1), elide=frozenset())
        verdict = depend.classify(window, ids, plan)
        assert verdict.reason == "iteration-space-mismatch"

    def test_raw_through_unelided_region_replays(self):
        # x += t; y = x * 2: x pre-exists the group (first access is a
        # read-modify-write), so the RAW into the second statement runs
        # through a region that stays mapped.
        window = [
            summ("add",
                 acc(2, priv=Privilege.WRITE, name="out"),
                 acc(2, name="a"),
                 acc(1, name="b"),
                 pointwise=Pointwise(
                     ("add",),
                     expr=(("load", "a"), ("load", "b"), ("bin", "add")),
                     out="out",
                 )),
            summ("multiply",
                 acc(3, priv=Privilege.WRITE_DISCARD, name="out"),
                 acc(2, name="a"),
                 pointwise=pw_binary()),
        ]
        (verdict,), (plan,) = classify(window)
        assert plan.fused
        assert verdict.reason == "raw-through-unelided-region"
        assert "RAW" in verdict.detail

    def test_every_reason_is_documented(self):
        produced = {
            "disabled", "opaque-kernel", "reduction-reorder",
            "replicated-operand", "iteration-space-mismatch",
            "raw-through-unelided-region",
        }
        assert produced == set(depend.REASONS)


class TestNestPlan:
    def _task(self, name, pointwise, *reqs):
        return SimpleNamespace(
            name=name, pointwise=pointwise, requirements=list(reqs)
        )

    def _req(self, name, uid, priv, dtype=np.float64):
        reg = SimpleNamespace(
            uid=uid, name="", data=np.zeros(4, dtype=dtype)
        )
        return Requirement(name, reg, None, priv)

    def test_lowering_resolves_vars_and_dedups_traffic(self):
        fill = self._task(
            "fill", pw_fill(), self._req("out", 5, Privilege.WRITE_DISCARD)
        )
        mul = self._task(
            "multiply", pw_binary(),
            self._req("out", 6, Privilege.WRITE_DISCARD),
            self._req("a", 5, Privilege.READ),
        )
        add = self._task(
            "add", pw_binary("add", b_load=True),
            self._req("out", 7, Privilege.WRITE_DISCARD),
            self._req("a", 6, Privilege.READ),
            self._req("b", 5, Privilege.READ),
        )
        plan = depend.build_nest_plan(
            [fill, mul, add],
            elide_uids=frozenset({5, 6}),
            dead_uids=frozenset({5}),
        )
        s0, s1, s2 = plan.steps
        # Dead elided temp: value only, no store; live elided temp and
        # the real output both store.
        assert (s0.store, s1.store, s2.store) == (False, True, True)
        assert plan.temps_eliminated == 1
        # In-group RAW loads resolve to producing steps, not views.
        assert ("var", 0) in s1.program
        assert ("var", 1) in s2.program and ("var", 0) in s2.program
        # No external region is read at all here; writes are deduped
        # and exclude the never-materialized temp.
        assert plan.reads == ()
        assert plan.charged_writes == ("1.out", "2.out")
        # Flop weights match the sub cost models: fill 0, ufuncs 1.
        assert [s.weight for s in plan.steps] == [0.0, 1.0, 1.0]
        # Mangled names match fuse()'s "<i>.<name>" scheme.
        assert (s0.out, s1.out, s2.out) == ("0.out", "1.out", "2.out")

    def test_external_reads_dedup_by_region(self):
        t1 = self._task(
            "multiply", pw_binary(),
            self._req("out", 2, Privilege.WRITE_DISCARD),
            self._req("a", 1, Privilege.READ),
        )
        t2 = self._task(
            "multiply", pw_binary(),
            self._req("out", 3, Privilege.WRITE_DISCARD),
            self._req("a", 1, Privilege.READ),
        )
        plan = depend.build_nest_plan([t1, t2], elide_uids=frozenset())
        assert plan.reads == ("0.a",)  # region 1 charged once
        assert plan.charged_writes == ("0.out", "1.out")

    def test_opaque_sub_launch_is_rejected(self):
        bad = self._task(
            "mystery", None, self._req("out", 1, Privilege.WRITE_DISCARD)
        )
        with pytest.raises(ValueError, match="no body IR"):
            depend.build_nest_plan([bad], elide_uids=frozenset())
