"""The offline checker catches seeded races, stale reads and bad copies."""

import numpy as np
import pytest

from repro.analysis import ValidationError, check_log
from repro.analysis.events import EventLog, ReqAccess
from repro.constraints import AutoTask, Store
from repro.geometry import Rect
from repro.legion import (
    Privilege,
    Requirement,
    Runtime,
    RuntimeConfig,
    TaskLaunch,
    Tiling,
)
from repro.legion.partition import ExplicitPartition
from repro.machine import ProcessorKind, laptop


def validated_runtime(gpus=2):
    cfg = RuntimeConfig.legate(validate=True)
    return Runtime(laptop().scope(ProcessorKind.GPU, gpus), cfg)


class TestIntraLaunchRace:
    def test_overlapping_write_shards_flagged(self):
        """Seeded violation: two shards WRITE overlapping rects."""
        rt = validated_runtime()
        region = rt.create_region((100,), np.float64, name="out")
        # Aliased explicit partition: both colors own [40, 60).
        bad = ExplicitPartition(
            region, [Rect((0,), (60,)), Rect((40,), (100,))]
        )

        def kernel(ctx):
            ctx.view("out")[...] = ctx.color

        rt.launch(
            TaskLaunch(
                "aliased-writer",
                [Requirement("out", region, bad, Privilege.WRITE_DISCARD)],
                kernel,
            )
        )
        violations = check_log(rt.event_log)
        rt.event_log.clear()
        assert any(v.kind == "intra-launch-race" for v in violations)
        msg = next(v for v in violations if v.kind == "intra-launch-race")
        assert "aliased-writer" in msg.message
        assert msg.region == "out"

    def test_reduce_shards_may_alias(self):
        """Commutative folds on the same rect are not a race."""
        log = EventLog()
        launch = log.record_task("accumulate", 2)
        rect = Rect((0,), (10,))
        for color in range(2):
            log.record_shard(
                launch, "accumulate", color, color, color,
                [ReqAccess("acc", 1, "acc", rect, "reduce")],
                0.0, 1.0,
            )
        assert check_log(log) == []


class TestStaleRead:
    def test_hand_built_stale_read(self):
        """A read in a memory no copy ever filled is flagged."""
        log = EventLog()
        rect = Rect((0,), (8,))
        w = log.record_task("writer", 1)
        log.record_shard(
            w, "writer", 0, 0, 0,
            [ReqAccess("v", 1, "v", rect, "write-discard")],
            0.0, 1.0,
        )
        r = log.record_task("reader", 1)
        # Reads in memory 1, but the data was written in memory 0 and
        # never copied over.
        log.record_shard(
            r, "reader", 0, 1, 1,
            [ReqAccess("v", 1, "v", rect, "read")],
            1.0, 2.0,
        )
        violations = check_log(log)
        assert [v.kind for v in violations] == ["stale-read"]

    def test_copy_justifies_the_read(self):
        log = EventLog()
        rect = Rect((0,), (8,))
        w = log.record_task("writer", 1)
        log.record_shard(
            w, "writer", 0, 0, 0,
            [ReqAccess("v", 1, "v", rect, "write-discard")],
            0.0, 1.0,
        )
        log.record_copy(1, "v", rect, 0, 1, 64)
        r = log.record_task("reader", 1)
        log.record_shard(
            r, "reader", 0, 1, 1,
            [ReqAccess("v", 1, "v", rect, "read")],
            1.0, 2.0,
        )
        assert check_log(log) == []

    def test_copy_from_invalid_source(self):
        log = EventLog()
        rect = Rect((0,), (8,))
        w = log.record_task("writer", 1)
        log.record_shard(
            w, "writer", 0, 0, 0,
            [ReqAccess("v", 1, "v", rect, "write-discard")],
            0.0, 1.0,
        )
        # Copies out of memory 2, which never held the written data.
        log.record_copy(1, "v", rect, 2, 1, 64)
        violations = check_log(log)
        assert any(v.kind == "copy-from-invalid" for v in violations)


class TestCleanRuns:
    def test_tiled_pipeline_is_clean(self):
        """Disjoint writes then tiled reads: the runtime's own copies
        justify every access."""
        rt = validated_runtime()
        region = rt.create_region((64,), np.float64, name="v")
        tiles = Tiling.create(region, 2)

        def writer(ctx):
            ctx.view("v")[...] = ctx.color + 1.0

        def reader(ctx):
            ctx.view("v").sum()

        rt.launch(
            TaskLaunch(
                "w", [Requirement("v", region, tiles, Privilege.WRITE_DISCARD)],
                writer,
            )
        )
        rt.launch(
            TaskLaunch(
                "r", [Requirement("v", region, tiles, Privilege.READ)], reader
            )
        )
        violations = check_log(rt.event_log)
        rt.event_log.clear()
        assert violations == []
        assert np.all(region.data[:32] == 1.0)
        assert np.all(region.data[32:] == 2.0)


class TestAutoTaskDisjointness:
    def test_aliased_write_partition_raises(self):
        """The online pre-check names the launch before it runs."""
        rt = validated_runtime()
        store = Store.create((100,), np.float64, name="out", runtime=rt)
        task = AutoTask(rt, "bad-writer", lambda ctx: None)
        task.add_output("out", store)
        task.add_explicit_partition(
            store,
            ExplicitPartition(
                store.region, [Rect((0,), (60,)), Rect((40,), (100,))]
            ),
        )
        with pytest.raises(ValidationError, match="bad-writer"):
            task.execute()
        rt.event_log.clear()

    def test_disjoint_write_partition_is_fine(self):
        rt = validated_runtime()
        store = Store.create((100,), np.float64, name="out", runtime=rt)

        def kernel(ctx):
            ctx.view("out")[...] = 1.0

        task = AutoTask(rt, "good-writer", kernel)
        task.add_output("out", store)
        task.execute()
        violations = check_log(rt.event_log)
        rt.event_log.clear()
        assert violations == []
