"""Advisor-vs-runtime fusion agreement (the ISSUE's acceptance check).

Run workloads in capture-alongside mode with fusion *enabled*: the plan
records every op pre-fusion while the runtime's deferred window fuses
for real, logging each flushed group into ``Runtime.fusion_log``.  The
advisor then replays the plan through the same window simulation
(:func:`repro.legion.fusion.plan_window` over the same sync points) and
its predicted groups must agree *exactly* — group by group, name by
name, elision count by elision count.
"""

import numpy as np

import repro.numeric as rnp
import repro.sparse as sp
from repro.analysis.advisor import analyze
from repro.analysis.plan import PlanTrace
from repro.apps.poisson import poisson2d_scipy
from repro.legion import Runtime, RuntimeConfig
from repro.legion.runtime import runtime_scope
from repro.machine import ProcessorKind, laptop


def capture_fused(fn, procs=2):
    """Run ``fn`` with validation AND fusion on; return (plan, runtime)."""
    machine = laptop()
    runtime = Runtime(
        machine.scope(ProcessorKind.GPU, procs),
        RuntimeConfig.legate(validate=True, fusion=True),
    )
    plan = PlanTrace(name=getattr(fn, "__name__", "capture"), deferred=False)
    plan.bind(runtime)
    runtime.plan_trace = plan
    try:
        with runtime_scope(runtime):
            fn()
    finally:
        runtime.plan_trace = None
    return plan, runtime


def assert_fusion_agreement(plan, runtime):
    advice = analyze(plan)
    assert advice.fusion_groups == runtime.fusion_log
    return advice


def test_elementwise_chain_agreement():
    def workload():
        x = rnp.array(np.linspace(0.0, 1.0, 128))
        b = rnp.ones(128)
        for _ in range(3):
            x = (x * 0.5 + b) - x * x

    plan, runtime = capture_fused(workload)
    advice = assert_fusion_agreement(plan, runtime)
    # The chain actually fused and elided temporaries, on both sides.
    assert any(len(names) > 1 for names, _, _ in advice.fusion_groups)
    assert any(elided > 0 for _, elided, _ in advice.fusion_groups)
    # The chain is pure known-op pointwise code: at least one group
    # must carry a merge-safe verdict on both sides.
    assert any(v == "merged" for _, _, v in advice.fusion_groups)
    assert runtime.profiler.fused_tasks > 0


def test_fig9_cg_agreement():
    def workload():
        A = sp.csr_matrix(poisson2d_scipy(14))
        b = rnp.ones(A.shape[0])
        sp.linalg.cg(A, b, rtol=0.0, maxiter=4)

    plan, runtime = capture_fused(workload)
    advice = assert_fusion_agreement(plan, runtime)
    assert any(len(names) > 1 for names, _, _ in advice.fusion_groups)
    assert any(v == "merged" for _, _, v in advice.fusion_groups)
    # SpMV (image-constrained) never enters the window on either side.
    for names, _, _ in advice.fusion_groups:
        assert not any("A(i,j)" in n for n in names)


def test_fig10_gmg_agreement():
    def workload():
        from repro.apps.multigrid import TwoLevelGMG

        k = 13
        A = sp.csr_matrix(poisson2d_scipy(k))
        b = rnp.ones(k * k)
        gmg = TwoLevelGMG(A, k, coarse_rtol=0.0, coarse_maxiter=4)
        sp.linalg.cg(A, b, rtol=0.0, maxiter=2, M=gmg.as_preconditioner())

    plan, runtime = capture_fused(workload)
    assert_fusion_agreement(plan, runtime)
    assert runtime.profiler.fused_tasks > 0


def test_fusion_off_predicts_no_groups():
    def workload():
        x = rnp.ones(64)
        x = x * 2.0 + 1.0

    machine = laptop()
    runtime = Runtime(
        machine.scope(ProcessorKind.GPU, 2),
        RuntimeConfig.legate(validate=True, fusion=False),
    )
    plan = PlanTrace(name="off", deferred=False)
    plan.bind(runtime)
    runtime.plan_trace = plan
    try:
        with runtime_scope(runtime):
            workload()
    finally:
        runtime.plan_trace = None
    advice = analyze(plan)
    assert advice.fusion_groups == []
    assert runtime.fusion_log == []
