"""Privilege sanitizer: READ is unwriteable, WRITE_DISCARD is poisoned."""

import numpy as np
import pytest

from repro.analysis.sanitizer import poison, poison_value, readonly_view
from repro.geometry import Rect
from repro.legion import (
    Privilege,
    Requirement,
    Runtime,
    RuntimeConfig,
    TaskLaunch,
    Tiling,
)
from repro.machine import ProcessorKind, laptop


def _runtime(validate):
    cfg = RuntimeConfig.legate(validate=validate)
    return Runtime(laptop().scope(ProcessorKind.GPU, 2), cfg)


class TestUnits:
    def test_readonly_view_shares_buffer(self):
        base = np.zeros(4)
        view = readonly_view(base)
        with pytest.raises(ValueError):
            view[0] = 1.0
        base[0] = 2.0
        assert view[0] == 2.0  # same buffer, still readable

    def test_poison_values(self):
        assert np.isnan(poison_value(np.dtype(np.float64)))
        assert np.isnan(poison_value(np.dtype(np.complex128)).real)
        assert poison_value(np.dtype(np.int64)) is None

    def test_poison_rect_only(self):
        arr = np.zeros(10)
        assert poison(arr, Rect((2,), (5,)))
        assert np.all(np.isnan(arr[2:5]))
        assert np.all(arr[:2] == 0) and np.all(arr[5:] == 0)

    def test_poison_skips_ints(self):
        arr = np.zeros(10, np.int64)
        assert not poison(arr, Rect((0,), (10,)))
        assert np.all(arr == 0)


class TestRuntimeSanitization:
    def test_kernel_writing_read_arg_raises(self):
        """Seeded violation: a kernel writes its READ argument."""
        rt = _runtime(validate=True)
        region = rt.create_region((32,), np.float64, data=np.ones(32))
        tiles = Tiling.create(region, 2)

        def rogue(ctx):
            ctx.view("inp")[...] = 0.0  # privilege violation

        with pytest.raises(ValueError, match="read-only"):
            rt.launch(
                TaskLaunch(
                    "rogue",
                    [Requirement("inp", region, tiles, Privilege.READ)],
                    rogue,
                )
            )
        rt.event_log.clear()
        assert np.all(region.data == 1.0)  # backing data untouched

    def test_discard_rects_arrive_poisoned(self):
        rt = _runtime(validate=True)
        region = rt.create_region((32,), np.float64, data=np.ones(32))
        tiles = Tiling.create(region, 2)
        saw_nan = []

        def kernel(ctx):
            view = ctx.view("out")
            saw_nan.append(bool(np.all(np.isnan(view))))
            view[...] = 3.0

        rt.launch(
            TaskLaunch(
                "builder",
                [Requirement("out", region, tiles, Privilege.WRITE_DISCARD)],
                kernel,
            )
        )
        rt.event_log.clear()
        assert saw_nan == [True, True]
        assert np.all(region.data == 3.0)  # poison fully overwritten

    def test_integer_discard_not_poisoned(self):
        rt = _runtime(validate=True)
        region = rt.create_region((32,), np.int64, data=np.arange(32))
        tiles = Tiling.create(region, 2)
        seen = []

        def kernel(ctx):
            seen.append(ctx.view("out").copy())
            ctx.view("out")[...] = 0

        rt.launch(
            TaskLaunch(
                "int-builder",
                [Requirement("out", region, tiles, Privilege.WRITE_DISCARD)],
                kernel,
            )
        )
        rt.event_log.clear()
        assert np.array_equal(np.concatenate(seen), np.arange(32))

    def test_no_sanitizing_when_validation_off(self):
        """validate=False is the hot path: raw views, no poison, no log."""
        rt = _runtime(validate=False)
        region = rt.create_region((32,), np.float64, data=np.ones(32))
        tiles = Tiling.create(region, 2)

        def rogue(ctx):
            ctx.view("inp")[...] = 0.0  # tolerated (and uncaught)

        rt.launch(
            TaskLaunch(
                "rogue",
                [Requirement("inp", region, tiles, Privilege.READ)],
                rogue,
            )
        )
        assert rt.event_log is None
