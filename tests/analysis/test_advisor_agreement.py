"""Advisor-vs-runtime agreement harness (the ISSUE's acceptance check).

Run the fig8 SpMV and fig9 CG workloads in capture-alongside mode
(``REPRO_VALIDATE``-style ``validate=True``): every op is recorded into
the plan trace AND executed, so the same run leaves both a plan and a
ground-truth event log.  The advisor then replays the plan symbolically
and its predicted copy set must match the recorded one within the
declared tolerance (the predictor is deterministic, so the tolerance is
0 on copy multisets and 1% on total volume).
"""

from collections import Counter

import numpy as np
import pytest
import scipy.sparse as sps

import repro.sparse as sp
from repro.analysis.advisor import analyze
from repro.analysis.events import AllreduceEvent, CopyEvent, FoldEvent
from repro.analysis.plan import PlanTrace
from repro.apps.poisson import poisson2d_scipy
from repro.harness.experiments.fig8_spmv import banded_scipy
from repro.legion import Runtime, RuntimeConfig
from repro.legion.runtime import runtime_scope
from repro.machine import ProcessorKind, laptop

#: Declared agreement tolerance on total predicted copy volume.
VOLUME_RTOL = 0.01


def capture(fn, procs=2):
    """Run ``fn`` with validation on, recording plan + event log.

    Fusion stays off: the predictor replays launches one by one, so the
    ground-truth log must be launch-for-launch comparable.  The fusion
    agreement test (test_fusion_agreement.py) covers the fused window.
    """
    machine = laptop()
    runtime = Runtime(
        machine.scope(ProcessorKind.GPU, procs),
        RuntimeConfig.legate(validate=True, fusion=False),
    )
    plan = PlanTrace(name=getattr(fn, "__name__", "capture"), deferred=False)
    plan.bind(runtime)
    runtime.plan_trace = plan
    try:
        with runtime_scope(runtime):
            fn()
    finally:
        runtime.plan_trace = None
    return plan, runtime.event_log


def copy_key(ev):
    return (
        ev.region,
        tuple(ev.rect.lo),
        tuple(ev.rect.hi),
        ev.src_memory,
        ev.dst_memory,
        ev.nbytes,
        ev.why,
    )


def assert_agreement(plan, log):
    advice = analyze(plan)
    predicted = advice.predicted

    recorded_copies = Counter(
        copy_key(e) for e in log.events if isinstance(e, CopyEvent)
    )
    predicted_copies = Counter(
        copy_key(e) for e in predicted.events if isinstance(e, CopyEvent)
    )
    assert predicted_copies == recorded_copies

    recorded_folds = Counter(
        (e.region, tuple(e.rect.lo), tuple(e.rect.hi), e.memory)
        for e in log.events
        if isinstance(e, FoldEvent)
    )
    predicted_folds = Counter(
        (e.region, tuple(e.rect.lo), tuple(e.rect.hi), e.memory)
        for e in predicted.events
        if isinstance(e, FoldEvent)
    )
    assert predicted_folds == recorded_folds

    rec_bytes = sum(e.nbytes for e in log.events if isinstance(e, CopyEvent))
    pred_bytes = sum(
        e.nbytes for e in predicted.events if isinstance(e, CopyEvent)
    )
    assert pred_bytes == pytest.approx(rec_bytes, rel=VOLUME_RTOL)

    assert predicted.stats() == log.stats()

    rec_all = [
        (e.op, e.participants)
        for e in log.events
        if isinstance(e, AllreduceEvent)
    ]
    pred_all = [
        (e.op, e.participants)
        for e in predicted.events
        if isinstance(e, AllreduceEvent)
    ]
    assert pred_all == rec_all
    return advice


def test_fig8_spmv_agreement():
    def workload():
        A = sp.csr_matrix(banded_scipy(600))
        import repro.numeric as rnp

        v = rnp.ones(A.shape[1])
        for _ in range(4):
            y = A @ v
        return y

    plan, log = capture(workload)
    advice = assert_agreement(plan, log)
    assert advice.launches == len(plan.ops)
    assert any(e.why == "stage" for e in advice.predicted.events
               if isinstance(e, CopyEvent))


def test_fig9_cg_agreement():
    def workload():
        A = sp.csr_matrix(poisson2d_scipy(16))
        import repro.numeric as rnp

        b = rnp.ones(A.shape[0])
        x, info = sp.linalg.cg(A, b, rtol=0.0, maxiter=4)
        return x

    plan, log = capture(workload)
    advice = assert_agreement(plan, log)
    # CG's dot products and norms allreduce across the launch colors.
    assert any(
        isinstance(e, AllreduceEvent) for e in advice.predicted.events
    )


def test_reduce_fold_agreement():
    """REDUCE-privilege workloads (transpose products, column sums,
    CSC conversion) exercise the fold path."""

    def workload():
        A = sp.csr_matrix(banded_scipy(300, band=2))
        import repro.numeric as rnp

        x = rnp.ones(A.shape[0])
        yt = A.T @ x
        s0 = A.sum(axis=0)
        C = A.tocsc()
        y = C @ rnp.ones(C.shape[1])
        return yt, s0, y

    plan, log = capture(workload)
    advice = assert_agreement(plan, log)
    assert any(isinstance(e, FoldEvent) for e in advice.predicted.events)


def test_deferred_trace_matches_alongside_aggregates():
    """The deferred trace (kernels skipped) predicts the same launch
    and traffic aggregates as the capture-alongside run of the same
    program — region uids differ across runs, so compare aggregates."""
    from repro.analysis.advisor import advise

    def workload():
        A = sp.csr_matrix(banded_scipy(400))
        import repro.numeric as rnp

        v = rnp.ones(A.shape[1])
        for _ in range(3):
            v = A @ v
        return v

    plan, log = capture(workload)
    alongside = analyze(plan)
    deferred = advise(workload, machine=laptop(), procs=2)

    assert deferred.launches == alongside.launches
    assert deferred.predicted.stats() == alongside.predicted.stats()
    for cls in set(deferred.traffic) | set(alongside.traffic):
        assert cls in deferred.traffic and cls in alongside.traffic
        assert deferred.traffic[cls]["bytes"] == pytest.approx(
            alongside.traffic[cls]["bytes"], rel=VOLUME_RTOL
        )
