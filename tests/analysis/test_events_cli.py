"""Event-log serialization and the ``python -m repro.analysis`` CLI."""

import numpy as np

from repro.analysis.cli import main
from repro.analysis.events import EventLog, ReqAccess
from repro.geometry import Rect
from repro.legion import (
    Privilege,
    Requirement,
    Runtime,
    RuntimeConfig,
    TaskLaunch,
    Tiling,
)
from repro.machine import ProcessorKind, laptop


def _sample_log():
    log = EventLog(name="sample")
    rect = Rect((0,), (8,))
    w = log.record_task("writer", 2)
    log.record_shard(
        w, "writer", 0, 0, 0,
        [ReqAccess("v", 1, "v", Rect((0,), (4,)), "write-discard")],
        0.0, 1.0,
    )
    log.record_shard(
        w, "writer", 1, 1, 1,
        [
            ReqAccess(
                "v", 1, "v", Rect((4,), (8,)), "read",
                pieces=(Rect((4,), (6,)), Rect((7,), (8,))),
            )
        ],
        0.0, 1.0,
    )
    log.record_copy(1, "v", rect, 0, 1, 64)
    log.record_fold(w, "writer", 1, "v", rect, 0)
    log.record_allreduce("sum", 2)
    return log


class TestSerialization:
    def test_jsonl_roundtrip(self, tmp_path):
        log = _sample_log()
        path = str(tmp_path / "run.jsonl")
        log.save(path)
        loaded = EventLog.load(path)
        assert loaded.events == log.events
        assert loaded.stats() == log.stats()

    def test_exact_pieces_survive(self, tmp_path):
        log = _sample_log()
        path = str(tmp_path / "run.jsonl")
        log.save(path)
        shard = EventLog.load(path).events[2]
        assert shard.reqs[0].pieces == (Rect((4,), (6,)), Rect((7,), (8,)))
        assert shard.reqs[0].read_pieces == shard.reqs[0].pieces

    def test_runtime_log_saves(self, tmp_path):
        rt = Runtime(
            laptop().scope(ProcessorKind.GPU, 2),
            RuntimeConfig.legate(validate=True),
        )
        region = rt.create_region((16,), np.float64, data=np.ones(16))
        rt.launch(
            TaskLaunch(
                "r",
                [
                    Requirement(
                        "v", region, Tiling.create(region, 2), Privilege.READ
                    )
                ],
                lambda ctx: None,
            )
        )
        path = str(tmp_path / "run.jsonl")
        rt.event_log.save(path)
        rt.event_log.clear()
        loaded = EventLog.load(path)
        assert loaded.stats()["shard"] == 2


class TestCli:
    def test_clean_log_exits_zero(self, tmp_path, capsys):
        path = str(tmp_path / "clean.jsonl")
        log = EventLog()
        t = log.record_task("t", 1)
        log.record_shard(
            t, "t", 0, 0, 0,
            [ReqAccess("v", 1, "v", Rect((0,), (4,)), "write-discard")],
            0.0, 1.0,
        )
        log.save(path)
        assert main([path]) == 0
        assert "OK" in capsys.readouterr().out

    def test_violating_log_exits_one(self, tmp_path, capsys):
        path = str(tmp_path / "racy.jsonl")
        log = EventLog()
        t = log.record_task("t", 2)
        for color in range(2):
            log.record_shard(
                t, "t", color, color, color,
                [ReqAccess("v", 1, "v", Rect((0,), (4,)), "write-discard")],
                0.0, 1.0,
            )
        log.save(path)
        assert main([path]) == 1
        out = capsys.readouterr().out
        assert "intra-launch-race" in out and "FAILED" in out

    def test_max_caps_reported_violations(self, tmp_path, capsys):
        path = str(tmp_path / "racy.jsonl")
        log = EventLog()
        t = log.record_task("t", 4)
        for color in range(4):
            log.record_shard(
                t, "t", color, color, color,
                [ReqAccess("v", 1, "v", Rect((0,), (4,)), "write-discard")],
                0.0, 1.0,
            )
        log.save(path)
        assert main([path, "--max", "2"]) == 1
        out = capsys.readouterr().out
        assert "2 violation(s)" in out

    def test_stats_flag(self, tmp_path, capsys):
        path = str(tmp_path / "run.jsonl")
        _sample_log().save(path)
        main([path, "--stats"])
        out = capsys.readouterr().out
        for kind in ("task", "shard", "copy", "fold", "allreduce"):
            assert kind in out

    def test_unreadable_log_exits_two(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.jsonl")
        assert main([missing]) == 2
        garbage = tmp_path / "garbage.jsonl"
        garbage.write_text('{"kind": "task"}\n')  # missing fields
        assert main([str(garbage)]) == 2
        assert "error" in capsys.readouterr().err
