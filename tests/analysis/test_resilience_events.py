"""Fault/checkpoint events: serialization + checker semantics."""

from repro.analysis.checker import check_log
from repro.analysis.events import (
    CheckpointEvent,
    DetectionEvent,
    EventLog,
    FaultEvent,
    ReqAccess,
    ShardEvent,
)
from repro.geometry import Rect

RECT = Rect((0,), (8,))


def _write(log, launch, memory, replay=False):
    log.record_shard(
        launch, "writer", 0, 0, memory,
        [ReqAccess("v", 1, "v", RECT, "write-discard")],
        0.0, 1.0, replay=replay,
    )


def _read(log, launch, memory, replay=False):
    log.record_shard(
        launch, "reader", 0, 0, memory,
        [ReqAccess("v", 1, "v", RECT, "read")],
        1.0, 2.0, replay=replay,
    )


class TestSerialization:
    def test_fault_checkpoint_replay_roundtrip(self, tmp_path):
        log = EventLog(name="resilience")
        w = log.record_task("writer", 1)
        _write(log, w, memory=4)
        log.record_fault("copy", detail="transient link error, retry 1")
        log.record_checkpoint(1024, 2)
        log.record_fault("gpu-loss", memories=(4, 6), detail="target=1")
        r = log.record_task("writer", 1)
        _write(log, r, memory=4, replay=True)
        path = str(tmp_path / "run.jsonl")
        log.save(path)
        loaded = EventLog.load(path)
        assert loaded.events == log.events
        faults = [e for e in loaded.events if isinstance(e, FaultEvent)]
        assert faults[0].fault == "copy" and faults[0].memories == ()
        assert faults[1].memories == (4, 6)
        ckpt = next(e for e in loaded.events if isinstance(e, CheckpointEvent))
        assert (ckpt.nbytes, ckpt.regions) == (1024, 2)
        shards = [e for e in loaded.events if isinstance(e, ShardEvent)]
        assert [s.replay for s in shards] == [False, True]

    def test_detection_event_roundtrip(self, tmp_path):
        log = EventLog(name="detection")
        log.record_detection("node-loss", 0, 0.004, 0.0042, 0.0045)
        path = str(tmp_path / "run.jsonl")
        log.save(path)
        loaded = EventLog.load(path)
        assert loaded.events == log.events
        (det,) = [e for e in loaded.events if isinstance(e, DetectionEvent)]
        assert det.fault == "node-loss" and det.target == 0
        assert (det.at, det.suspected, det.confirmed) == (0.004, 0.0042, 0.0045)


class TestCheckerSemantics:
    def test_loss_without_replay_is_stale(self):
        log = EventLog(name="loss")
        w = log.record_task("writer", 1)
        _write(log, w, memory=4)
        log.record_fault("gpu-loss", memories=(4,))
        r = log.record_task("reader", 1)
        _read(log, r, memory=4)
        violations = check_log(log)
        assert any(v.kind == "stale-read" for v in violations)

    def test_replayed_write_reestablishes_validity(self):
        log = EventLog(name="recovered")
        w = log.record_task("writer", 1)
        _write(log, w, memory=4)
        log.record_fault("gpu-loss", memories=(4,))
        rw = log.record_task("writer", 1)
        _write(log, rw, memory=4, replay=True)
        r = log.record_task("reader", 1)
        _read(log, r, memory=4)
        assert check_log(log) == []

    def test_replay_shard_exempt_from_stale_reads(self):
        """A replayed read-modify-write consumed its input pre-fault; the
        bytes may no longer exist anywhere and that is still legal."""
        log = EventLog(name="rmw-replay")
        w = log.record_task("writer", 1)
        _write(log, w, memory=4)
        log.record_fault("gpu-loss", memories=(4,))
        rmw = log.record_task("rmw", 1)
        log.record_shard(
            rmw, "rmw", 0, 0, 4,
            [ReqAccess("v", 1, "v", RECT, "write")],
            2.0, 3.0, replay=True,
        )
        assert check_log(log) == []
        # The same access NOT marked replay is a stale read.
        log2 = EventLog(name="rmw-fresh")
        w = log2.record_task("writer", 1)
        _write(log2, w, memory=4)
        log2.record_fault("gpu-loss", memories=(4,))
        rmw = log2.record_task("rmw", 1)
        log2.record_shard(
            rmw, "rmw", 0, 0, 4,
            [ReqAccess("v", 1, "v", RECT, "write")],
            2.0, 3.0,
        )
        assert any(v.kind == "stale-read" for v in check_log(log2))

    def test_detection_events_are_checker_neutral(self):
        """Detection is annotation: suspected/confirmed transitions do
        not move data, so they change no checker verdict."""
        log = EventLog(name="detect-neutral")
        w = log.record_task("writer", 1)
        _write(log, w, memory=4)
        log.record_detection("gpu-loss", 1, 1.0, 1.1, 1.2)
        r = log.record_task("reader", 1)
        _read(log, r, memory=4)
        assert check_log(log) == []

    def test_restore_copies_establish_replica_validity(self):
        """A recovery-planner restore re-sources a piece from a
        surviving replica; reads staged from the refilled store are
        clean."""
        log = EventLog(name="restore")
        w = log.record_task("writer", 1)
        _write(log, w, memory=4)
        log.record_copy(1, "v", RECT, 4, 0, 64, why="checkpoint")  # store A
        log.record_copy(1, "v", RECT, 4, 7, 64, why="checkpoint")  # store B
        log.record_fault("node-loss", memories=(4, 0))  # domain with store A
        log.record_copy(1, "v", RECT, 7, 0, 64, why="restore")  # refill A
        log.record_copy(1, "v", RECT, 0, 4, 64)  # stage back in
        r = log.record_task("reader", 1)
        _read(log, r, memory=4)
        assert check_log(log) == []

    def test_spill_and_checkpoint_copies_establish_validity(self):
        for why in ("spill", "checkpoint"):
            log = EventLog(name=why)
            w = log.record_task("writer", 1)
            _write(log, w, memory=4)
            log.record_copy(1, "v", RECT, 4, 0, 64, why=why)
            log.record_fault("gpu-loss", memories=(4,))
            log.record_copy(1, "v", RECT, 0, 4, 64)  # stage back in
            r = log.record_task("reader", 1)
            _read(log, r, memory=4)
            assert check_log(log) == [], why

    def test_fold_copies_still_establish_nothing(self):
        log = EventLog(name="fold")
        w = log.record_task("writer", 1)
        _write(log, w, memory=4)
        log.record_copy(1, "v", RECT, 4, 0, 64, why="fold")
        r = log.record_task("reader", 1)
        _read(log, r, memory=0)
        assert any(v.kind == "stale-read" for v in check_log(log))
