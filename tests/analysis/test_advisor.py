"""Advisor unit tests: lint battery, machine parsing, CLI exit codes."""

from pathlib import Path

import numpy as np
import pytest
import scipy.sparse as sps

import repro.sparse as sp
from repro.analysis import advise, analyze, trace
from repro.analysis.advisor import AdvisorConfig, parse_machine
from repro.legion import RuntimeConfig
from repro.machine import laptop, summit

REPO = Path(__file__).resolve().parents[2]


def tridiag(n):
    diags = [np.full(n - 1, -1.0), np.full(n, 2.0), np.full(n - 1, -1.0)]
    return sps.diags(diags, [-1, 0, 1]).tocsr()


def rules(advice):
    return {f.rule for f in advice.findings}


# ----------------------------------------------------------------------
# Lints
# ----------------------------------------------------------------------
def test_densify_warning_and_error_scale():
    def workload():
        A = sp.csr_matrix(tridiag(400))
        A.toarray()

    small = advise(workload, machine=laptop(), procs=2)
    assert any(
        f.rule == "densify" and f.severity == "warning"
        for f in small.findings
    )
    assert not small.errors

    big = advise(
        workload,
        machine=laptop(),
        procs=2,
        config=RuntimeConfig.legate(data_scale=1e6),
    )
    assert any(
        f.rule == "densify" and f.severity == "error" for f in big.findings
    )
    assert big.errors


def test_convert_roundtrip_detected():
    def workload():
        A = sp.csr_matrix(tridiag(200))
        A.tocsc().tocsr()

    advice = advise(workload, machine=laptop(), procs=2)
    assert "convert-roundtrip" in rules(advice)


def test_capacity_overflow_is_error():
    def workload():
        import repro.numeric as rnp

        A = sp.csr_matrix(tridiag(1000))
        x = rnp.ones(A.shape[0])
        return A @ x

    advice = advise(
        workload,
        machine=laptop(),
        procs=2,
        config=RuntimeConfig.legate(data_scale=1e5),
    )
    assert any(
        f.rule == "capacity" and f.severity == "error"
        for f in advice.findings
    )
    assert advice.errors


def test_spill_downgrades_capacity_to_warning():
    """With config.spill, relievable overflow becomes spill traffic."""

    def workload():
        import repro.numeric as rnp

        n = 100_000
        arrays = [rnp.full(n, float(i)) for i in range(8)]
        total = rnp.zeros(n)
        for a in arrays:
            total = total + a
        return total

    def run(spill):
        return advise(
            workload,
            machine=laptop(),
            procs=2,
            config=RuntimeConfig.legate(data_scale=40.0, spill=spill),
        )

    degraded = run(spill=True)
    spills = [f for f in degraded.findings if f.rule == "spill"]
    assert spills and all(f.severity == "warning" for f in spills)
    assert "evicts/spills an estimated" in spills[0].message
    assert "capacity" not in rules(degraded)
    assert not degraded.errors

    hard = run(spill=False)
    assert any(
        f.rule == "capacity" and f.severity == "error" for f in hard.findings
    )
    assert "config.spill would degrade" in next(
        f.message for f in hard.findings if f.rule == "capacity"
    )


def test_spill_cannot_relieve_single_oversized_region():
    """A region bigger than the whole budget stays a hard error."""

    def workload():
        import repro.numeric as rnp

        return rnp.ones(100_000)

    advice = advise(
        workload,
        machine=laptop(),
        procs=2,
        config=RuntimeConfig.legate(data_scale=1e5),  # 80 GB on a 64 MB FB
    )
    assert any(
        f.rule == "capacity" and f.severity == "error"
        for f in advice.findings
    )


def test_dead_write_detected():
    def workload():
        import repro.numeric as rnp

        x = rnp.zeros(64)
        x.fill(1.0)
        return x

    advice = advise(workload, machine=laptop(), procs=2)
    assert "dead-write" in rules(advice)


def test_clean_program_has_no_errors():
    def workload():
        import repro.numeric as rnp

        A = sp.csr_matrix(tridiag(300))
        v = rnp.ones(A.shape[0])
        for _ in range(3):
            v = A @ v
        return v

    advice = advise(workload, machine=laptop(), procs=2)
    assert not advice.errors
    assert advice.launches > 0
    assert advice.predicted.stats().get("task", 0) > 0


def test_finding_cap_suppresses_floods():
    def workload():
        A = sp.csr_matrix(tridiag(50))
        for _ in range(40):
            A.toarray()

    advice = advise(
        workload,
        machine=laptop(),
        procs=2,
        options=AdvisorConfig(max_findings_per_rule=4),
    )
    densify = [
        f for f in advice.findings
        if f.rule == "densify" and "suppressed" not in f.message
    ]
    assert len(densify) == 4
    assert any("suppressed" in f.message for f in advice.findings)


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------
def test_report_structure_and_json():
    def workload():
        import repro.numeric as rnp

        A = sp.csr_matrix(tridiag(256))
        return A @ rnp.ones(A.shape[0])

    advice = advise(workload, machine=summit(nodes=2))
    d = advice.to_dict()
    assert d["launches"] == advice.launches
    assert "traffic" in d and "memories" in d and "ops" in d
    spmv = [o for o in advice.ops if "A(i,j)*x(j)" in o.name]
    assert spmv and "pos" in spmv[0].partitions
    text = advice.format_text()
    assert "partition choices" in text
    assert "predicted traffic" in text
    assert "predicted peak memory" in text


def test_trace_then_analyze_on_other_machine():
    """A plan traced once can be analyzed against different machines."""

    def workload():
        import repro.numeric as rnp

        A = sp.csr_matrix(tridiag(128))
        return A @ rnp.ones(A.shape[0])

    from repro.machine import ProcessorKind

    plan = trace(workload, machine=laptop(), procs=2)
    local = analyze(plan)
    remote = analyze(
        plan, scope=summit(nodes=2).scope(ProcessorKind.GPU, 12)
    )
    assert local.launches == remote.launches
    # The plan's launch structure is fixed at trace time; only the
    # machine mapping changes, so event counts agree while the memory
    # landscape differs (summit framebuffers, not the laptop's).
    assert remote.predicted.stats() == local.predicted.stats()
    assert {m.memory for m in remote.memories} != {
        m.memory for m in local.memories
    }


# ----------------------------------------------------------------------
# Machine parsing
# ----------------------------------------------------------------------
def test_parse_machine():
    assert parse_machine("laptop").config.nodes == 1
    assert parse_machine("summit").config.nodes == 1
    assert parse_machine("summit:8").config.nodes == 8
    with pytest.raises(ValueError):
        parse_machine("frontier:2")


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_advise_clean_program_exits_zero(capsys):
    from repro.analysis.cli import main

    code = main(
        ["advise", str(REPO / "examples" / "advisor_demo.py"),
         "--machine", "summit:4", "--", "--maxiter", "2"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "partition choices" in out
    assert "predicted traffic" in out


def test_cli_advise_violations_exit_one(capsys):
    from repro.analysis.cli import main

    code = main(
        ["advise", str(REPO / "examples" / "advisor_violations.py"),
         "--data-scale", "4e4"]
    )
    out = capsys.readouterr().out
    assert code == 1
    assert "densify" in out or "capacity" in out


def test_cli_advise_json(capsys):
    import json

    from repro.analysis.cli import main

    code = main(
        ["advise", str(REPO / "examples" / "advisor_demo.py"), "--json",
         "--", "--maxiter", "1"]
    )
    out = capsys.readouterr().out
    assert code == 0
    # The traced program's own prints precede the report.
    payload = json.loads(out[out.index("{"):])
    assert payload["launches"] > 0


def test_cli_advise_crash_exits_two(tmp_path, capsys):
    from repro.analysis.cli import main

    bad = tmp_path / "bad.py"
    bad.write_text("raise RuntimeError('boom')\n")
    assert main(["advise", str(bad)]) == 2
    capsys.readouterr()


def test_cli_legacy_checker_still_works(tmp_path, capsys):
    """The PR-1 checker path is unchanged: bad path -> exit 2."""
    from repro.analysis.cli import main

    assert main([str(tmp_path / "missing.jsonl")]) == 2
    capsys.readouterr()
